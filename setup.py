"""Setuptools shim enabling legacy editable installs.

The runtime environment ships setuptools without the ``wheel`` package
and has no network access, so PEP 660 editable builds are unavailable;
``pip install -e . --no-build-isolation`` falls back to this shim.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
