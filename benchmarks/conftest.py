"""Shared configuration for the paper-reproduction benchmarks.

Every ``bench_*.py`` regenerates one table or figure of the paper.  The
rendered report is printed (visible with ``pytest -s``) and also written
to ``benchmarks/results/<artifact>.txt`` so a plain
``pytest benchmarks/ --benchmark-only`` run leaves the full evaluation
on disk.

Scale knobs: the defaults reproduce the paper's topology sizes with
reduced round counts so the whole suite completes in minutes.  Set
``REPRO_BENCH_SCALE=paper`` for the full 100-events-per-replica runs
and the 50-node / 10 000-user Retwis deployment.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: "quick" (default) or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: Rounds per micro-benchmark at each scale.
MICRO_ROUNDS = {"quick": 40, "paper": 100}[SCALE]
#: Rounds for the heavyweight GMap grid (1000-key maps).
GMAP_ROUNDS = {"quick": 25, "paper": 100}[SCALE]
#: Cluster sizes for the Figure 9 metadata sweep.
FIGURE9_SIZES = {"quick": (8, 16, 32), "paper": (8, 16, 32, 64)}[SCALE]
FIGURE9_ROUNDS = {"quick": 25, "paper": 100}[SCALE]


def retwis_config():
    from repro.experiments.retwis_sweep import RetwisConfig

    if SCALE == "paper":
        return RetwisConfig.paper_scale()
    return RetwisConfig(nodes=20, degree=4, users=500, rounds=30, ops_per_node=8)


@pytest.fixture(scope="session")
def report_sink():
    """Write a rendered artifact report to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(artifact: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{artifact}.txt").write_text(text + "\n", encoding="utf-8")

    return write
