"""Fingerprint the sim transport's byte records for refactor safety.

Runs a fixed set of representative experiments on the deterministic
simulator and prints one sha256 per experiment over every message
record and memory sample the metrics collector saw.  Identical
fingerprints before and after a runtime/transport refactor prove the
round-stepped execution model is byte-identical — the check PR 3
introduced for the transport seam, reused here for the clock seam.

    PYTHONPATH=src python benchmarks/fingerprint_sim_records.py
"""

from __future__ import annotations

import hashlib

from repro.causal import Causal
from repro.experiments import KVConfig, run_kv_repair_comparison, run_kv_sweep
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import partial_mesh
from repro.sync import ALGORITHMS
from repro.workloads import AWSetChurnWorkload


def _digest_metrics(metrics) -> str:
    hasher = hashlib.sha256()
    for m in metrics.messages:
        hasher.update(
            repr(
                (
                    m.time,
                    m.src,
                    m.dst,
                    m.kind,
                    m.payload_units,
                    m.payload_bytes,
                    m.metadata_bytes,
                    m.metadata_units,
                )
            ).encode()
        )
    for s in metrics.memory:
        hasher.update(
            repr(
                (
                    s.time,
                    s.node,
                    s.state_units,
                    s.state_bytes,
                    s.buffer_bytes,
                    s.metadata_bytes,
                )
            ).encode()
        )
    return hasher.hexdigest()


def micro_fingerprint(algorithm: str) -> str:
    workload = AWSetChurnWorkload(8, rounds=6, seed=3)
    cluster = Cluster(
        ClusterConfig(topology=partial_mesh(8, 4)),
        ALGORITHMS[algorithm],
        Causal.map_bottom(),
    )
    cluster.run_rounds(workload.rounds, workload.updates_for)
    cluster.drain()
    return _digest_metrics(cluster.metrics)


def kv_sweep_fingerprint() -> str:
    result = run_kv_sweep(
        KVConfig(replicas=8, keys=200, rounds=8, ops_per_node=4, seed=7),
        algorithms=("state-based", "delta-based-bp-rr"),
    )
    hasher = hashlib.sha256()
    for label, cell in result.cells.items():
        hasher.update(repr((label, cell)).encode())
    return hasher.hexdigest()


def kv_repair_fingerprint() -> str:
    result = run_kv_repair_comparison(
        KVConfig(
            replicas=8,
            keys=200,
            rounds=9,
            ops_per_node=4,
            repair_interval=3,
            repair_fanout=8,
            seed=7,
        ),
        modes=("blanket", "digest", "wal"),
    )
    hasher = hashlib.sha256()
    for label, cell in result.cells.items():
        hasher.update(repr((label, cell)).encode())
    return hasher.hexdigest()


def main() -> None:
    for algorithm in ("delta-based-bp-rr", "scuttlebutt", "state-based"):
        print(f"micro/{algorithm}: {micro_fingerprint(algorithm)}")
    print(f"kv/sweep: {kv_sweep_fingerprint()}")
    print(f"kv/repair: {kv_repair_fingerprint()}")


if __name__ == "__main__":
    main()
