"""Figure 9 — synchronization metadata per node vs cluster size.

Regenerates the metadata sweep (GSet over meshes of growing size,
20-byte node identifiers) and asserts the asymptotic shapes: linear for
Scuttlebutt, quadratic for Scuttlebutt-GC, heavier-than-linear for
op-based, constant-ish for delta-based — and the dominance of metadata
in the vector-based protocols' traffic.
"""

import pytest

from conftest import FIGURE9_ROUNDS, FIGURE9_SIZES
from repro.experiments import run_figure9


@pytest.mark.benchmark(group="figure9")
def test_figure9(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure9,
        kwargs=dict(sizes=FIGURE9_SIZES, rounds=FIGURE9_ROUNDS),
        rounds=1,
        iterations=1,
    )
    report_sink("figure9", result.render())

    largest = FIGURE9_SIZES[-1]

    # Growth shapes (log-log slope of metadata/node vs cluster size).
    assert 0.7 < result.growth_exponent("scuttlebutt") < 1.5
    assert result.growth_exponent("scuttlebutt-gc") > 1.5
    assert result.growth_exponent("op-based") > 1.2
    assert result.growth_exponent("delta-based-bp-rr") < 0.5

    # Metadata dominates the vector-based protocols' transmissions
    # (the paper measures 75 % / 99 % / 97 % at 32 nodes)...
    assert result.metadata_fraction(largest, "scuttlebutt") > 0.6
    assert result.metadata_fraction(largest, "scuttlebutt-gc") > 0.9
    assert result.metadata_fraction(largest, "op-based") > 0.9
    # ...while delta-based metadata stays marginal (paper: 7.7 %).
    assert result.metadata_fraction(largest, "delta-based-bp-rr") < 0.12

    # Absolute ordering at the largest size.
    assert (
        result.metadata_per_node(largest, "delta-based-bp-rr")
        < result.metadata_per_node(largest, "scuttlebutt")
        < result.metadata_per_node(largest, "scuttlebutt-gc")
    )
