"""The sharded kv store — protocol sweep at 16 replicas / 1000 keys.

The store-scale counterpart of Figure 11: the identical mixed-type
Zipf schedule replayed against every protocol on the same ring, plus a
Retwis replay and a reproducibility check (the whole pipeline is
seeded, so a cell rerun must reproduce byte-exact measurements).

``test_kv_repair_divergence_beats_blanket`` is the recovery-path
benchmark: one seeded fault schedule (16 replicas, partition with
writes on both sides, heal, crash with disk loss) replayed under the
whole recovery ladder — blanket full-state repair, divergence-driven
digest repair, and write-ahead-log replay with digest repair covering
the remainder — at equal per-shard convergence.  WAL replay undercuts
the digest baseline (the network repairs only downtime divergence);
the verified ``wal+repair`` variant pays a duplicate-exchange premium
over plain ``wal`` for probing from both sides, but never approaches
blanket's full-state pushes.
"""

import pytest

from conftest import SCALE
from repro.experiments import (
    KVConfig,
    run_kv_cell,
    run_kv_rebalance,
    run_kv_repair_comparison,
    run_kv_sweep,
)

ROUNDS = {"quick": 15, "paper": 50}[SCALE]

CONFIG = KVConfig(
    replicas=16,
    keys=1000,
    rounds=ROUNDS,
    ops_per_node=8,
    shards=32,
    replication=3,
    zipf=1.0,
    seed=42,
    workload="zipf",
)


@pytest.mark.benchmark(group="kv-store")
def test_kv_store_sweep(benchmark, report_sink):
    result = benchmark.pedantic(
        run_kv_sweep, kwargs=dict(config=CONFIG), rounds=1, iterations=1
    )
    report_sink("kv_store", result.render())

    # Every protocol converges the whole keyspace, shard by shard.
    for label, cell in result.cells.items():
        assert cell.converged, f"{label} failed to converge"

    # The headline: delta-based BP+RR moves strictly fewer payload
    # bytes than full-state push on the identical workload seed.
    assert result.payload_bytes("delta-based-bp-rr") < result.payload_bytes(
        "state-based"
    )
    # The classic algorithm sits in between (redundant re-buffering).
    assert result.payload_bytes("delta-based-bp-rr") <= result.payload_bytes(
        "delta-based"
    )
    # Merkle pays for divergence localization in digest metadata.
    merkle = result.cell("merkle")
    assert merkle.metadata_bytes > merkle.payload_bytes


@pytest.mark.benchmark(group="kv-store")
def test_kv_store_reproducible(benchmark, report_sink):
    """A rerun of one cell reproduces its measurements byte-exactly."""
    cell = benchmark.pedantic(
        run_kv_cell,
        kwargs=dict(config=CONFIG, algorithm="delta-based-bp-rr"),
        rounds=1,
        iterations=1,
    )
    again = run_kv_cell(CONFIG, "delta-based-bp-rr")
    assert again == cell
    report_sink(
        "kv_store_repro",
        f"delta-based-bp-rr @ seed {CONFIG.seed}: {cell.payload_bytes} payload B, "
        f"{cell.metadata_bytes} metadata B, {cell.messages} messages (rerun identical)",
    )


@pytest.mark.benchmark(group="kv-store")
def test_kv_store_retwis_backpressure(benchmark, report_sink):
    """Retwis traffic under a per-tick send budget still converges."""
    config = KVConfig(
        replicas=16,
        rounds=ROUNDS,
        ops_per_node=6,
        users=300,
        zipf=1.0,
        seed=7,
        workload="retwis",
        budget_bytes=16 * 1024,
    )
    result = benchmark.pedantic(
        run_kv_sweep,
        kwargs=dict(
            config=config, algorithms=("state-based", "delta-based-bp-rr")
        ),
        rounds=1,
        iterations=1,
    )
    report_sink("kv_store_retwis", result.render())
    for label, cell in result.cells.items():
        assert cell.converged, f"{label} failed to converge"
    # The budget actually bit: shard syncs were deferred, and the store
    # still converged because deferred δ-buffers survive to later ticks.
    assert result.cell("state-based").deferred > 0
    assert result.payload_bytes("delta-based-bp-rr") < result.payload_bytes(
        "state-based"
    )


@pytest.mark.benchmark(group="kv-store")
def test_kv_repair_divergence_beats_blanket(benchmark, report_sink):
    """Digest-escalated repair converges the same faults for fewer bytes."""
    config = KVConfig(
        replicas=16,
        keys=1000,
        rounds=ROUNDS,
        ops_per_node=8,
        shards=32,
        replication=3,
        zipf=1.0,
        seed=42,
        workload="zipf",
        repair_interval=4,
        repair_fanout=8,
    )
    result = benchmark.pedantic(
        run_kv_repair_comparison, kwargs=dict(config=config), rounds=1, iterations=1
    )
    report_sink("kv_repair", result.render())

    blanket = result.cell("blanket")
    digest = result.cell("digest")
    wal = result.cell("wal")
    verified = result.cell("wal+repair")
    # Equal convergence: every strategy reconciles every replica group
    # after the partition and the disk-losing crash.
    for cell in (blanket, digest, wal, verified):
        assert cell.converged
    # The headline ladder: divergence-driven repair ships strictly fewer
    # repair payload bytes than blanket full-state pushes — and stays
    # cheaper even with its digest metadata included.
    assert digest.repair_payload_bytes < blanket.repair_payload_bytes
    assert digest.repair_bytes < blanket.repair_bytes
    # The probes actually drove the repair (the path is exercised).
    assert digest.probes > 0 and digest.repairs > 0
    # WAL replay rebuilds the crashed replica from its own log, so the
    # network repairs only the divergence accrued during the downtime:
    # strictly below the digest-only baseline, which itself re-shipped
    # the whole lost keyspace slice.
    assert wal.repair_payload_bytes < digest.repair_payload_bytes
    assert wal.wal_replayed_bytes > 0
    # The verified variant pays a duplicate-exchange premium over plain
    # wal (both sides of every δ-path probe after the rebuild), but it
    # never re-ships full states the way blanket does.
    assert verified.repair_payload_bytes < blanket.repair_payload_bytes
    assert verified.probes > wal.probes


@pytest.mark.benchmark(group="kv-store")
def test_kv_rebalance_handoff_beats_fullstate_transfer(benchmark, report_sink):
    """Live membership changes ship compacted WAL segments, not states.

    One seeded replay: traffic flows while a 16th replica joins and
    replica 0 is decommissioned; every moved shard travels as one
    handoff segment from one source, measured against the naive
    baseline of every live old owner pushing its full encoded state to
    every gaining owner.
    """
    config = KVConfig(
        replicas=16,
        keys=1000,
        rounds=ROUNDS,
        ops_per_node=8,
        shards=32,
        replication=3,
        zipf=1.0,
        seed=42,
        workload="zipf",
        repair_interval=4,
        repair_fanout=8,
        repair_mode="digest",
        recovery="wal",
    )
    result = benchmark.pedantic(
        run_kv_rebalance, kwargs=dict(config=config), rounds=1, iterations=1
    )
    report_sink("kv_rebalance", result.render())

    # Equal outcome first: per-shard convergence with the new membership,
    # the leaver fully drained, every handoff acknowledged.
    assert result.converged
    assert result.decommissioned_empty
    for phase in result.phases:
        # Minimal movement: the consistent ring touches about the
        # changed node's share (~replication/n), never a reshuffle.
        assert 0 < phase.moved_shards
        assert phase.moved_fraction < 2.5 * phase.expected_fraction
        assert phase.unsourced == 0
    # The headline: handing off one compacted segment per moved shard
    # undercuts the naive every-owner-pushes-full-state transfer.
    assert 0 < result.handoff_payload_bytes < result.naive_fullstate_bytes
