"""Figure 1 — classic delta-based vs state-based on a 15-node mesh.

Regenerates the paper's motivating experiment: the cumulative number of
set elements transmitted over time for both algorithms, plus the CPU
processing-time ratio of delta-based with respect to state-based.
"""

import pytest

from conftest import MICRO_ROUNDS
from repro.experiments import run_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure1,
        kwargs=dict(nodes=15, rounds=MICRO_ROUNDS),
        rounds=1,
        iterations=1,
    )
    report_sink("figure1", result.render())

    # Shape: delta-based transmits essentially as much as state-based...
    assert result.transmission_ratio() > 0.9
    # ...while paying a CPU premium for all the buffering and joining.
    assert result.cpu_ratio_wall() > 1.0
    # Both series keep growing for the whole run (always-growing set).
    for label in ("state-based", "delta-based"):
        series = result.cumulative_series(label)
        assert series[-1][1] > series[len(series) // 2][1]
