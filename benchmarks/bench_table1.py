"""Table I — the micro-benchmark definitions, verified and printed."""

import pytest

from repro.experiments import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, report_sink):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report_sink("table1", result.render())
    assert result.all_verified()
