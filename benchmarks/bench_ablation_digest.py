"""Ablation — pairwise reconciliation strategies after a partition.

Not a paper figure: this bench quantifies the Section VI lineage the
paper builds on (Enes et al., PMLDC 2016), comparing bidirectional
full-state exchange, state-driven, and digest-driven synchronization on
two replicas that diverged during a partition.  Digest-driven should
win whenever states are large and mostly overlapping, because digests
scale with the *number* of irreducibles rather than their size.
"""

import pytest

from repro.crdt import GSet
from repro.experiments.report import format_table
from repro.sizes import SizeModel
from repro.sync.digest import digest_driven_sync, full_state_sync, state_driven_sync


def diverged_replicas(shared: int, each: int, element_bytes: int = 40):
    a, b = GSet("A"), GSet("B")
    for i in range(shared):
        element = f"shared-{i:06d}".ljust(element_bytes, "x")
        a.add(element)
        b.add(element)
    for i in range(each):
        a.add(f"only-a-{i:06d}".ljust(element_bytes, "x"))
        b.add(f"only-b-{i:06d}".ljust(element_bytes, "x"))
    return a, b


def run_ablation(shared: int = 2000, each: int = 50):
    model = SizeModel()
    a, b = diverged_replicas(shared, each)
    outcomes = [
        strategy(a.state, b.state, model)
        for strategy in (full_state_sync, state_driven_sync, digest_driven_sync)
    ]
    return outcomes


@pytest.mark.benchmark(group="ablation-digest")
def test_digest_sync_ablation(benchmark, report_sink):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        (o.strategy, o.messages, o.bytes_sent, o.converged_state.size_units())
        for o in outcomes
    ]
    report_sink(
        "ablation_digest",
        format_table(
            ("strategy", "messages", "bytes sent", "converged units"),
            rows,
            title="Ablation — pairwise sync of diverged replicas (2000 shared / 50 unique each)",
        ),
    )

    full, state, digest = outcomes
    assert full.converged_state == state.converged_state == digest.converged_state
    # state-driven halves-ish the full exchange; digest-driven beats both.
    assert state.bytes_sent < full.bytes_sent
    assert digest.bytes_sent < state.bytes_sent
    # Message counts per the protocols' definitions.
    assert (full.messages, state.messages, digest.messages) == (2, 2, 3)
