"""Table II — the Retwis workload characterization, measured."""

import pytest

from repro.experiments import run_table2


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, report_sink):
    result = benchmark.pedantic(
        run_table2, kwargs=dict(ops=20_000), rounds=1, iterations=1
    )
    report_sink("table2", result.render())
    assert result.mix_close_to_paper()
    assert result.update_rules_hold()
