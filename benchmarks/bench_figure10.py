"""Figure 10 — average memory ratio with respect to BP+RR (mesh).

Regenerates the memory comparison for GCounter, GSet, GMap 10 % and
GMap 100 %, asserting the Section V-B.3 claims.
"""

import pytest

from conftest import GMAP_ROUNDS
from repro.experiments import run_figure10
from repro.experiments.figure10 import FIGURE10_WORKLOADS


@pytest.mark.benchmark(group="figure10")
def test_figure10(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure10,
        kwargs=dict(nodes=15, rounds=GMAP_ROUNDS),
        rounds=1,
        iterations=1,
    )
    report_sink("figure10", result.render())

    # State-based needs no synchronization metadata: memory-optimal.
    for workload in FIGURE10_WORKLOADS:
        assert result.memory_ratio(workload, "state-based") <= 1.0

    # Classic and BP hold fatter δ-buffers than BP+RR.
    for workload in ("gset", "gmap-10", "gmap-100"):
        assert result.memory_ratio(workload, "delta-based") > 1.0
        assert result.memory_ratio(workload, "delta-based-bp") > 1.0

    # The vector-based protocols are the heaviest on the GCounter,
    # where they cannot compress increments.
    vector_min = min(
        result.memory_ratio("gcounter", label)
        for label in ("scuttlebutt", "scuttlebutt-gc", "op-based")
    )
    delta_max = max(
        result.memory_ratio("gcounter", label)
        for label in ("delta-based", "delta-based-bp", "delta-based-bp-rr")
    )
    assert vector_min > delta_max

    # Scuttlebutt-GC prunes its store and lands near BP+RR on GMap 10 %.
    assert result.memory_ratio("gmap-10", "scuttlebutt-gc") < result.memory_ratio(
        "gmap-10", "scuttlebutt"
    )
