"""Ablation — do the paper's optimizations survive removals?

Not a paper figure: the paper evaluates grow-only types, and its
Appendix B argues the machinery extends to the CRDTs used in practice.
This bench makes that claim quantitative by re-running the Figure 7
protocol grid (every synchronizer, both Figure 6 topologies) over an
add-wins OR-set churn workload, where deltas must carry *tombstone*
context entries, not just payload.

Expected shape — the paper's ordering must be preserved:

* classic delta ≈ state-based on the mesh (the Figure 1 anomaly);
* BP recovers most of the cost on the tree, RR on the mesh;
* BP+RR transmits the least among the delta variants.

One departure from the grow-only world is itself a finding: on the
acyclic tree BP alone no longer reaches the optimum (it does for GSet),
because causal deltas whose contexts cover previously-shipped dots are
partially redundant downstream even without cycles — residue only RR
can trim.
"""

import pytest

from repro.experiments.appendixb import run_appendixb

from conftest import MICRO_ROUNDS


@pytest.mark.benchmark(group="ablation-causal")
def test_causal_churn_ablation(benchmark, report_sink):
    rounds = max(10, MICRO_ROUNDS // 2)
    result = benchmark.pedantic(
        run_appendixb, kwargs=dict(nodes=15, rounds=rounds), rounds=1, iterations=1
    )
    report_sink("ablation_causal", result.render())

    # The Figure 1 anomaly: classic delta is no better than state-based.
    assert result.units("mesh", "delta-based") > 0.8 * result.units(
        "mesh", "state-based"
    )
    # RR dominates BP when the topology has cycles.
    assert result.units("mesh", "delta-based-rr") < result.units(
        "mesh", "delta-based-bp"
    )
    # BP+RR is the best delta variant on both topologies.
    for topology in ("tree", "mesh"):
        assert result.ratio(topology, "delta-based") >= 1.0
        assert result.ratio(topology, "delta-based-bp") >= 1.0
        assert result.ratio(topology, "delta-based-rr") >= 1.0
    # On the acyclic tree, BP alone gets close to the BP+RR optimum —
    # but unlike the paper's grow-only types it does not reach it:
    # re-adds and removals cover previously-shipped dots, and that
    # slice of causal context is redundant for downstream nodes even
    # without cycles.  Only RR trims it.
    assert result.ratio("tree", "delta-based-bp") <= 1.3
    assert result.units("tree", "delta-based-bp") < result.units(
        "tree", "delta-based-rr"
    )
    # The vector-based baselines still pay their metadata tax.
    assert result.ratio("mesh", "scuttlebutt-gc") > result.ratio(
        "mesh", "delta-based-bp-rr"
    )