"""The serving layer under benchmark load: quorum reads on real processes.

Unlike every other bench file, the replicas here are OS processes and
the latencies are wall-clock socket round trips — so this file measures
the *system* claim of the serving layer rather than a paper figure: a
majority quorum (``r + w > rf``) eliminates observed session staleness
at a bounded latency multiple over ``r = 1``, with read-repair traffic
accounted separately from anti-entropy.

Scale: ``quick`` keeps the cluster at 4 processes; ``paper`` widens the
client load (the cluster stays small — process count is not the claim).
"""

import pytest

from conftest import SCALE
from repro.experiments import QuorumConfig, run_kv_quorum

BATCHES = {"quick": 4, "paper": 10}[SCALE]
OPS = {"quick": 25, "paper": 50}[SCALE]

CONFIG = QuorumConfig(
    replicas=4,
    shards=16,
    replication=3,
    keys=48,
    batches=BATCHES,
    ops_per_batch=OPS,
    seed=7,
)


@pytest.mark.benchmark(group="serve")
def test_serve_quorum_staleness_tradeoff(benchmark, report_sink):
    result = benchmark.pedantic(
        run_kv_quorum, kwargs=dict(config=CONFIG), rounds=1, iterations=1
    )
    report_sink("serve_quorum", result.render())

    loose = result.cell("r1-random")
    primary = result.cell("r1-primary")
    strict = result.cell("majority")

    # Identical seeded load, no failures anywhere.
    for cell in (loose, primary, strict):
        assert cell.failed_ops == 0, f"{cell.label}: {cell.failed_ops} failed ops"
        assert cell.ops == BATCHES * OPS

    # The headline trade: random r=1 reads observe session staleness;
    # coordinator routing hides most of it; a majority quorum closes
    # the contract entirely.
    assert loose.stale_session_reads > 0, (
        "r=1 random reads observed no staleness — the probe lost its signal"
    )
    assert strict.stale_session_reads == 0, (
        f"majority quorum leaked {strict.stale_session_reads} stale reads"
    )

    # Closing it costs: every extra quorum member is a synchronous
    # round trip, and divergent replies generate attributable repair
    # traffic (client pushes counted server-side).
    assert strict.get_p50_ms > loose.get_p50_ms
    assert strict.server_read_repairs >= strict.divergent_reads
    assert strict.read_repair_payload_bytes > 0
    assert loose.read_repair_payload_bytes == 0
