"""Figure 7 — transmission of GSet and GCounter on tree and mesh.

Regenerates the full eight-algorithm comparison normalized against
delta-based BP+RR, asserting every qualitative claim of Section V-B.1.
"""

import pytest

from conftest import MICRO_ROUNDS
from repro.experiments import run_figure7


@pytest.mark.benchmark(group="figure7")
def test_figure7(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure7,
        kwargs=dict(nodes=15, rounds=MICRO_ROUNDS),
        rounds=1,
        iterations=1,
    )
    report_sink("figure7", result.render())

    # Classic delta-based presents almost no improvement over state-based.
    classic_mesh = result.ratio("gset", "mesh", "delta-based")
    state_mesh = result.ratio("gset", "mesh", "state-based")
    assert classic_mesh > 0.9 * state_mesh

    # In the tree topology BP alone attains the best result.
    assert result.ratio("gset", "tree", "delta-based-bp") == 1.0
    assert result.ratio("gcounter", "tree", "delta-based-bp") == 1.0

    # With a partial mesh, BP has little effect and RR contributes most.
    assert result.ratio("gset", "mesh", "delta-based-bp") > 0.8 * classic_mesh
    assert result.ratio("gset", "mesh", "delta-based-rr") < 0.3 * classic_mesh

    # Scuttlebutt variants beat classic delta-based on the GSet...
    assert result.ratio("gset", "mesh", "scuttlebutt") < classic_mesh
    # ...but lose to state-based on the GCounter: opaque values cannot
    # compress under lattice joins.
    assert result.ratio("gcounter", "mesh", "scuttlebutt") > result.ratio(
        "gcounter", "mesh", "state-based"
    )
    assert result.ratio("gcounter", "mesh", "op-based") > result.ratio(
        "gcounter", "mesh", "state-based"
    )

    # Even BP+RR is not much better than state-based for the GCounter.
    assert result.ratio("gcounter", "mesh", "state-based") < 2.5
