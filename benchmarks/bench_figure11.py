"""Figure 11 — Retwis transmission and memory vs Zipf contention.

Regenerates the classic-vs-BP+RR comparison over the Retwis application
at Zipf coefficients 0.5–1.5, including the first/second-half split the
paper plots.  The sweep is shared with the Figure 12 benchmark via an
in-process cache, so the two benches cost one sweep together.
"""

import pytest

from conftest import retwis_config
from repro.experiments import run_figure11
from repro.experiments.retwis_sweep import PAPER_COEFFICIENTS


@pytest.mark.benchmark(group="figure11")
def test_figure11(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure11,
        kwargs=dict(coefficients=PAPER_COEFFICIENTS, config=retwis_config()),
        rounds=1,
        iterations=1,
    )
    report_sink("figure11", result.render())

    # Low contention: updates spread across objects, few concurrent
    # updates per object between rounds — the naive inflation check
    # performs almost optimally.
    assert result.bandwidth_gap(0.5) < 2.5

    # The classic/BP+RR gap widens monotonically in contention.
    gaps = [result.bandwidth_gap(c) for c in PAPER_COEFFICIENTS]
    assert gaps[-1] > 2 * gaps[0]
    assert gaps == sorted(gaps)

    # Memory tells the same story at the extremes.
    low_mem = result.memory(0.5, "delta-based") / result.memory(
        0.5, "delta-based-bp-rr"
    )
    high_mem = result.memory(1.5, "delta-based") / result.memory(
        1.5, "delta-based-bp-rr"
    )
    assert high_mem > low_mem

    # Classic's bandwidth keeps rising with the coefficient — the
    # unsustainable trajectory the paper calls out.
    classic_bw = [result.bandwidth(c, "delta-based") for c in PAPER_COEFFICIENTS]
    assert classic_bw[-1] > classic_bw[0]
