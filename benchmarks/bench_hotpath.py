"""The hot path at 100k+ keys: encode-once and incremental digests.

Three cells, each gating one of the caches that keep the store's
per-tick work proportional to *what changed* instead of *what exists*:

* ``test_incremental_root_beats_recompute`` — the repair plane's probe
  primitive on a 100 000-key keyspace: refreshing an
  :class:`~repro.sync.digest.IncrementalDigest` after a small write
  burst versus recomputing ``root_of(digest_of(state))`` from the full
  join decomposition.  The cache re-fingerprints only the touched keys
  (found by the identity scan), so the ratio grows with keyspace size.

* ``test_frame_memo_encodes_once`` — the codec boundary: one sync
  tick's fan-out of an identical δ-bundle to 8 neighbours.  The
  synchronizers share one frozen message across those destinations and
  :func:`repro.codec.frame_message` memoizes the wire frame on it, so
  the bundle is encoded once, not once per neighbour.

* ``test_store_hotpath_profile`` — the caches in situ: a full
  :class:`~repro.kv.cluster.KVCluster` populated to 100k+ keys, driven
  with digest-mode anti-entropy and profiled with the PR 6
  :class:`~repro.obs.timing.HotPathTimers`; the in-place probe
  comparison measures cached versus recomputed shard roots on the live
  shard states.

Every cell asserts a minimum speedup ratio — a machine-independent
regression gate that fails if either cache stops working — and the
combined report (ops/sec, ratios, timer breakdown) lands in
``benchmarks/results/hotpath.txt``.  CI additionally records the
pytest-benchmark JSON and compares it against the stored baseline in
``benchmarks/results/hotpath_baseline.json``.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from conftest import SCALE
from repro.codec import frame_message
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt
from repro.sync.digest import IncrementalDigest, digest_of, root_of
from repro.sync.protocol import Message

#: Keyspace size of the digest micro-cell (the headline scale).
KEYS = {"quick": 100_000, "paper": 250_000}[SCALE]
#: Keys touched between consecutive probes (one write burst).
TOUCH = 64
#: Fan-out of the encode cell (neighbours per sync tick).
NEIGHBORS = 8
#: Store-cell shape: keys written during population.
STORE_KEYS = {"quick": 100_000, "paper": 200_000}[SCALE]
STORE_SHARDS = 512
STORE_ROUNDS = {"quick": 5, "paper": 12}[SCALE]

#: Minimum speedups the caches must deliver (regression gates).
MIN_ROOT_SPEEDUP = 3.0
MIN_ENCODE_SPEEDUP = 3.0
MIN_STORE_PROBE_SPEEDUP = 3.0

#: Section texts accumulated across cells; the store cell (last in file
#: order) writes the combined artifact.
_SECTIONS: dict = {}


def _bulk_state(n: int) -> MapLattice:
    return MapLattice({f"k{i}": MaxInt(i % 997) for i in range(n)})


@pytest.mark.benchmark(group="hotpath")
def test_incremental_root_beats_recompute(benchmark):
    state = _bulk_state(KEYS)
    cache = IncrementalDigest()
    cache.root(state)  # warm: fingerprint every key once

    counter = [0]
    current = [state]

    def mutate() -> MapLattice:
        burst = counter[0]
        counter[0] += 1
        delta = MapLattice(
            {
                f"k{(burst * TOUCH + j) % KEYS}": MaxInt(100_000 + burst)
                for j in range(TOUCH)
            }
        )
        current[0] = current[0].join(delta)
        return current[0]

    def setup():
        return (mutate(),), {}

    benchmark.pedantic(cache.root, setup=setup, rounds=10, iterations=1)
    cached_s = benchmark.stats.stats.median

    # The pre-cache path: full decomposition, fingerprint every key,
    # sort and hash — measured on the exact same state.
    final = current[0]
    started = perf_counter()
    expected = root_of(digest_of(final))
    full_s = perf_counter() - started

    assert cache.root(final) == expected  # equality-to-recompute
    speedup = full_s / cached_s
    _SECTIONS["root"] = (
        f"incremental root @ {KEYS} keys, {TOUCH}-key bursts:\n"
        f"  cached refresh   {cached_s * 1e3:9.2f} ms/probe "
        f"({1 / cached_s:,.0f} probes/s)\n"
        f"  full recompute   {full_s * 1e3:9.2f} ms/probe "
        f"({1 / full_s:,.0f} probes/s)\n"
        f"  speedup          {speedup:9.1f}x"
    )
    assert speedup >= MIN_ROOT_SPEEDUP, (
        f"incremental root refresh only {speedup:.1f}x faster than full "
        f"recompute (gate: {MIN_ROOT_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="hotpath")
def test_frame_memo_encodes_once(benchmark):
    bundle = MapLattice({f"obj{i}": MaxInt(i) for i in range(5_000)})

    def message() -> Message:
        return Message(
            kind="keyed-delta",
            payload=bundle,
            payload_units=len(bundle),
            payload_bytes=0,
            metadata_bytes=4,
            metadata_units=1,
        )

    def fan_out_shared():
        shared = message()  # fresh object: first encode is real work
        return [frame_message(shared) for _ in range(NEIGHBORS)]

    def fan_out_fresh():
        return [frame_message(message()) for _ in range(NEIGHBORS)]

    # Identical bytes either way — the memo must not change the wire.
    assert {f.data for f in fan_out_shared()} == {f.data for f in fan_out_fresh()}

    benchmark.pedantic(fan_out_shared, rounds=10, iterations=1)
    shared_s = benchmark.stats.stats.median
    started = perf_counter()
    fan_out_fresh()
    fresh_s = perf_counter() - started

    speedup = fresh_s / shared_s
    _SECTIONS["encode"] = (
        f"encode-once fan-out, {len(bundle)}-key bundle x {NEIGHBORS} "
        f"neighbours:\n"
        f"  shared message   {shared_s * 1e3:9.2f} ms/tick "
        f"({NEIGHBORS / shared_s:,.0f} sends/s)\n"
        f"  fresh messages   {fresh_s * 1e3:9.2f} ms/tick "
        f"({NEIGHBORS / fresh_s:,.0f} sends/s)\n"
        f"  speedup          {speedup:9.1f}x"
    )
    assert speedup >= MIN_ENCODE_SPEEDUP, (
        f"shared-message fan-out only {speedup:.1f}x faster than per-"
        f"neighbour encodes (gate: {MIN_ENCODE_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="hotpath")
def test_store_hotpath_profile(benchmark, report_sink):
    from repro.kv.antientropy import AntiEntropyConfig
    from repro.kv.cluster import KVCluster
    from repro.kv.ring import HashRing
    from repro.sync import keyed_bp_rr
    from repro.workloads.kv import KVZipfWorkload

    ring = HashRing(range(8), n_shards=STORE_SHARDS, replication=3)
    cluster = KVCluster(
        ring,
        keyed_bp_rr,
        antientropy=AntiEntropyConfig(
            repair_interval=2, repair_fanout=STORE_SHARDS, repair_mode="digest"
        ),
        timing=True,
    )
    try:
        # Populate: one write per key, routed like a smart client.
        started = perf_counter()
        for i in range(STORE_KEYS):
            cluster.update(f"set:k{i}", "add", i)
        populate_s = perf_counter() - started

        ops_per_node = 8
        workload = KVZipfWorkload(
            ring,
            STORE_ROUNDS,
            ops_per_node,
            keys=STORE_KEYS,
            zipf_coefficient=1.0,
            seed=7,
        )
        total_ops = STORE_ROUNDS * len(ring.replicas) * ops_per_node

        def measure():
            cluster.run_rounds(STORE_ROUNDS, workload.updates_for)

        benchmark.pedantic(measure, rounds=1, iterations=1)
        rounds_s = benchmark.stats.stats.median
        ops_per_s = total_ops / rounds_s

        # Probe primitive on the live 100k-key store: cached shard
        # roots versus full recomputation over the same shard states.
        store = cluster.nodes[0]
        shards = sorted(store.shards)
        for shard in shards:  # warm
            store.shard_root(shard)
        started = perf_counter()
        for _ in range(5):
            for shard in shards:
                store.shard_root(shard)
        cached_s = (perf_counter() - started) / (5 * len(shards))
        started = perf_counter()
        for shard in shards:
            inner = store.shards[shard]
            assert root_of(digest_of(inner.state)) == store.shard_root(shard)
        full_s = (perf_counter() - started) / len(shards)
        speedup = full_s / cached_s

        timers = cluster.timers.snapshot()
        timer_lines = "\n".join(
            f"  {name:<24} {stats['calls']:>8} calls  "
            f"{stats['seconds'] * 1e3:>10.1f} ms  {int(stats['units']):>10} units"
            for name, stats in timers.items()
        )
        _SECTIONS["store"] = (
            f"kv store cell @ {STORE_KEYS} keys, {STORE_SHARDS} shards x rf 3, "
            f"8 replicas, digest repair:\n"
            f"  populate         {populate_s:9.2f} s "
            f"({STORE_KEYS / populate_s:,.0f} writes/s)\n"
            f"  measured rounds  {rounds_s:9.2f} s for {STORE_ROUNDS} rounds "
            f"({ops_per_s:,.0f} ops/s)\n"
            f"  cached probe     {cached_s * 1e6:9.1f} us/shard\n"
            f"  full recompute   {full_s * 1e6:9.1f} us/shard\n"
            f"  probe speedup    {speedup:9.1f}x\n"
            f"hot-path timers (replica 0..7 aggregate):\n{timer_lines}"
        )
        report = "hot-path benchmark — encode-once + incremental digests\n\n"
        report += "\n\n".join(
            _SECTIONS[name] for name in ("root", "encode", "store") if name in _SECTIONS
        )
        report_sink("hotpath", report)

        assert cluster.converged() or cluster.drain() >= 0
        assert speedup >= MIN_STORE_PROBE_SPEEDUP, (
            f"cached shard probes only {speedup:.1f}x faster than full "
            f"recompute on the live store (gate: {MIN_STORE_PROBE_SPEEDUP}x)"
        )
    finally:
        cluster.close()
