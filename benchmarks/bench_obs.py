"""Tracing overhead on a seeded kv cell.

Three variants of the identical workload: tracing fully disabled (the
default), tracing enabled into a memory sink, and tracing into a file.
Disabled tracing must show no measurable slowdown — every hot-path site
is a single ``is not None`` attribute check — while the enabled runs
quantify the price of a full structured trace, reported as overhead
relative to the untraced median.
"""

import pytest

from conftest import SCALE
from repro.experiments import KVConfig, run_kv_cell
from repro.obs import MemoryTraceSink, Tracer

ROUNDS = {"quick": 10, "paper": 30}[SCALE]

CONFIG = KVConfig(
    replicas=8,
    keys=400,
    rounds=ROUNDS,
    ops_per_node=6,
    shards=16,
    replication=2,
    zipf=1.0,
    seed=42,
    workload="zipf",
)


def run_untraced():
    return run_kv_cell(CONFIG, "delta-based-bp-rr")


def run_traced_memory():
    return run_kv_cell(
        CONFIG, "delta-based-bp-rr", tracer=Tracer(MemoryTraceSink())
    )


def run_traced_file(path):
    config = KVConfig(**{**CONFIG.__dict__, "trace": path})
    return run_kv_cell(config, "delta-based-bp-rr")


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_tracing_disabled(benchmark):
    cell = benchmark.pedantic(run_untraced, rounds=3, iterations=1)
    assert cell.converged


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_tracing_memory_sink(benchmark):
    cell = benchmark.pedantic(run_traced_memory, rounds=3, iterations=1)
    assert cell.converged


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_tracing_file_sink(benchmark, tmp_path, report_sink):
    path = str(tmp_path / "bench_trace.jsonl")
    cell = benchmark.pedantic(
        run_traced_file, args=(path,), rounds=3, iterations=1
    )
    assert cell.converged

    # Measurements are seed-identical with tracing on or off: the trace
    # observes the run, it never perturbs it.
    untraced = run_untraced()
    assert cell == untraced

    from repro.obs import read_trace, trace_totals

    events = read_trace(path)
    totals = trace_totals(events)
    assert totals["messages"] == cell.messages
    report_sink(
        "obs_overhead",
        "\n".join(
            [
                "tracing overhead cell "
                f"({CONFIG.replicas} replicas, {CONFIG.keys} keys, "
                f"{ROUNDS} rounds)",
                f"  trace events : {len(events)}",
                f"  wire messages: {totals['messages']}",
                "  timings are in the pytest-benchmark table for group "
                "'obs-overhead' (compare disabled vs memory vs file).",
            ]
        ),
    )
