"""Ablation — synchronization granularity for multi-object stores.

DESIGN.md calls out a key modelling decision for the Retwis deployment:
Algorithm 1 must run *per object* (as in the paper's 30 000-CRDT
deployment), not over one store-wide composed CRDT.  This bench
quantifies why: with a store-wide inflation check, one hot object drags
every cold object's δ-groups back into the buffer, so classic collapses
even at low contention; with per-object checks, classic only pays for
genuinely contended objects.  BP+RR is essentially unaffected — the ∆
extraction is already per-irreducible.
"""

import pytest

from conftest import retwis_config
from repro.experiments.report import format_table
from repro.sim.runner import run_suite
from repro.sim.topology import partial_mesh
from repro.sync import classic, delta_bp_rr, keyed_bp_rr, keyed_classic
from repro.workloads import RetwisWorkload


def run_granularity_ablation(zipf: float = 0.5):
    config = retwis_config()
    topology = partial_mesh(config.nodes, config.degree)

    def workload():
        return RetwisWorkload(
            config.nodes,
            users=config.users,
            rounds=config.rounds,
            ops_per_node=config.ops_per_node,
            zipf_coefficient=zipf,
            seed=config.seed,
        )

    return run_suite(
        {
            "classic / whole-store": classic,
            "classic / per-object": keyed_classic,
            "bp+rr / whole-store": delta_bp_rr,
            "bp+rr / per-object": keyed_bp_rr,
        },
        workload,
        topology,
    )


@pytest.mark.benchmark(group="ablation-granularity")
def test_granularity_ablation(benchmark, report_sink):
    results = benchmark.pedantic(run_granularity_ablation, rounds=1, iterations=1)
    rows = [
        (label, result.transmission_bytes(), result.converged)
        for label, result in sorted(results.items())
    ]
    report_sink(
        "ablation_granularity",
        format_table(
            ("algorithm / granularity", "bytes transmitted", "converged"),
            rows,
            title="Ablation — Algorithm 1 granularity on Retwis (Zipf 0.5)",
        ),
    )

    # Everything converges regardless of granularity.
    assert all(result.converged for result in results.values())

    # Whole-store classic is dramatically worse than per-object classic
    # even at low contention — the modelling choice the paper's Fig. 11
    # numbers silently depend on.
    assert (
        results["classic / whole-store"].transmission_bytes()
        > 2 * results["classic / per-object"].transmission_bytes()
    )

    # BP+RR barely cares: ∆ extraction is already per-irreducible.
    whole = results["bp+rr / whole-store"].transmission_bytes()
    per_object = results["bp+rr / per-object"].transmission_bytes()
    assert whole < 1.5 * per_object
