"""Figure 12 — CPU overhead of classic delta-based vs BP+RR on Retwis.

Regenerates the processing-cost comparison across Zipf coefficients.
The deterministic element-count proxy carries the assertions (it is
machine-independent); the wall-clock ratio is reported alongside.
"""

import pytest

from conftest import retwis_config
from repro.experiments import run_figure12
from repro.experiments.retwis_sweep import PAPER_COEFFICIENTS


@pytest.mark.benchmark(group="figure12")
def test_figure12(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure12,
        kwargs=dict(coefficients=PAPER_COEFFICIENTS, config=retwis_config()),
        rounds=1,
        iterations=1,
    )
    report_sink("figure12", result.render())

    # The overhead grows with contention (paper: 0.4x → 5.5x → 7.9x).
    proxies = [result.cpu_ratio_proxy(c) for c in PAPER_COEFFICIENTS]
    assert proxies == sorted(proxies)
    assert result.overhead_proxy(PAPER_COEFFICIENTS[0]) < result.overhead_proxy(
        PAPER_COEFFICIENTS[-1]
    )
    # At high contention classic pays a multiple of BP+RR's work.
    assert result.cpu_ratio_proxy(1.5) > 2.0
    # Wall-clock agrees in direction at the extremes.
    assert result.cpu_ratio_wall(1.5) > result.cpu_ratio_wall(0.5) * 0.8
