"""Figure 8 — transmission of GMap 10 %, 30 %, 60 %, 100 %.

Regenerates the contention sweep over the 1000-key grow-only map on
both topologies, asserting the Section V-B.1 trends.
"""

import pytest

from conftest import GMAP_ROUNDS
from repro.experiments import run_figure8
from repro.experiments.figure8 import GMAP_WORKLOADS


@pytest.mark.benchmark(group="figure8")
def test_figure8(benchmark, report_sink):
    result = benchmark.pedantic(
        run_figure8,
        kwargs=dict(nodes=15, rounds=GMAP_ROUNDS),
        rounds=1,
        iterations=1,
    )
    report_sink("figure8", result.render())

    for workload in GMAP_WORKLOADS:
        # BP suffices if the graph is acyclic.  For gmap-10 and
        # gmap-100 it is *exactly* optimal; at mid contention a small
        # residue (≲ 25 %) remains that only RR can trim: two nodes
        # bumping the same key from the same base produce identical
        # entries travelling from two origins, and BP deduplicates
        # provenance, not content.
        assert result.ratio(workload, "tree", "delta-based-bp") <= 1.25
        # On the tree BP still beats RR-only, by a wide margin.
        assert result.ratio(workload, "tree", "delta-based-bp") < result.ratio(
            workload, "tree", "delta-based-rr"
        )
        # ...but RR is crucial in the general (cyclic) case.
        assert result.ratio(workload, "mesh", "delta-based-rr") < result.ratio(
            workload, "mesh", "delta-based-bp"
        )
    for workload in ("gmap-10", "gmap-100"):
        assert result.ratio(workload, "tree", "delta-based-bp") == 1.0

    # The BP+RR saving vs state-based shrinks as contention rises, and
    # at GMap 100% the improvement is modest.
    reductions = [
        result.reduction_vs_state_based(w, "mesh", "delta-based-bp-rr")
        for w in GMAP_WORKLOADS
    ]
    assert reductions[0] > reductions[-1]
    assert 0.0 < reductions[-1] < 0.6

    # Scuttlebutt reduces transmission vs state-based at low contention.
    assert result.reduction_vs_state_based("gmap-10", "mesh", "scuttlebutt") > 0.2
