"""Compare a fresh hot-path benchmark run against the stored baseline.

The machine-independent regression gates live *inside*
``bench_hotpath.py`` as speedup-ratio assertions (cached vs recompute,
shared vs fresh encodes) — those fail deterministically when a cache
stops working, regardless of host speed.  This script adds the
throughput dimension on top: it reads two pytest-benchmark JSON files
and fails if any cell's median wall time regressed by more than a
generous factor.  The factor is deliberately loose because CI runners
and the machine that recorded ``results/hotpath_baseline.json`` differ;
it catches order-of-magnitude regressions (an accidentally quadratic
hot path), not few-percent noise.

Usage::

    python benchmarks/check_hotpath_regression.py NEW.json [BASELINE.json]

Exit status 1 on regression, with a per-cell report either way.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A cell fails if its median time exceeds baseline * ALLOWED_SLOWDOWN.
ALLOWED_SLOWDOWN = 4.0

DEFAULT_BASELINE = Path(__file__).parent / "results" / "hotpath_baseline.json"


def medians(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    return {bench["name"]: bench["stats"]["median"] for bench in report["benchmarks"]}


def main(argv) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__, file=sys.stderr)
        return 2
    new = medians(Path(argv[1]))
    baseline = medians(Path(argv[2]) if len(argv) == 3 else DEFAULT_BASELINE)

    failed = []
    for name, base_s in sorted(baseline.items()):
        now_s = new.get(name)
        if now_s is None:
            failed.append(name)
            print(f"MISSING  {name}: in baseline but not in the new run")
            continue
        ratio = now_s / base_s
        verdict = "ok" if ratio <= ALLOWED_SLOWDOWN else "REGRESSED"
        print(
            f"{verdict:>9}  {name}: {now_s * 1e3:.1f} ms vs baseline "
            f"{base_s * 1e3:.1f} ms ({ratio:.2f}x, gate {ALLOWED_SLOWDOWN:g}x)"
        )
        if ratio > ALLOWED_SLOWDOWN:
            failed.append(name)
    for name in sorted(set(new) - set(baseline)):
        print(f"      new  {name}: {new[name] * 1e3:.1f} ms (no baseline yet)")

    if failed:
        print(f"hot-path regression gate FAILED: {', '.join(sorted(failed))}")
        return 1
    print("hot-path regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
