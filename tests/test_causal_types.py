"""Semantics of each causal CRDT: conflict policies under concurrency.

Each scenario builds the canonical concurrent shapes — add vs remove,
enable vs disable, write vs write, increment vs reset, update vs key
removal — and checks that the policy named by the type wins after
merging in both directions.  Deltas returned by mutators are also
checked to be exactly what must travel: fresh-dot payloads for
assertions, context-only payloads for retractions.
"""

import pytest

from repro.causal import (
    AWSet,
    Atom,
    Causal,
    CausalMVRegister,
    CCounter,
    DWFlag,
    EWFlag,
    ORMap,
    RWSet,
)


def sync(*replicas):
    """Merge every replica into every other (full exchange)."""
    for left in replicas:
        for right in replicas:
            if left is not right:
                left.merge(right)


# ---------------------------------------------------------------------------
# Flags.
# ---------------------------------------------------------------------------


class TestEWFlag:
    def test_starts_disabled(self):
        assert not EWFlag("A").enabled

    def test_enable_then_disable_locally(self):
        flag = EWFlag("A")
        flag.enable()
        assert flag.enabled
        flag.disable()
        assert not flag.enabled

    def test_concurrent_enable_wins(self):
        a, b = EWFlag("A"), EWFlag("B")
        a.enable()
        b.merge(a)
        b.disable()
        a.enable()  # concurrent with b's disable
        sync(a, b)
        assert a.enabled and b.enabled

    def test_observed_disable_wins_sequentially(self):
        a, b = EWFlag("A"), EWFlag("B")
        a.enable()
        b.merge(a)
        b.disable()
        a.merge(b)
        assert not a.enabled

    def test_disable_delta_is_context_only(self):
        flag = EWFlag("A")
        flag.enable()
        delta = flag.disable_delta(flag.state)
        assert delta.store.is_empty
        assert not delta.context.is_empty

    def test_disable_on_clear_flag_is_noop(self):
        flag = EWFlag("A")
        assert flag.disable_delta(flag.state).is_bottom

    def test_repeated_enables_keep_single_dot(self):
        """Each enable covers the previous one: no dot accumulation."""
        flag = EWFlag("A")
        for _ in range(5):
            flag.enable()
        assert len(flag.state.store.dots()) == 1


class TestDWFlag:
    def test_starts_enabled(self):
        assert DWFlag("A").enabled

    def test_concurrent_disable_wins(self):
        a, b = DWFlag("A"), DWFlag("B")
        a.disable()
        b.merge(a)
        b.enable()
        a.disable()  # concurrent with b's enable
        sync(a, b)
        assert not a.enabled and not b.enabled

    def test_observed_enable_wins_sequentially(self):
        a, b = DWFlag("A"), DWFlag("B")
        a.disable()
        b.merge(a)
        b.enable()
        a.merge(b)
        assert a.enabled


# ---------------------------------------------------------------------------
# Sets.
# ---------------------------------------------------------------------------


class TestAWSet:
    def test_add_then_contains(self):
        s = AWSet("A")
        s.add("x")
        assert "x" in s and s.value == {"x"}

    def test_remove_observed_element(self):
        s = AWSet("A")
        s.add("x")
        s.remove("x")
        assert "x" not in s

    def test_concurrent_add_beats_remove(self):
        a, b = AWSet("A"), AWSet("B")
        a.add("x")
        b.merge(a)
        b.remove("x")
        a.add("x")  # concurrent re-add
        sync(a, b)
        assert "x" in a and "x" in b

    def test_remove_only_affects_observed_adds(self):
        """A removal shipped before seeing a concurrent add spares it."""
        a, b = AWSet("A"), AWSet("B")
        a.add("x")
        removal = a.remove_delta(a.state, "x")  # observes only a's add
        b.add("x")  # concurrent
        b.merge(removal)
        assert "x" in b

    def test_remove_unknown_element_is_noop(self):
        s = AWSet("A")
        assert s.remove_delta(s.state, "ghost").is_bottom

    def test_removal_delta_carries_no_payload(self):
        s = AWSet("A")
        s.add("x")
        delta = s.remove_delta(s.state, "x")
        assert delta.store.is_empty
        assert not delta.context.is_empty

    def test_re_add_after_remove_uses_fresh_dot(self):
        s = AWSet("A")
        s.add("x")
        s.remove("x")
        s.add("x")
        assert "x" in s
        assert len(s.state.store.dots()) == 1

    def test_clear_empties_set(self):
        s = AWSet("A")
        for e in ("x", "y", "z"):
            s.add(e)
        s.clear()
        assert len(s) == 0

    def test_clear_spares_concurrent_adds(self):
        a, b = AWSet("A"), AWSet("B")
        a.add("x")
        b.merge(a)
        clearing = b.clear_delta(b.state)
        a.add("y")  # concurrent with the clear
        a.merge(clearing)
        assert a.value == {"y"}

    def test_iteration_and_len(self):
        s = AWSet("A")
        s.add("x")
        s.add("y")
        assert sorted(s) == ["x", "y"]
        assert len(s) == 2

    def test_removed_elements_do_not_grow_state(self):
        """Churn leaves the context compact and the store small."""
        s = AWSet("A")
        for i in range(50):
            s.add(f"e{i}")
            s.remove(f"e{i}")
        assert len(s) == 0
        assert s.state.store.is_empty
        assert s.state.context.size_units() == 1  # one compact vector entry


class TestRWSet:
    def test_add_then_contains(self):
        s = RWSet("A")
        s.add("x")
        assert "x" in s

    def test_remove_observed_element(self):
        s = RWSet("A")
        s.add("x")
        s.remove("x")
        assert "x" not in s

    def test_concurrent_remove_beats_add(self):
        a, b = RWSet("A"), RWSet("B")
        a.add("x")
        b.merge(a)
        b.remove("x")
        a.add("x")  # concurrent re-add
        sync(a, b)
        assert "x" not in a and "x" not in b

    def test_add_after_observed_remove_restores(self):
        a, b = RWSet("A"), RWSet("B")
        a.add("x")
        b.merge(a)
        b.remove("x")
        a.merge(b)
        a.add("x")  # has observed the removal: supersedes it
        b.merge(a)
        assert "x" in a and "x" in b

    def test_value_iteration(self):
        s = RWSet("A")
        s.add("x")
        s.add("y")
        s.remove("y")
        assert s.value == {"x"}
        assert len(s) == 1


# ---------------------------------------------------------------------------
# Registers.
# ---------------------------------------------------------------------------


class TestCausalMVRegister:
    def test_unwritten_reads_empty(self):
        assert CausalMVRegister("A").values == frozenset()

    def test_write_then_read(self):
        r = CausalMVRegister("A")
        r.write("v1")
        assert r.values == {"v1"}

    def test_concurrent_writes_both_survive(self):
        a, b = CausalMVRegister("A"), CausalMVRegister("B")
        a.write(1)
        b.write(2)
        sync(a, b)
        assert a.values == {1, 2} and b.values == {1, 2}

    def test_covering_write_collapses_siblings(self):
        a, b = CausalMVRegister("A"), CausalMVRegister("B")
        a.write(1)
        b.write(2)
        a.merge(b)
        a.write(3)  # observed both siblings
        b.merge(a)
        assert b.values == {3}

    def test_sequential_write_supersedes(self):
        r = CausalMVRegister("A")
        r.write("old")
        r.write("new")
        assert r.values == {"new"}

    def test_none_is_a_legal_payload(self):
        r = CausalMVRegister("A")
        r.write(None)
        assert r.values == {None}


class TestAtom:
    def test_join_of_equal_atoms(self):
        assert Atom(5).join(Atom(5)) == Atom(5)

    def test_join_with_bottom(self):
        assert Atom().join(Atom(5)) == Atom(5)
        assert Atom(5).join(Atom()) == Atom(5)

    def test_join_of_distinct_atoms_raises(self):
        with pytest.raises(ValueError, match="distinct atoms"):
            Atom(1).join(Atom(2))

    def test_order_and_delta(self):
        assert Atom().leq(Atom(1))
        assert not Atom(1).leq(Atom(2))
        assert Atom(1).delta(Atom(1)).is_bottom
        assert Atom(1).delta(Atom()) == Atom(1)


# ---------------------------------------------------------------------------
# Counter.
# ---------------------------------------------------------------------------


class TestCCounter:
    def test_increments_accumulate(self):
        c = CCounter("A")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_increment_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            CCounter("A").increment(0)

    def test_concurrent_increments_sum(self):
        a, b = CCounter("A"), CCounter("B")
        a.increment(2)
        b.increment(3)
        sync(a, b)
        assert a.value == 5 and b.value == 5

    def test_reset_zeroes_observed(self):
        a, b = CCounter("A"), CCounter("B")
        a.increment(7)
        b.merge(a)
        b.reset()
        a.merge(b)
        assert a.value == 0

    def test_unobserved_increment_survives_reset(self):
        a, b, c = CCounter("A"), CCounter("B"), CCounter("C")
        a.increment(3)
        b.merge(a)
        b.reset()
        c.increment(2)  # never observed by the reset
        a.merge(b)
        a.merge(c)
        assert a.value == 2

    def test_per_replica_state_stays_single_dot(self):
        c = CCounter("A")
        for _ in range(10):
            c.increment()
        assert len(c.state.store.dots()) == 1
        assert c.value == 10

    def test_reset_on_zero_counter_is_noop(self):
        c = CCounter("A")
        assert c.reset_delta(c.state).is_bottom


# ---------------------------------------------------------------------------
# OR-Map.
# ---------------------------------------------------------------------------


class TestORMap:
    def _fresh(self, name):
        """An OR-map of AW-set values for replica ``name``."""
        return ORMap(name, value_bottom=Causal.map_bottom())

    def test_update_creates_key(self):
        m = self._fresh("A")
        helper = AWSet("A")
        m.update("cart", lambda view: helper.add_delta(view, "milk"))
        assert "cart" in m
        view = AWSet("A", m.value_view("cart"))
        assert "milk" in view

    def test_remove_erases_observed_key(self):
        m = self._fresh("A")
        helper = AWSet("A")
        m.update("cart", lambda view: helper.add_delta(view, "milk"))
        m.remove("cart")
        assert "cart" not in m

    def test_remove_unknown_key_is_noop(self):
        m = self._fresh("A")
        assert m.remove_delta(m.state, "ghost").is_bottom

    def test_concurrent_update_survives_key_removal(self):
        a, b = self._fresh("A"), self._fresh("B")
        helper_a, helper_b = AWSet("A"), AWSet("B")
        a.update("cart", lambda view: helper_a.add_delta(view, "milk"))
        b.merge(a)
        removal = b.remove_delta(b.state, "cart")
        a.update("cart", lambda view: helper_a.add_delta(view, "eggs"))
        a.merge(removal)
        view = AWSet("A", a.value_view("cart"))
        assert view.value == {"eggs"}  # milk was observed by the removal

    def test_nested_register_values(self):
        m = ORMap("A", value_bottom=Causal.fun_bottom())
        reg = CausalMVRegister("A")
        m.update("bio", lambda view: reg.write_delta(view, "hello"))
        values = {atom.value for atom in m.value_view("bio").store.values()}
        assert values == {"hello"}

    def test_clear_covers_every_key(self):
        m = self._fresh("A")
        helper = AWSet("A")
        for key in ("one", "two"):
            m.update(key, lambda view: helper.add_delta(view, "v"))
        m.clear()
        assert len(m) == 0

    def test_keys_iteration(self):
        m = self._fresh("A")
        helper = AWSet("A")
        m.update("k1", lambda view: helper.add_delta(view, "v"))
        m.update("k2", lambda view: helper.add_delta(view, "v"))
        assert sorted(m) == ["k1", "k2"]
        assert m.keys() == {"k1", "k2"}

    def test_update_with_noop_mutator_is_bottom(self):
        m = self._fresh("A")
        helper = AWSet("A")
        delta = m.update_delta(
            m.state, "cart", lambda view: helper.remove_delta(view, "ghost")
        )
        assert delta.is_bottom

    def test_dot_namespaces_do_not_collide_across_keys(self):
        """Sequential updates on different keys draw distinct dots."""
        m = self._fresh("A")
        helper = AWSet("A")
        m.update("k1", lambda view: helper.add_delta(view, "v"))
        m.update("k2", lambda view: helper.add_delta(view, "v"))
        assert len(m.state.store.dots()) == 2
