"""Golden corpus for the PR 10 interprocedural rules.

Same contract as ``test_lint_rules.py`` — every rule gets triggers
*and* near-misses, and the near-misses are the real specification:
they pin exactly where each analysis gives up (non-awaited coroutines,
taint that never reaches the core, ownership transfers).  Virtual
paths matter here: ``repro/sim/...`` is deterministic core,
``repro/serve/...`` is not, and cross-module chains use separate
entries in the source mapping.
"""

from repro.lint import ALL_RULES, run_rules
from repro.lint.engine import Project, load_module


def lint_sources(sources):
    project = Project(
        modules=[load_module(path, text) for path, text in sources.items()]
    )
    return run_rules(project, ALL_RULES())


def rules_hit(sources):
    return sorted({f.rule for f in lint_sources(sources).findings})


def findings_for(sources, rule):
    return [f for f in lint_sources(sources).findings if f.rule == rule]


class TestTransitiveBlocking:
    def test_one_hop_chain_triggers(self):
        source = (
            "import time\n"
            "def settle():\n"
            "    time.sleep(0.1)\n"
            "async def pump():\n"
            "    settle()\n"
        )
        (finding,) = findings_for({"repro/serve/app.py": source}, "async-blocking-transitive")
        # The frontier is the async def's call site, chain spelled out.
        assert finding.line == 5
        assert "settle() -> time.sleep()" in finding.message

    def test_two_hop_chain_triggers(self):
        source = (
            "import time\n"
            "def nap():\n"
            "    time.sleep(0.1)\n"
            "def settle():\n"
            "    nap()\n"
            "async def pump():\n"
            "    settle()\n"
        )
        (finding,) = findings_for({"repro/serve/app.py": source}, "async-blocking-transitive")
        assert finding.line == 7
        assert "settle() -> nap() -> time.sleep()" in finding.message

    def test_cross_module_chain_triggers(self):
        sources = {
            "repro/serve/util.py": (
                "import time\n"
                "def settle():\n"
                "    time.sleep(0.1)\n"
            ),
            "repro/serve/app.py": (
                "from repro.serve.util import settle\n"
                "async def pump():\n"
                "    settle()\n"
            ),
        }
        (finding,) = findings_for(sources, "async-blocking-transitive")
        assert finding.path == "repro/serve/app.py"

    def test_sync_only_chain_is_clean(self):
        # No async frontier: blocking helpers called from sync code
        # are the controller's synchronous protocol, by design.
        source = (
            "import time\n"
            "def settle():\n"
            "    time.sleep(0.1)\n"
            "def drive():\n"
            "    settle()\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_unawaited_async_callee_is_clean(self):
        # Calling an async function without awaiting it only builds
        # the coroutine object — the blocking body does not run here.
        source = (
            "import time\n"
            "async def slow():\n"
            "    time.sleep(0.1)\n"
            "async def pump():\n"
            "    task = slow\n"
            "    coro = slow()\n"
            "    del coro\n"
        )
        findings = findings_for({"repro/serve/app.py": source}, "async-blocking-transitive")
        # Only slow()'s own direct call site is flagged — pump is not.
        assert [f.line for f in findings] == [3]

    def test_awaited_async_callee_reports_at_its_own_site(self):
        # The blocking async callee is itself the frontier; the awaiting
        # caller is not double-reported.
        source = (
            "import time\n"
            "async def slow():\n"
            "    time.sleep(0.1)\n"
            "async def pump():\n"
            "    await slow()\n"
        )
        findings = findings_for({"repro/serve/app.py": source}, "async-blocking-transitive")
        assert [f.line for f in findings] == [3]

    def test_top_callee_does_not_propagate(self):
        # The helper is reached only through an untyped receiver (⊤):
        # the analysis must stay silent rather than guess.
        source = (
            "import time\n"
            "def settle():\n"
            "    time.sleep(0.1)\n"
            "async def pump(obj):\n"
            "    obj.settle()\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []


class TestDetTaint:
    def test_tainted_argument_into_core_triggers(self):
        sources = {
            "repro/sim/engine.py": "def schedule(at):\n    return at\n",
            "repro/serve/app.py": (
                "import time\n"
                "from repro.sim.engine import schedule\n"
                "def drive():\n"
                "    now = time.time()\n"
                "    schedule(now)\n"
            ),
        }
        (finding,) = findings_for(sources, "det-taint")
        assert finding.path == "repro/serve/app.py"
        assert "time.time" in finding.message
        assert "schedule" in finding.message

    def test_taint_through_helper_return_triggers(self):
        # helper() -> time.time() taints every caller of helper: the
        # interprocedural fixpoint, not a lexical match.
        sources = {
            "repro/sim/engine.py": "def schedule(at):\n    return at\n",
            "repro/serve/app.py": (
                "import time\n"
                "from repro.sim.engine import schedule\n"
                "def stamp():\n"
                "    return time.time()\n"
                "def drive():\n"
                "    schedule(stamp())\n"
            ),
        }
        (finding,) = findings_for(sources, "det-taint")
        assert "time.time" in finding.message

    def test_core_calling_tainted_helper_triggers(self):
        sources = {
            "repro/serve/util.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/sim/engine.py": (
                "from repro.serve.util import stamp\n"
                "def tick():\n"
                "    return stamp()\n"
            ),
        }
        (finding,) = findings_for(sources, "det-taint")
        assert finding.path == "repro/sim/engine.py"

    def test_transparent_wrapper_does_not_launder(self):
        sources = {
            "repro/sim/engine.py": "def schedule(at):\n    return at\n",
            "repro/serve/app.py": (
                "import time\n"
                "from repro.sim.engine import schedule\n"
                "def drive():\n"
                "    schedule(int(time.time()))\n"
            ),
        }
        assert len(findings_for(sources, "det-taint")) == 1

    def test_tainted_store_on_core_typed_object_triggers(self):
        sources = {
            "repro/sim/state.py": (
                "class SimState:\n"
                "    def __init__(self):\n"
                "        self.now = 0\n"
            ),
            "repro/serve/app.py": (
                "import time\n"
                "from repro.sim.state import SimState\n"
                "def drive():\n"
                "    state = SimState()\n"
                "    state.now = time.time()\n"
            ),
        }
        (finding,) = findings_for(sources, "det-taint")
        assert ".now" in finding.message
        assert "SimState" in finding.message

    def test_clean_argument_into_core_is_clean(self):
        sources = {
            "repro/sim/engine.py": "def schedule(at):\n    return at\n",
            "repro/serve/app.py": (
                "from repro.sim.engine import schedule\n"
                "def drive(config):\n"
                "    schedule(config.at)\n"
            ),
        }
        assert rules_hit(sources) == []

    def test_taint_that_stays_out_of_core_is_clean(self):
        # Wall time flowing into serving-side logging is fine; only
        # the core boundary is guarded.
        sources = {
            "repro/serve/app.py": (
                "import time\n"
                "def drive(log):\n"
                "    now = time.time()\n"
                "    log.emit(now)\n"
            ),
        }
        assert rules_hit(sources) == []


class TestResourceTypestate:
    def test_exception_path_leak_triggers(self):
        # close() exists on the happy path, but step() raising strands
        # the handle — exactly the shape the CFG raise edges catch.
        source = (
            "def copy(step):\n"
            "    handle = open('wal.log')\n"
            "    step(handle)\n"
            "    handle.close()\n"
        )
        (finding,) = findings_for({"repro/serve/app.py": source}, "resource-typestate")
        assert finding.line == 2
        assert "'handle'" in finding.message
        assert "exception path" in finding.message

    def test_finally_clean_is_clean(self):
        source = (
            "def copy(step):\n"
            "    handle = open('wal.log')\n"
            "    try:\n"
            "        step(handle)\n"
            "    finally:\n"
            "        handle.close()\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_with_block_is_exempt(self):
        source = (
            "def copy(step):\n"
            "    with open('wal.log') as handle:\n"
            "        step(handle)\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_ownership_transfer_is_exempt(self):
        # Acquire-and-stash: the close obligation moved to the object;
        # the precondition (acquire AND release here) fails, silence.
        source = (
            "class Holder:\n"
            "    def open_log(self):\n"
            "        self.handle = open('wal.log')\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_escape_into_collection_kills_tracking(self):
        source = (
            "def pool(step, handles):\n"
            "    handle = open('wal.log')\n"
            "    handles.append(handle)\n"
            "    other = open('other.log')\n"
            "    step(other)\n"
            "    other.close()\n"
        )
        # 'handle' escaped into the pool (exempt); 'other' still leaks.
        (finding,) = findings_for({"repro/serve/app.py": source}, "resource-typestate")
        assert "'other'" in finding.message

    def test_release_only_helper_is_exempt(self):
        source = (
            "def release(self):\n"
            "    self.handle.close()\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_flock_leak_on_exception_triggers(self):
        source = (
            "import fcntl\n"
            "def guard(handle, step):\n"
            "    fcntl.flock(handle, fcntl.LOCK_EX)\n"
            "    step()\n"
            "    fcntl.flock(handle, fcntl.LOCK_UN)\n"
        )
        (finding,) = findings_for({"repro/serve/app.py": source}, "resource-typestate")
        assert "flock" in finding.message
        assert "LOCK_UN" in finding.message

    def test_flock_in_finally_is_clean(self):
        source = (
            "import fcntl\n"
            "def guard(handle, step):\n"
            "    fcntl.flock(handle, fcntl.LOCK_EX)\n"
            "    try:\n"
            "        step()\n"
            "    finally:\n"
            "        fcntl.flock(handle, fcntl.LOCK_UN)\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_fence_unfence_pairing(self):
        source = (
            "def quiesce(self, step):\n"
            "    self.bus.fence(self.epoch)\n"
            "    step()\n"
            "    self.bus.unfence(self.epoch)\n"
        )
        (finding,) = findings_for({"repro/serve/app.py": source}, "resource-typestate")
        assert "unfence" in finding.message

    def test_fence_in_finally_is_clean(self):
        source = (
            "def quiesce(self, step):\n"
            "    self.bus.fence(self.epoch)\n"
            "    try:\n"
            "        step()\n"
            "    finally:\n"
            "        self.bus.unfence(self.epoch)\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []

    def test_loop_carried_acquire_is_exempt(self):
        source = (
            "def rotate(paths, step):\n"
            "    for path in paths:\n"
            "        handle = open(path)\n"
            "        step(handle)\n"
            "        handle.close()\n"
        )
        assert rules_hit({"repro/serve/app.py": source}) == []
