"""Tests for the workload generators: Table I micro-benchmarks, Zipf
sampling, and the Table II Retwis application."""

import pytest

from repro.lattice import MapLattice, MaxInt, SetLattice
from repro.workloads import (
    GCounterWorkload,
    GMapWorkload,
    GSetWorkload,
    MICRO_BENCHMARKS,
    RetwisWorkload,
    ZipfSampler,
    make_micro_workload,
)
from repro.workloads.retwis import (
    FOLLOW_SHARE,
    POST_SHARE,
    TWEET_CONTENT_BYTES,
    TWEET_ID_BYTES,
    followers_key,
    make_tweet_content,
    make_tweet_id,
    timeline_key,
    wall_key,
)


class TestGCounterWorkload:
    def test_one_increment_per_node_per_round(self):
        w = GCounterWorkload(5, rounds=3)
        assert len(w.updates_for(0, 2)) == 1
        assert w.total_updates() == 15

    def test_increment_targets_own_entry(self):
        w = GCounterWorkload(3)
        [inc] = w.updates_for(0, 1)
        delta = inc(MapLattice())
        assert delta == MapLattice({1: MaxInt(1)})

    def test_increment_builds_on_state(self):
        w = GCounterWorkload(3)
        [inc] = w.updates_for(5, 1)
        state = MapLattice({1: MaxInt(7)})
        assert inc(state) == MapLattice({1: MaxInt(8)})


class TestGSetWorkload:
    def test_elements_globally_unique(self):
        w = GSetWorkload(4, rounds=5)
        elements = {
            w.element(r, n) for r in range(5) for n in range(4)
        }
        assert len(elements) == 20

    def test_element_width_fixed(self):
        w = GSetWorkload(4, rounds=5, element_bytes=25)
        assert all(
            len(w.element(r, n)) == 25 for r in range(5) for n in range(4)
        )

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            GSetWorkload(4, rounds=5, element_bytes=5)

    def test_duplicate_add_is_bottom(self):
        w = GSetWorkload(2, rounds=1)
        [add] = w.updates_for(0, 0)
        state = SetLattice({w.element(0, 0)})
        assert add(state).is_bottom


class TestGMapWorkload:
    def test_keys_per_round_global_percentage(self):
        w = GMapWorkload(15, percent=10, total_keys=1000)
        assert w.keys_per_round == 100

    def test_node_slices_partition_the_round_quota(self):
        w = GMapWorkload(15, percent=10, total_keys=1000)
        all_keys = []
        for node in range(15):
            all_keys.extend(w.node_slice(0, node))
        assert len(all_keys) == 100
        assert len(set(all_keys)) == 100  # disjoint across nodes

    def test_slices_rotate_across_rounds(self):
        w = GMapWorkload(5, percent=10, total_keys=1000)
        round0 = set(w.node_slice(0, 0))
        round1 = set(w.node_slice(1, 0))
        assert round0 != round1

    def test_hundred_percent_touches_every_key(self):
        w = GMapWorkload(10, percent=100, total_keys=1000)
        touched = set()
        for node in range(10):
            touched.update(w.node_slice(0, node))
        assert len(touched) == 1000

    def test_refresh_delta_inflates(self):
        w = GMapWorkload(5, percent=10, total_keys=100)
        [refresh] = w.updates_for(0, 0)
        delta = refresh(MapLattice())
        assert not delta.is_bottom
        again = refresh(delta)
        assert not again.is_bottom  # refresh always bumps further

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            GMapWorkload(5, percent=0)
        with pytest.raises(ValueError):
            GMapWorkload(5, percent=150)

    def test_registry(self):
        for kind in MICRO_BENCHMARKS:
            w = make_micro_workload(kind, 15, rounds=10)
            assert w.rounds == 10
        with pytest.raises(ValueError):
            make_micro_workload("bogus", 15)


class TestZipfSampler:
    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(100, coefficient=1.2, seed=3)
        draws = sampler.sample_many(3000)
        assert draws.count(0) > draws.count(10) > 0

    def test_low_coefficient_spreads_mass(self):
        sampler = ZipfSampler(100, coefficient=0.0, seed=3)
        assert abs(sampler.probability(0) - sampler.probability(99)) < 1e-9

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, coefficient=1.5)
        assert abs(sum(sampler.probability(r) for r in range(50)) - 1.0) < 1e-9

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, 1.0, seed=9).sample_many(50)
        b = ZipfSampler(100, 1.0, seed=9).sample_many(50)
        assert a == b

    def test_draws_in_range(self):
        sampler = ZipfSampler(10, coefficient=1.5, seed=1)
        assert all(0 <= d < 10 for d in sampler.sample_many(500))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)
        with pytest.raises(IndexError):
            ZipfSampler(10, 1.0).probability(10)


class TestRetwisWorkload:
    def test_payload_sizes_match_paper(self):
        assert len(make_tweet_id(123)) == TWEET_ID_BYTES == 31
        assert len(make_tweet_content(123)) == TWEET_CONTENT_BYTES == 270

    def test_operation_mix_close_to_table_ii(self):
        w = RetwisWorkload(10, users=200, rounds=30, ops_per_node=10, seed=1)
        total = w.stats.total
        assert total == 10 * 30 * 10
        assert abs(w.stats.follows / total - FOLLOW_SHARE) < 0.03
        assert abs(w.stats.posts / total - POST_SHARE) < 0.03

    def test_timeline_reads_produce_no_updates(self):
        w = RetwisWorkload(2, users=50, rounds=5, ops_per_node=4, seed=2)
        update_count = sum(
            len(w.updates_for(r, n)) for r in range(5) for n in range(2)
        )
        assert update_count == w.stats.follows + w.stats.posts

    def test_follow_adds_to_followers_object(self):
        w = RetwisWorkload(2, users=50, rounds=1, ops_per_node=1, seed=0)
        mutator = w._follow_mutator(type("Op", (), {"kind": "follow", "actor": 3, "target": 7, "counter": 1}))
        delta = mutator(MapLattice())
        assert followers_key(7) in delta
        assert delta.size_units() == 1

    def test_post_without_followers_writes_wall_only(self):
        w = RetwisWorkload(2, users=50, rounds=1, ops_per_node=1, seed=0)
        op = type("Op", (), {"kind": "post", "actor": 5, "target": 5, "counter": 9})
        delta = w._post_mutator(op)(MapLattice())
        assert wall_key(5) in delta
        assert delta.size_units() == 1

    def test_post_fans_out_to_follower_timelines(self):
        w = RetwisWorkload(2, users=50, rounds=1, ops_per_node=1, seed=0)
        state = MapLattice(
            {followers_key(5): SetLattice({"u0000001", "u0000002"})}
        )
        op = type("Op", (), {"kind": "post", "actor": 5, "target": 5, "counter": 9})
        delta = w._post_mutator(op)(state)
        assert wall_key(5) in delta
        assert timeline_key(1) in delta
        assert timeline_key(2) in delta
        assert delta.size_units() == 3  # 1 + #followers (Table II)

    def test_reads_reconstruct_application_view(self):
        w = RetwisWorkload(2, users=50, rounds=1, ops_per_node=1, seed=0)
        state = MapLattice()
        follow = w._follow_mutator(
            type("Op", (), {"kind": "follow", "actor": 1, "target": 5, "counter": 1})
        )
        state = state.join(follow(state))
        post = w._post_mutator(
            type("Op", (), {"kind": "post", "actor": 5, "target": 5, "counter": 2})
        )
        state = state.join(post(state))
        assert RetwisWorkload.read_followers(state, 5) == ["u0000001"]
        wall = RetwisWorkload.read_wall(state, 5)
        assert list(wall) == [make_tweet_id(2)]
        assert RetwisWorkload.read_timeline(state, 1) == [make_tweet_id(2)]

    def test_schedule_deterministic(self):
        a = RetwisWorkload(3, users=100, rounds=5, ops_per_node=5, seed=7)
        b = RetwisWorkload(3, users=100, rounds=5, ops_per_node=5, seed=7)
        assert a._schedule == b._schedule

    def test_contention_grows_with_coefficient(self):
        """Higher Zipf coefficients concentrate posts on fewer users."""

        def distinct_targets(coefficient):
            w = RetwisWorkload(
                5, users=500, rounds=20, ops_per_node=10,
                zipf_coefficient=coefficient, seed=11,
            )
            targets = {
                op.target
                for ops in w._schedule.values()
                for op in ops
                if op.kind == "post"
            }
            return len(targets)

        assert distinct_targets(1.5) < distinct_targets(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetwisWorkload(3, users=1)
