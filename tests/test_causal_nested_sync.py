"""Nested causal types end-to-end: OR-maps of CRDTs across the cluster.

The deep composition case: an observed-remove map whose values are
themselves causal CRDTs (AW-sets, registers), replicated through the
paper's protocols — with message loss on the acked variant — plus the
delta-algebra identities that make buffered δ-group joins safe.
"""

import random

import pytest

from repro.causal import (
    AWSet,
    Causal,
    CausalMVRegister,
    ORMap,
)
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import partial_mesh, tree
from repro.sync import ALGORITHMS
from repro.sync.reliable import DeltaBasedAcked


def ormap_cluster(factory, topology, rounds=6, seed=29, loss_rate=0.0):
    """Each node edits a shared map of carts (ORMap of AW-sets)."""
    config = ClusterConfig(topology=topology, loss_rate=loss_rate, loss_seed=seed)
    cluster = Cluster(config, factory, Causal.map_bottom())
    maps = [
        ORMap(node, value_bottom=Causal.map_bottom())
        for node in range(topology.n)
    ]
    sets = [AWSet(node) for node in range(topology.n)]
    rng = random.Random(seed)
    carts = ["alice", "bo", "cai"]
    items = [f"item-{i}" for i in range(6)]

    def updates_for(round_index, node):
        ormap, awset = maps[node], sets[node]
        cart = rng.choice(carts)
        roll = rng.random()
        if roll < 0.6:
            item = rng.choice(items)
            return (
                lambda state, c=cart, i=item, m=ormap, s=awset: m.update_delta(
                    state, c, lambda view: s.add_delta(view, i)
                ),
            )
        if roll < 0.8:
            item = rng.choice(items)
            return (
                lambda state, c=cart, i=item, m=ormap, s=awset: m.update_delta(
                    state, c, lambda view: s.remove_delta(view, i)
                ),
            )
        return (lambda state, c=cart, m=ormap: m.remove_delta(state, c),)

    cluster.run_rounds(rounds, updates_for)
    cluster.drain()
    return cluster


@pytest.mark.parametrize(
    "protocol", ["state-based", "delta-based", "delta-based-bp-rr", "scuttlebutt"]
)
def test_ormap_of_awsets_converges(protocol):
    cluster = ormap_cluster(ALGORITHMS[protocol], partial_mesh(8, 4))
    assert cluster.converged()
    for node in cluster.nodes:
        node.state.check_invariant()


def test_ormap_protocols_agree_on_final_state():
    reference = ormap_cluster(ALGORITHMS["state-based"], tree(8, 3))
    candidate = ormap_cluster(ALGORITHMS["delta-based-bp-rr"], tree(8, 3))
    assert reference.nodes[0].state == candidate.nodes[0].state


def test_ormap_survives_lossy_channels_with_acked_deltas():
    def factory(replica, neighbors, bottom, n_nodes, size_model):
        return DeltaBasedAcked(replica, neighbors, bottom, n_nodes, size_model)

    cluster = ormap_cluster(factory, partial_mesh(8, 4), loss_rate=0.25)
    assert cluster.converged()
    assert cluster.messages_dropped > 0


def test_ormap_of_registers_converges():
    topology = partial_mesh(6, 4)
    cluster = Cluster(
        ClusterConfig(topology=topology),
        ALGORITHMS["delta-based-bp-rr"],
        Causal.map_bottom(),
    )
    maps = [ORMap(node, value_bottom=Causal.fun_bottom()) for node in range(6)]
    regs = [CausalMVRegister(node) for node in range(6)]

    def updates_for(round_index, node):
        ormap, reg = maps[node], regs[node]
        return (
            lambda state, m=ormap, r=reg, v=f"v{round_index}-{node}": m.update_delta(
                state, "profile", lambda view: r.write_delta(view, v)
            ),
        )

    cluster.run_rounds(4, updates_for)
    cluster.drain()
    assert cluster.converged()
    final = cluster.nodes[0].state
    # The last round's writes are concurrent siblings; earlier rounds
    # were observed (directly or transitively) and coalesced away.
    siblings = final.store.get("profile")
    assert siblings is not None and len(siblings) >= 1


# ---------------------------------------------------------------------------
# Delta algebra: the identities δ-buffers rely on.
# ---------------------------------------------------------------------------


def _two_diverged_awsets():
    a, b = AWSet("A"), AWSet("B")
    for i in range(4):
        a.add(f"a{i}")
        b.add(f"b{i}")
    b.merge(a.state)
    b.remove("a1")
    a.add("shared")
    return a.state, b.state


def test_delta_is_idempotent_under_join():
    a, b = _two_diverged_awsets()
    d = a.delta(b)
    once = b.join(d)
    twice = once.join(d)
    assert once == twice


def test_delta_group_join_equals_individual_application():
    """Joining buffered deltas into one δ-group loses nothing."""
    a, b = _two_diverged_awsets()
    mid = a.join(b)
    d1 = a.delta(b)
    d2 = mid.delta(b)
    grouped = d1.join(d2)
    assert b.join(grouped) == b.join(d1).join(d2)


def test_delta_composes_transitively():
    """∆ against an older state covers ∆ against a newer one."""
    a, b = _two_diverged_awsets()
    newer = b.join(a.delta(b))
    assert a.delta(newer).is_bottom
    assert a.delta(b).join(newer) == newer


def test_second_hand_delta_preserves_removals():
    """A delta forwarded through an intermediary still kills the dot."""
    a, b = AWSet("A"), AWSet("B")
    a.add("x")
    b.merge(a.state)
    removal = b.remove("x")
    # An intermediary who never saw the element relays the δ-group.
    relay = Causal.map_bottom().join(removal)
    a.merge(relay.delta(Causal.map_bottom()))
    assert "x" not in a
