"""Property tests for the hot-path caches: they must be invisible.

Both caches exist purely for speed, so their whole contract is
observational equivalence with the code they replaced:

* :class:`~repro.sync.digest.IncrementalDigest` must return exactly
  ``digest_of(state)`` / ``root_of(digest_of(state))`` for *any*
  sequence of states it is shown — monotone join growth (the normal
  store lifecycle), arbitrary replacement (handoff installs, WAL
  rebuilds), key removal, and non-``MapLattice`` fallbacks alike.
* The :func:`~repro.codec.frame_message` memo must never serve bytes
  that differ from a fresh encode of an equal message — across local
  updates, receptions, and repair absorptions, every frame leaving a
  synchronizer decodes back to its own payload.

Hypothesis drives both through random mutation sequences over every
lattice family; the deterministic tests pin the sharing structure of
the synchronizers' fan-out (one frozen message per δ-group, private
messages only for BP-excluded neighbours).
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.codec import decode_message, frame_message
from repro.lattice import MapLattice, SetLattice
from repro.sizes import SizeModel
from repro.sync.deltabased import DeltaBased
from repro.sync.digest import IncrementalDigest, digest_of, root_of
from repro.sync.keyed import KeyedDeltaBased

from conftest import ALL_LATTICE_STRATEGIES

MODEL = SizeModel()


def values_from(family: str, *, min_size=1, max_size=8):
    return st.lists(
        ALL_LATTICE_STRATEGIES[family], min_size=min_size, max_size=max_size
    )


family_and_values = st.sampled_from(sorted(ALL_LATTICE_STRATEGIES)).flatmap(
    lambda fam: st.tuples(st.just(fam), values_from(fam))
)


# ---------------------------------------------------------------------------
# IncrementalDigest ≡ recompute, under every mutation shape.
# ---------------------------------------------------------------------------


@given(family_and_values)
def test_incremental_digest_tracks_monotone_growth(case):
    """The store lifecycle: state only ever moves up the lattice."""
    _, deltas = case
    cache = IncrementalDigest()
    state = deltas[0].bottom_like()
    for delta in deltas:
        state = state.join(delta)
        assert cache.digest(state) == digest_of(state)
        assert cache.root(state) == root_of(digest_of(state))


@given(family_and_values)
def test_incremental_digest_tracks_arbitrary_replacement(case):
    """Handoff installs and rebuilds replace state wholesale — keys may
    vanish, values may go *down*; the cache must not care."""
    _, states = case
    cache = IncrementalDigest()
    for state in states:
        assert cache.digest(state) == digest_of(state)
        assert cache.root(state) == root_of(digest_of(state))


@given(st.sampled_from(["MapLattice[MaxInt]", "MapLattice[Set]"]).flatmap(
    lambda fam: st.tuples(st.just(fam), values_from(fam, max_size=6))
))
def test_incremental_digest_interleaves_with_queries(case):
    """Re-querying an unchanged state is pure; changing it afterwards
    still refreshes correctly (no stale memo survives a mutation)."""
    _, states = case
    cache = IncrementalDigest()
    for state in states:
        first = cache.digest(state)
        assert cache.digest(state) is first  # unchanged state: memo hit
        assert first == digest_of(state)
        assert cache.root(state) == root_of(first)


def test_incremental_digest_sees_unshared_key_changes():
    """A key whose value object is replaced (not reused by join) must be
    re-fingerprinted even when the map's key set is unchanged."""
    cache = IncrementalDigest()
    a = MapLattice({"k": SetLattice({"x"})})
    assert cache.root(a) == root_of(digest_of(a))
    b = a.join(MapLattice({"k": SetLattice({"y"})}))
    assert b.entries.keys() == a.entries.keys()
    assert cache.root(b) == root_of(digest_of(b))
    assert root_of(digest_of(b)) != root_of(digest_of(a))  # a real change


# ---------------------------------------------------------------------------
# The frame memo never serves stale bytes.
# ---------------------------------------------------------------------------


def fresh_frame(message):
    """Encode an equal message with no memo attached."""
    return frame_message(dataclasses.replace(message))


def assert_frames_faithful(sends):
    for send in sends:
        frame = frame_message(send.message)
        assert frame is frame_message(send.message)  # memo hit, same object
        assert frame.data == fresh_frame(send.message).data
        decoded = decode_message(frame.data)
        assert decoded.payload == send.message.payload
        assert decoded.payload_units == send.message.payload_units


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.sampled_from("abcdefgh")),
        min_size=1,
        max_size=24,
    )
)
@settings(deadline=None)
def test_delta_sync_frames_never_stale(script):
    """Random update/sync/deliver interleavings on a BP+RR triangle:
    every frame leaving any replica encodes exactly its payload."""
    nodes = {
        r: DeltaBased(
            r, [n for n in range(3) if n != r], SetLattice(),
            n_nodes=3, size_model=MODEL, bp=True, rr=True,
        )
        for r in range(3)
    }
    for step, (replica, element) in enumerate(script):
        nodes[replica].local_update(
            lambda state, e=element: (
                state.bottom_like() if e in state else SetLattice((e,))
            )
        )
        if step % 3 == 2:
            for node in nodes.values():
                sends = node.sync_messages()
                assert_frames_faithful(sends)
                for send in sends:
                    nodes[send.dst].handle_message(node.replica, send.message)
    for node in nodes.values():
        assert_frames_faithful(node.sync_messages())


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2),
            st.sampled_from(["k1", "k2", "k3"]),
            st.sampled_from("abcd"),
        ),
        min_size=1,
        max_size=18,
    )
)
@settings(deadline=None)
def test_keyed_sync_frames_never_stale_across_absorb(script):
    """The keyed store path, including repair absorption — the memo on
    earlier messages must not leak into post-absorb encodings."""
    nodes = {
        r: KeyedDeltaBased(
            r, [n for n in range(3) if n != r], MapLattice(),
            n_nodes=3, size_model=MODEL, bp=True, rr=True,
        )
        for r in range(3)
    }
    for step, (replica, key, element) in enumerate(script):
        nodes[replica].local_update(
            lambda state, k=key, e=element: MapLattice({k: SetLattice((e,))})
        )
        if step % 3 == 1:
            for node in nodes.values():
                sends = node.sync_messages()
                assert_frames_faithful(sends)
                for send in sends:
                    nodes[send.dst].handle_message(node.replica, send.message)
        if step % 5 == 4:
            # Blanket-style repair: absorb a peer's full state.
            src = (replica + 1) % 3
            nodes[replica].absorb_state(nodes[src].state, src)
    for node in nodes.values():
        assert_frames_faithful(node.sync_messages())


# ---------------------------------------------------------------------------
# The sharing structure of the fan-out.
# ---------------------------------------------------------------------------


def gset_add(element):
    def mutator(state):
        if element in state:
            return state.bottom_like()
        return SetLattice((element,))

    return mutator


class TestSharedMessageFanOut:
    def test_untagged_neighbours_share_one_message_object(self):
        a = DeltaBased(0, [1, 2, 3], SetLattice(), n_nodes=4, size_model=MODEL)
        a.local_update(gset_add("x"))
        sends = a.sync_messages()
        assert len(sends) == 3
        assert len({id(send.message) for send in sends}) == 1

    def test_bp_gives_the_tagged_neighbour_a_private_message(self):
        a = DeltaBased(0, [1, 2, 3], SetLattice(), n_nodes=4, size_model=MODEL, bp=True)
        a.handle_message(1, _delta_message(SetLattice({"from1"})))
        a.local_update(gset_add("mine"))
        by_dst = {send.dst: send.message for send in a.sync_messages()}
        # Neighbour 1 must not get its own contribution back...
        assert by_dst[1].payload == SetLattice({"mine"})
        # ...while 2 and 3 get the full group, through one shared object.
        assert by_dst[2].payload == SetLattice({"from1", "mine"})
        assert by_dst[2] is by_dst[3]
        assert by_dst[1] is not by_dst[2]

    def test_keyed_untagged_neighbours_share_one_bundle(self):
        a = KeyedDeltaBased(
            0, [1, 2, 3], MapLattice(), n_nodes=4, size_model=MODEL, bp=True, rr=True
        )
        a.local_update(lambda state: MapLattice({"k": SetLattice({"v"})}))
        sends = a.sync_messages()
        assert len({id(send.message) for send in sends}) == 1
        assert sends[0].message.payload == MapLattice({"k": SetLattice({"v"})})

    def test_keyed_bp_excludes_the_origin_from_its_own_reflection(self):
        a = KeyedDeltaBased(
            0, [1, 2], MapLattice(), n_nodes=3, size_model=MODEL, bp=True, rr=True
        )
        a.handle_message(1, _keyed_message(MapLattice({"k": SetLattice({"theirs"})})))
        a.local_update(lambda state: MapLattice({"j": SetLattice({"ours"})}))
        by_dst = {send.dst: send.message for send in a.sync_messages()}
        assert by_dst[1].payload == MapLattice({"j": SetLattice({"ours"})})
        assert by_dst[2].payload == MapLattice(
            {"k": SetLattice({"theirs"}), "j": SetLattice({"ours"})}
        )


def _delta_message(payload):
    return DeltaBased(
        9, [], SetLattice(), n_nodes=10, size_model=MODEL
    )._group_message(payload)


def _keyed_message(payload):
    return KeyedDeltaBased(
        9, [], MapLattice(), n_nodes=10, size_model=MODEL
    )._bundle_message(payload)
