"""Unit tests for the primitive lattices: MaxInt, Chain, Bool."""

import pytest

from repro.lattice import Bool, Chain, MaxInt
from repro.sizes import SizeModel


class TestMaxInt:
    def test_join_takes_maximum(self):
        assert MaxInt(3).join(MaxInt(5)) == MaxInt(5)
        assert MaxInt(5).join(MaxInt(3)) == MaxInt(5)

    def test_join_idempotent(self):
        assert MaxInt(4).join(MaxInt(4)) == MaxInt(4)

    def test_bottom_is_zero(self):
        assert MaxInt(0).is_bottom
        assert not MaxInt(1).is_bottom
        assert MaxInt(9).bottom_like() == MaxInt(0)

    def test_leq_is_numeric_order(self):
        assert MaxInt(2).leq(MaxInt(3))
        assert not MaxInt(3).leq(MaxInt(2))
        assert MaxInt(3).leq(MaxInt(3))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MaxInt(-1)

    def test_decompose_non_bottom_is_self(self):
        assert list(MaxInt(7).decompose()) == [MaxInt(7)]

    def test_decompose_bottom_is_empty(self):
        assert list(MaxInt(0).decompose()) == []

    def test_delta_keeps_only_strictly_higher(self):
        assert MaxInt(5).delta(MaxInt(3)) == MaxInt(5)
        assert MaxInt(3).delta(MaxInt(5)) == MaxInt(0)
        assert MaxInt(3).delta(MaxInt(3)) == MaxInt(0)

    def test_increment_is_inflation(self):
        value = MaxInt(3)
        assert value.leq(value.increment())
        assert value.increment(4) == MaxInt(7)

    def test_increment_rejects_negative(self):
        with pytest.raises(ValueError):
            MaxInt(3).increment(-1)

    def test_immutability(self):
        value = MaxInt(3)
        with pytest.raises(AttributeError):
            value.value = 10

    def test_size_units(self):
        assert MaxInt(0).size_units() == 0
        assert MaxInt(42).size_units() == 1

    def test_size_bytes(self):
        model = SizeModel()
        assert MaxInt(0).size_bytes(model) == 0
        assert MaxInt(42).size_bytes(model) == model.int_bytes

    def test_hash_consistency(self):
        assert hash(MaxInt(5)) == hash(MaxInt(5))
        assert MaxInt(5) in {MaxInt(5), MaxInt(6)}

    def test_repr(self):
        assert repr(MaxInt(5)) == "MaxInt(5)"


class TestChain:
    def test_join_takes_maximum(self):
        assert Chain(7, bottom=0).join(Chain(3, bottom=0)) == Chain(7, bottom=0)

    def test_generic_over_strings(self):
        low = Chain("apple", bottom="")
        high = Chain("pear", bottom="")
        assert low.join(high) == high
        assert low.leq(high)

    def test_bottom(self):
        assert Chain(0, bottom=0).is_bottom
        assert not Chain(1, bottom=0).is_bottom
        assert Chain(9, bottom=0).bottom_like() == Chain(0, bottom=0)

    def test_value_below_bottom_rejected(self):
        with pytest.raises(ValueError):
            Chain(-1, bottom=0)

    def test_decompose(self):
        assert list(Chain(5, bottom=0).decompose()) == [Chain(5, bottom=0)]
        assert list(Chain(0, bottom=0).decompose()) == []

    def test_delta(self):
        assert Chain(5, bottom=0).delta(Chain(2, bottom=0)) == Chain(5, bottom=0)
        assert Chain(2, bottom=0).delta(Chain(5, bottom=0)).is_bottom

    def test_size_bytes_uses_value(self, size_model):
        assert Chain("abcd", bottom="").size_bytes(size_model) == 4
        assert Chain("", bottom="").size_bytes(size_model) == 0

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Chain(1, bottom=0).value = 5


class TestBool:
    def test_join_is_or(self):
        assert Bool(False).join(Bool(True)) == Bool(True)
        assert Bool(False).join(Bool(False)) == Bool(False)
        assert Bool(True).join(Bool(True)) == Bool(True)

    def test_leq(self):
        assert Bool(False).leq(Bool(True))
        assert not Bool(True).leq(Bool(False))

    def test_bottom(self):
        assert Bool(False).is_bottom
        assert Bool(True).bottom_like() == Bool(False)

    def test_decompose(self):
        assert list(Bool(True).decompose()) == [Bool(True)]
        assert list(Bool(False).decompose()) == []

    def test_delta(self):
        assert Bool(True).delta(Bool(False)) == Bool(True)
        assert Bool(True).delta(Bool(True)) == Bool(False)

    def test_size(self, size_model):
        assert Bool(False).size_units() == 0
        assert Bool(True).size_units() == 1
        assert Bool(True).size_bytes(size_model) == size_model.bool_bytes
