"""Sim ↔ TCP parity: same replicas, same rounds, two transports.

The seeded kv workload replays identically on the deterministic
simulator and on real localhost TCP sockets, because both transports
drive the same :class:`~repro.net.runtime.ReplicaRuntime` round
structure: updates land first, every live timer fires before any
delivery, and the round settles (all messages plus replies processed)
before the next begins.  With replication factor 2 each shard's replica
group is a single δ-path, so message *content* is identical down to the
δ-group level and the parity claims can be exact where the accounting
is transport-independent:

* converged keyspaces are **identical**;
* message counts and payload *units* (the paper's entry metric, which
  travels verbatim in the wire envelope) are **equal**;
* payload/total *bytes* differ only by the documented envelope-framing
  tolerance: the sim records size-model estimates (fixed 8 B integers,
  20 B identifiers), TCP records measured wire bytes (varint/UTF-8
  atoms plus the envelope header and 4 B length prefix per frame).
  Varints usually undershoot the model and framing overshoots it, so
  the ratio is asserted inside the documented band below.
"""

import pytest

from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.cluster import KVCluster
from repro.kv.ring import HashRing
from repro.sim.network import ClusterConfig
from repro.sim.topology import full_mesh
from repro.sync import StateBased, keyed_bp_rr
from repro.workloads.kv import KVZipfWorkload

#: The documented envelope-framing tolerance: measured wire bytes stay
#: within this factor of the size model's estimate in either direction.
FRAMING_TOLERANCE = (0.4, 1.6)

INNER = {"state-based": StateBased, "delta-based-bp-rr": keyed_bp_rr}


def run_kv(transport, inner, *, repair_mode=None, rounds=5):
    ring = HashRing(range(4), n_shards=8, replication=2)
    workload = KVZipfWorkload(ring, rounds, 3, keys=48, zipf_coefficient=1.0, seed=11)
    antientropy = (
        AntiEntropyConfig(repair_interval=2, repair_fanout=8, repair_mode=repair_mode)
        if repair_mode
        else None
    )
    cluster = KVCluster(ring, INNER[inner], antientropy=antientropy, transport=transport)
    try:
        cluster.run_rounds(workload.rounds, workload.updates_for)
        drain_rounds = cluster.drain()
        return {
            "converged": cluster.converged(),
            "drain": drain_rounds,
            "keyspace": cluster.merged_keyspace(),
            "messages": cluster.metrics.message_count,
            "payload_units": cluster.metrics.total_payload_units(),
            "payload_bytes": cluster.metrics.total_payload_bytes(),
            "total_bytes": cluster.metrics.total_bytes(),
            "probes": cluster.scheduler_stats()["probes"],
        }
    finally:
        cluster.close()


@pytest.mark.parametrize("inner", sorted(INNER))
def test_seeded_sweep_parity(inner):
    sim = run_kv("sim", inner)
    tcp = run_kv("tcp", inner)

    assert sim["converged"] and tcp["converged"]
    assert tcp["keyspace"] == sim["keyspace"], "transports converged differently"

    # Content parity is exact: same messages, same entry-metric totals.
    assert tcp["messages"] == sim["messages"]
    assert tcp["payload_units"] == sim["payload_units"]
    assert tcp["drain"] == sim["drain"]

    # Byte parity holds within the documented framing tolerance.
    low, high = FRAMING_TOLERANCE
    assert sim["payload_bytes"] > 0
    payload_ratio = tcp["payload_bytes"] / sim["payload_bytes"]
    total_ratio = tcp["total_bytes"] / sim["total_bytes"]
    assert low < payload_ratio < high, f"payload ratio {payload_ratio:.2f}"
    assert low < total_ratio < high, f"total ratio {total_ratio:.2f}"


def test_digest_repair_probes_fire_on_both_transports():
    """Divergence-driven repair schedules identically: the scheduler
    only sees the runtime's tick clock, never the transport."""
    sim = run_kv("sim", "delta-based-bp-rr", repair_mode="digest", rounds=7)
    tcp = run_kv("tcp", "delta-based-bp-rr", repair_mode="digest", rounds=7)
    assert sim["converged"] and tcp["converged"]
    assert tcp["keyspace"] == sim["keyspace"]
    assert tcp["probes"] == sim["probes"]


def run_kv_lossy(transport, *, rounds=6, loss_rate=0.2, loss_seed=5):
    """A seeded lossy replay; state-based tolerates arbitrary loss."""
    ring = HashRing(range(4), n_shards=8, replication=2)
    workload = KVZipfWorkload(ring, rounds, 3, keys=48, zipf_coefficient=1.0, seed=11)
    config = ClusterConfig(
        topology=full_mesh(4), loss_rate=loss_rate, loss_seed=loss_seed
    )
    cluster = KVCluster(ring, StateBased, config=config, transport=transport)
    try:
        cluster.run_rounds(workload.rounds, workload.updates_for)
        drain = cluster.drain()
        return {
            "dropped": cluster.messages_dropped,
            "messages": cluster.metrics.message_count,
            "drain": drain,
            "keyspace": cluster.merged_keyspace(),
        }
    finally:
        cluster.close()


class TestLossScheduleIsTrafficPure:
    """The loss flips are a pure function of (seed, src, dst, edge-seq).

    The old shared stream assigned flips in consumption order — on TCP
    that was event-loop callback order, so repeated runs (and sim-vs-
    TCP comparisons) dropped different frames.  Per-edge streams make
    the drop schedule a property of the traffic itself.
    """

    def test_repeated_tcp_runs_drop_identical_frames(self):
        first = run_kv_lossy("tcp")
        second = run_kv_lossy("tcp")
        assert first["dropped"] == second["dropped"] > 0
        assert first["messages"] == second["messages"]
        assert first["drain"] == second["drain"]
        assert first["keyspace"] == second["keyspace"]

    def test_sim_and_tcp_drop_identical_frames(self):
        sim = run_kv_lossy("sim")
        tcp = run_kv_lossy("tcp")
        assert tcp["dropped"] == sim["dropped"] > 0
        assert tcp["messages"] == sim["messages"]
        assert tcp["drain"] == sim["drain"]
        assert tcp["keyspace"] == sim["keyspace"]

    def test_the_loss_seed_still_selects_the_schedule(self):
        assert (
            run_kv_lossy("tcp", loss_seed=5)["dropped"]
            != run_kv_lossy("tcp", loss_seed=6)["dropped"]
        )


def test_tcp_survives_the_fault_schedule():
    """Partition + heal + crash(lose_state) + recover over real sockets."""
    from repro.experiments.kv_sweep import KVConfig, run_kv_repair_cell

    config = KVConfig(
        replicas=6,
        keys=48,
        rounds=6,
        ops_per_node=3,
        shards=12,
        replication=2,
        repair_interval=2,
        repair_fanout=8,
        transport="tcp",
    )
    cell = run_kv_repair_cell(config, "delta-based-bp-rr", "digest")
    assert cell.converged
    assert cell.probes > 0
    assert cell.repair_payload_bytes > 0
