"""Byte accounting and the δ-mutator derivation, across the catalog.

Two cross-cutting contracts:

* :class:`~repro.sizes.SizeModel` prices every payload atom the
  evaluation ships (Figure 9's 20 B identifiers, Retwis' 31 B/270 B
  strings), and the wire codec's actual output should not undercut the
  model by more than framing overhead explains;
* ``optimal_delta_mutator`` must turn *any* inflationary mutator of
  *any* lattice family into its minimal δ-mutator — the paper's
  ``mδ(x) = ∆(m(x), x)`` recipe (Section III-B).
"""

import pytest

from repro.crdt import optimal_delta_mutator
from repro.codec import encode
from repro.lattice import MapLattice, MaxInt, PairLattice, SetLattice
from repro.sizes import DEFAULT_SIZE_MODEL, SizeModel


class TestSizeModel:
    def test_paper_constants(self):
        assert DEFAULT_SIZE_MODEL.id_bytes == 20
        assert DEFAULT_SIZE_MODEL.int_bytes == 8
        assert DEFAULT_SIZE_MODEL.vector_entry_bytes() == 28

    def test_strings_count_utf8_bytes(self):
        model = SizeModel()
        assert model.sizeof("abc") == 3
        assert model.sizeof("héllo") == 6  # é is two bytes

    def test_scalar_sizes(self):
        model = SizeModel()
        assert model.sizeof(None) == 0
        assert model.sizeof(True) == model.bool_bytes
        assert model.sizeof(12345) == model.int_bytes
        assert model.sizeof(1.5) == model.int_bytes
        assert model.sizeof(b"\x00\x01") == 2

    def test_composites_sum_their_parts(self):
        model = SizeModel()
        assert model.sizeof(("ab", 3)) == 2 + model.int_bytes
        assert model.sizeof(frozenset({"a", "bc"})) == 3

    def test_unknown_types_fall_back_to_repr(self):
        model = SizeModel()

        class Opaque:
            def __repr__(self):
                return "xxxx"

        assert model.sizeof(Opaque()) == 4

    def test_vector_bytes(self):
        model = SizeModel()
        assert model.vector_bytes(10) == 10 * 28

    def test_codec_output_tracks_the_model(self):
        """Encoded payload content is at least the model's string bytes.

        The codec adds framing (tags, varints) on top of raw content,
        so the model — which prices content only — must not exceed it
        by more than the per-atom framing allowance.
        """
        model = SizeModel()
        state = SetLattice({"x" * 20, "y" * 20})
        content = state.size_bytes(model)
        framed = len(encode(state))
        assert framed >= content
        assert framed <= content + 3 * (2 + 8)  # tag + varint per atom + headers


class TestDerivedDeltaMutators:
    """mδ(x) = ∆(m(x), x) across lattice families (Section III-B)."""

    CASES = [
        # (label, mutator, state where it acts, state where it is a no-op)
        (
            "gset-add",
            lambda s: s.join(SetLattice({"e"})),
            SetLattice({"a"}),
            SetLattice({"e", "a"}),
        ),
        (
            "gcounter-bump",
            lambda m: m.join(MapLattice({"A": MaxInt(5)})),
            MapLattice({"A": MaxInt(3)}),
            MapLattice({"A": MaxInt(9)}),
        ),
        (
            "pair-first",
            lambda p: PairLattice(p.first.join(MaxInt(4)), p.second),
            PairLattice(MaxInt(1), SetLattice({"k"})),
            PairLattice(MaxInt(7), SetLattice({"k"})),
        ),
    ]

    @pytest.mark.parametrize("label,mutator,acting,noop", CASES, ids=[c[0] for c in CASES])
    def test_delta_reconstructs_the_mutation(self, label, mutator, acting, noop):
        derived = optimal_delta_mutator(mutator)
        delta = derived(acting)
        assert acting.join(delta) == mutator(acting)

    @pytest.mark.parametrize("label,mutator,acting,noop", CASES, ids=[c[0] for c in CASES])
    def test_noop_mutation_yields_bottom(self, label, mutator, acting, noop):
        derived = optimal_delta_mutator(mutator)
        assert derived(noop).is_bottom

    @pytest.mark.parametrize("label,mutator,acting,noop", CASES, ids=[c[0] for c in CASES])
    def test_delta_is_minimal(self, label, mutator, acting, noop):
        """No strictly smaller state reconstructs the mutation."""
        derived = optimal_delta_mutator(mutator)
        delta = derived(acting)
        for candidate in delta.decompose():
            if candidate == delta:
                continue
            assert acting.join(candidate) != mutator(acting)

    def test_non_optimal_gset_add_is_repaired(self):
        """The paper's motivating example: the original addδ shipped
        {e} even when e was present; the derived mutator ships ⊥."""
        always_singleton = lambda s: s.join(SetLattice({"e"}))
        derived = optimal_delta_mutator(always_singleton)
        assert derived(SetLattice({"e"})).is_bottom
