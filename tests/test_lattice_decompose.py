"""Tests for join decompositions and optimal deltas — paper Section III.

The concrete cases reproduce the paper's worked examples verbatim:
Example 1 (join-irreducible states), Example 2 (tentative
decompositions of a GCounter and a GSet state), and the Appendix C
PNCounter decomposition.
"""

import pytest

from repro.lattice import (
    MapLattice,
    MaxInt,
    PairLattice,
    SetLattice,
    decomposition,
    delta,
    is_irredundant_decomposition,
    is_join_decomposition,
    is_join_irreducible,
)


def gcounter(**entries):
    """Shorthand: gcounter(A=5, B=7) = {A ↦ 5, B ↦ 7}."""
    return MapLattice({k: MaxInt(v) for k, v in entries.items()})


class TestExample1JoinIrreducibility:
    """Paper Example 1: which states are join-irreducible."""

    def test_p1_single_entry_counter_is_irreducible(self):
        assert is_join_irreducible(gcounter(A=5))

    def test_p2_single_entry_counter_is_irreducible(self):
        assert is_join_irreducible(gcounter(B=6))

    def test_p3_two_entry_counter_is_reducible(self):
        assert not is_join_irreducible(gcounter(A=5, B=7))

    def test_s1_bottom_is_never_irreducible(self):
        assert not is_join_irreducible(SetLattice())

    def test_s2_singleton_set_is_irreducible(self):
        assert is_join_irreducible(SetLattice({"a"}))

    def test_s3_two_element_set_is_reducible(self):
        assert not is_join_irreducible(SetLattice({"a", "b"}))

    def test_definition_against_candidate_pool(self):
        """Definition 1 checked literally on the GSet Hasse diagram."""
        universe = [
            SetLattice(s)
            for s in [set(), {"a"}, {"b"}, {"c"}, {"a", "b"}, {"a", "c"},
                      {"b", "c"}, {"a", "b", "c"}]
        ]
        singletons = [SetLattice({e}) for e in "abc"]
        for value in universe:
            expected = value in singletons
            assert is_join_irreducible(value, candidates=universe) == expected


class TestExample2Decompositions:
    """Paper Example 2: tentative decompositions of p and s."""

    p = gcounter(A=5, B=7)
    s = SetLattice({"a", "b", "c"})

    def test_P1_not_a_decomposition(self):
        # {A5}, {B6} — join gives {A5,B6} ≠ p.
        parts = [gcounter(A=5), gcounter(B=6)]
        assert not is_join_decomposition(parts, self.p)

    def test_P2_decomposition_but_redundant(self):
        parts = [gcounter(A=5), gcounter(B=6), gcounter(B=7)]
        assert is_join_decomposition(parts, self.p)
        assert not is_irredundant_decomposition(parts, self.p)

    def test_P3_contains_reducible_element(self):
        # {A5,B6} is not join-irreducible, so not a join decomposition.
        parts = [gcounter(A=5, B=6), gcounter(B=7)]
        assert not is_join_decomposition(parts, self.p)

    def test_P4_is_the_unique_irredundant_decomposition(self):
        parts = [gcounter(A=5), gcounter(B=7)]
        assert is_irredundant_decomposition(parts, self.p)
        assert sorted(map(repr, decomposition(self.p))) == sorted(map(repr, parts))

    def test_S1_not_a_decomposition(self):
        parts = [SetLattice({"b"}), SetLattice({"c"})]
        assert not is_join_decomposition(parts, self.s)

    def test_S2_decomposition_with_redundancy_and_reducible(self):
        parts = [SetLattice({"a", "b"}), SetLattice({"b"}), SetLattice({"c"})]
        # {a,b} is reducible, so this fails Definition 2 outright.
        assert not is_join_decomposition(parts, self.s)

    def test_S3_irreducibility_failure(self):
        parts = [SetLattice({"a", "b"}), SetLattice({"c"})]
        assert not is_join_decomposition(parts, self.s)

    def test_S4_is_the_unique_irredundant_decomposition(self):
        parts = [SetLattice({"a"}), SetLattice({"b"}), SetLattice({"c"})]
        assert is_irredundant_decomposition(parts, self.s)
        assert sorted(map(repr, decomposition(self.s))) == sorted(map(repr, parts))


class TestAppendixCPNCounter:
    """⇓{A ↦ ⟨2,3⟩, B ↦ ⟨5,5⟩} from Appendix C."""

    def test_pncounter_decomposition(self):
        state = MapLattice(
            {
                "A": PairLattice(MaxInt(2), MaxInt(3)),
                "B": PairLattice(MaxInt(5), MaxInt(5)),
            }
        )
        expected = [
            MapLattice({"A": PairLattice(MaxInt(2), MaxInt(0))}),
            MapLattice({"A": PairLattice(MaxInt(0), MaxInt(3))}),
            MapLattice({"B": PairLattice(MaxInt(5), MaxInt(0))}),
            MapLattice({"B": PairLattice(MaxInt(0), MaxInt(5))}),
        ]
        parts = decomposition(state)
        assert sorted(map(repr, parts)) == sorted(map(repr, expected))
        assert is_irredundant_decomposition(parts, state)


class TestDeltaFunction:
    """∆(a, b) = ⊔{y ∈ ⇓a | y ⋢ b} — Section III-B."""

    def test_delta_gset(self):
        a = SetLattice({"a", "b"})
        b = SetLattice({"b", "c"})
        assert delta(a, b) == SetLattice({"a"})

    def test_delta_gcounter(self):
        a = gcounter(A=5, B=3)
        b = gcounter(A=2, B=7)
        assert delta(a, b) == gcounter(A=5)

    def test_delta_join_property(self):
        """∆(a, b) ⊔ b = a ⊔ b."""
        a = gcounter(A=5, B=3, C=1)
        b = gcounter(A=2, B=7)
        assert delta(a, b).join(b) == a.join(b)

    def test_delta_of_bottom(self):
        assert delta(SetLattice(), SetLattice({"x"})).is_bottom

    def test_delta_against_bottom_is_self(self):
        a = SetLattice({"a", "b"})
        assert delta(a, SetLattice()) == a

    def test_delta_minimality_brute_force(self):
        """Any c with c ⊔ b = a ⊔ b satisfies ∆(a,b) ⊑ c (GSet case)."""
        import itertools

        universe = ["a", "b", "c"]
        a = SetLattice({"a", "b"})
        b = SetLattice({"b", "c"})
        best = delta(a, b)
        target = a.join(b)
        for r in range(len(universe) + 1):
            for combo in itertools.combinations(universe, r):
                c = SetLattice(combo)
                if c.join(b) == target:
                    assert best.leq(c), f"∆ not minimal vs {c}"

    def test_base_class_delta_agrees_with_fast_paths(self):
        """The generic decomposition-based ∆ equals the overridden ones."""
        from repro.lattice.base import Lattice

        a = MapLattice({"x": SetLattice({"p", "q"}), "y": MaxInt(4)})
        b = MapLattice({"x": SetLattice({"q"}), "y": MaxInt(9)})
        generic = Lattice.delta(a, b)
        assert generic == a.delta(b)
