"""Unit tests for the three dot-store shapes.

Each store's causal join must implement the per-dot three-way decision
— unseen (keep), live-in-both (keep/merge), seen-and-removed (drop) —
and the live-side helpers (``irreducibles``, ``delta_live``,
``leq_live``) must agree with it.  These tests exercise each rule in
isolation with handcrafted contexts; the lattice-level property tests
cover their composition.
"""

import pytest

from repro.causal import Atom, CausalContext, Dot, DotFun, DotMap, DotSet
from repro.lattice.primitives import MaxInt
from repro.sizes import SizeModel

A1, A2, B1, B2 = Dot("A", 1), Dot("A", 2), Dot("B", 1), Dot("B", 2)


def ctx(*dots):
    return CausalContext.from_dots(dots)


# ---------------------------------------------------------------------------
# DotSet.
# ---------------------------------------------------------------------------


class TestDotSet:
    def test_join_keeps_common_dots(self):
        joined = DotSet([A1]).join(DotSet([A1]), ctx(A1), ctx(A1))
        assert joined == DotSet([A1])

    def test_join_keeps_unseen_dots(self):
        """A dot the other context never saw is a new event: keep it."""
        joined = DotSet([A1]).join(DotSet([B1]), ctx(A1), ctx(B1))
        assert joined.dots() == {A1, B1}

    def test_join_drops_seen_but_removed_dots(self):
        """The other side saw A1 (context) but dropped it (store): removal wins."""
        removed_side = DotSet()
        joined = DotSet([A1]).join(removed_side, ctx(A1), ctx(A1))
        assert joined.is_empty

    def test_join_is_symmetric_on_removal(self):
        joined = DotSet().join(DotSet([A1]), ctx(A1), ctx(A1))
        assert joined.is_empty

    def test_irreducibles_are_singletons(self):
        fragments = list(DotSet([A1, B1]).irreducibles())
        assert sorted(dot for _, dot in fragments) == [A1, B1]
        assert all(fragment == DotSet([dot]) for fragment, dot in fragments)

    def test_delta_live_keeps_only_unseen(self):
        fresh = DotSet([A1, B1]).delta_live(DotSet([A1]), ctx(A1))
        assert fresh == DotSet([B1])

    def test_delta_live_skips_dots_removed_there(self):
        """B1 is in the other context (dead there): nothing to send."""
        fresh = DotSet([B1]).delta_live(DotSet(), ctx(B1))
        assert fresh.is_empty

    def test_leq_live_fails_when_other_keeps_a_dot_we_removed(self):
        # self saw A1 (context) but no longer stores it; other still does.
        assert not DotSet().leq_live(DotSet([A1]), ctx(A1))

    def test_leq_live_holds_for_unseen_remote_dots(self):
        assert DotSet().leq_live(DotSet([A1]), ctx())

    def test_size_accounting(self):
        model = SizeModel()
        assert DotSet([A1, B1]).size_units() == 2
        assert DotSet([A1]).size_bytes(model) == model.vector_entry_bytes()


# ---------------------------------------------------------------------------
# DotFun.
# ---------------------------------------------------------------------------


class TestDotFun:
    def test_rejects_bottom_values(self):
        with pytest.raises(ValueError, match="bottom"):
            DotFun({A1: MaxInt(0)})

    def test_join_merges_common_entries_with_value_join(self):
        left = DotFun({A1: MaxInt(3)})
        right = DotFun({A1: MaxInt(5)})
        joined = left.join(right, ctx(A1), ctx(A1))
        assert joined.get(A1) == MaxInt(5)

    def test_join_keeps_unseen_entries(self):
        left = DotFun({A1: MaxInt(1)})
        right = DotFun({B1: MaxInt(2)})
        joined = left.join(right, ctx(A1), ctx(B1))
        assert joined.get(A1) == MaxInt(1)
        assert joined.get(B1) == MaxInt(2)

    def test_join_drops_removed_entries(self):
        left = DotFun({A1: MaxInt(1)})
        joined = left.join(DotFun(), ctx(A1), ctx(A1))
        assert joined.is_empty

    def test_irreducibles_split_values(self):
        """A composite value yields one fragment per value irreducible."""
        from repro.lattice.set_lattice import SetLattice

        store = DotFun({A1: SetLattice({"x", "y"})})
        fragments = sorted(repr(f) for f, _ in store.irreducibles())
        assert len(fragments) == 2

    def test_delta_live_sends_value_increment_on_common_dot(self):
        mine = DotFun({A1: MaxInt(5)})
        theirs = DotFun({A1: MaxInt(3)})
        fresh = mine.delta_live(theirs, ctx(A1))
        assert fresh.get(A1) == MaxInt(5)

    def test_delta_live_skips_equal_common_dot(self):
        mine = DotFun({A1: MaxInt(3)})
        fresh = mine.delta_live(DotFun({A1: MaxInt(3)}), ctx(A1))
        assert fresh.is_empty

    def test_delta_live_skips_dot_removed_there(self):
        """Seen-and-removed covers any payload: no value increment is sent."""
        mine = DotFun({A1: MaxInt(9)})
        fresh = mine.delta_live(DotFun(), ctx(A1))
        assert fresh.is_empty

    def test_leq_live_checks_value_order(self):
        small = DotFun({A1: MaxInt(2)})
        large = DotFun({A1: MaxInt(4)})
        assert small.leq_live(large, ctx(A1))
        assert not large.leq_live(small, ctx(A1))

    def test_atom_values_join_when_equal(self):
        left = DotFun({A1: Atom("v")})
        right = DotFun({A1: Atom("v")})
        assert left.join(right, ctx(A1), ctx(A1)).get(A1) == Atom("v")

    def test_size_accounting_includes_values(self):
        model = SizeModel()
        store = DotFun({A1: Atom("xyz")})
        assert store.size_units() == 1
        assert store.size_bytes(model) == model.vector_entry_bytes() + 3


# ---------------------------------------------------------------------------
# DotMap.
# ---------------------------------------------------------------------------


class TestDotMap:
    def test_empty_subs_are_not_represented(self):
        assert DotMap({"k": DotSet()}).is_empty

    def test_join_is_pointwise_with_shared_contexts(self):
        left = DotMap({"x": DotSet([A1])})
        right = DotMap({"y": DotSet([B1])})
        joined = left.join(right, ctx(A1), ctx(B1))
        assert set(joined.keys()) == {"x", "y"}

    def test_join_removes_key_when_all_dots_die(self):
        """The other side observed x's only dot and dropped it."""
        left = DotMap({"x": DotSet([A1])})
        joined = left.join(DotMap(), ctx(A1), ctx(A1))
        assert joined.is_empty

    def test_join_keeps_concurrent_readd(self):
        """A fresh dot under the same key survives an observed removal."""
        readded = DotMap({"x": DotSet([A2])})
        removed = DotMap()
        joined = readded.join(removed, ctx(A1, A2), ctx(A1))
        assert joined.get("x") == DotSet([A2])

    def test_irreducibles_wrap_sub_fragments(self):
        store = DotMap({"x": DotSet([A1, B1])})
        fragments = list(store.irreducibles())
        assert len(fragments) == 2
        assert all(list(frag.keys()) == ["x"] for frag, _ in fragments)

    def test_delta_live_recurses_per_key(self):
        mine = DotMap({"x": DotSet([A1]), "y": DotSet([B1])})
        theirs = DotMap({"x": DotSet([A1])})
        fresh = mine.delta_live(theirs, ctx(A1))
        assert set(fresh.keys()) == {"y"}

    def test_leq_live_recurses_per_key(self):
        mine = DotMap({"x": DotSet([A1])})
        theirs = DotMap({"x": DotSet([A1]), "y": DotSet([B1])})
        assert mine.leq_live(theirs, ctx(A1))
        # Once we have observed B1 and removed it, the order flips.
        assert not mine.leq_live(theirs, ctx(A1, B1))

    def test_dots_are_collected_recursively(self):
        nested = DotMap({"outer": DotMap({"inner": DotSet([A1, B2])})})
        assert nested.dots() == {A1, B2}

    def test_size_accounting_includes_keys(self):
        model = SizeModel()
        store = DotMap({"xy": DotSet([A1])})
        assert store.size_units() == 1
        assert store.size_bytes(model) == 2 + model.vector_entry_bytes()
