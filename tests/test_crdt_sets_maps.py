"""Unit tests for GSet, GMap, TwoPSet, LWWRegister, and MVRegister."""

import pytest

from repro.crdt import GMap, GSet, LWWRegister, MVRegister, TwoPSet, optimal_delta_mutator
from repro.lattice import Chain, MapLattice, MaxInt, SetLattice


class TestGSet:
    def test_add_and_query(self):
        s = GSet("A")
        s.add("x")
        assert "x" in s
        assert s.value == frozenset({"x"})

    def test_optimal_add_delta(self):
        """addδ returns ⊥ when the element is already present (§III-B)."""
        s = GSet("A")
        first = s.add("x")
        second = s.add("x")
        assert first == SetLattice({"x"})
        assert second.is_bottom

    def test_merge(self):
        a, b = GSet("A"), GSet("B")
        a.add("x"); b.add("y")
        a.merge(b)
        assert a.value == frozenset({"x", "y"})

    def test_len(self):
        s = GSet("A")
        s.add("x"); s.add("y"); s.add("x")
        assert len(s) == 2

    def test_derived_delta_mutator_matches_builtin(self):
        """optimal_delta_mutator(m) = ∆(m(x), x) equals the hand-written addδ."""
        derived = optimal_delta_mutator(lambda s: s.add("e"))
        fresh = GSet("A").state
        assert derived(fresh) == SetLattice({"e"})
        present = SetLattice({"e", "f"})
        assert derived(present).is_bottom


class TestGMap:
    def test_put_and_get(self):
        m = GMap("A")
        m.put("k", MaxInt(3))
        assert m.get("k") == MaxInt(3)
        assert "k" in m
        assert len(m) == 1

    def test_put_delta_only_novel_part(self):
        m = GMap("A")
        m.put("k", MaxInt(5))
        delta = m.put("k", MaxInt(3))  # dominated write
        assert delta.is_bottom
        assert m.get("k") == MaxInt(5)

    def test_bump_inflates_by_one(self):
        m = GMap("A")
        m.bump("k"); m.bump("k")
        delta = m.bump("k")
        assert m.get("k") == MaxInt(3)
        assert delta == MapLattice({"k": MaxInt(3)})

    def test_update_with_function(self):
        m = GMap("A")
        m.put("k", SetLattice({"a"}))
        m.update("k", lambda cur: cur.add("b"))
        assert m.get("k") == SetLattice({"a", "b"})

    def test_put_chain_write_once_register(self):
        m = GMap("A")
        m.put_chain("tweet-1", "hello world")
        value = m.get("tweet-1")
        assert isinstance(value, Chain)
        assert value.value == "hello world"

    def test_merge_pointwise(self):
        a, b = GMap("A"), GMap("B")
        a.put("x", MaxInt(2)); a.put("y", MaxInt(9))
        b.put("x", MaxInt(5))
        a.merge(b)
        assert a.get("x") == MaxInt(5)
        assert a.get("y") == MaxInt(9)


class TestTwoPSet:
    def test_add_remove_lifecycle(self):
        s = TwoPSet("A")
        s.add("x"); s.add("y"); s.remove("x")
        assert s.value == frozenset({"y"})
        assert "x" not in s
        assert len(s) == 1

    def test_removed_elements_stay_removed(self):
        """Re-adding a tombstoned element has no effect (2P semantics)."""
        s = TwoPSet("A")
        s.add("x"); s.remove("x"); s.add("x")
        assert "x" not in s

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            TwoPSet("A").remove("ghost")

    def test_duplicate_operations_yield_bottom_deltas(self):
        s = TwoPSet("A")
        s.add("x")
        assert s.add("x").is_bottom
        s.remove("x")
        assert s.remove("x").is_bottom

    def test_concurrent_add_remove_removal_wins(self):
        a, b = TwoPSet("A"), TwoPSet("B")
        a.add("x")
        b.merge(a)
        b.remove("x")
        a.merge(b); b.merge(a)
        assert a.state == b.state
        assert "x" not in a


class TestLWWRegister:
    def test_later_write_wins(self):
        r = LWWRegister("A")
        r.write("first", timestamp=1)
        r.write("second", timestamp=2)
        assert r.value == "second"
        assert r.timestamp == 2

    def test_stale_write_loses(self):
        r = LWWRegister("A")
        r.write("current", timestamp=10)
        delta = r.write("stale", timestamp=5)
        assert r.value == "current"
        assert delta.is_bottom

    def test_auto_timestamp_always_visible(self):
        r = LWWRegister("A")
        r.write("a")
        r.write("b")
        assert r.value == "b"
        assert r.timestamp == 2

    def test_concurrent_writes_converge_deterministically(self):
        a, b = LWWRegister("A"), LWWRegister("B")
        a.write("from-a", timestamp=7)
        b.write("from-b", timestamp=7)
        a.merge(b); b.merge(a)
        assert a.state == b.state
        assert a.value == max("from-a", "from-b")  # value-chain tiebreak


class TestMVRegister:
    def test_concurrent_writes_both_visible(self):
        a, b = MVRegister("A"), MVRegister("B")
        a.write("from-a"); b.write("from-b")
        a.merge(b)
        assert a.values == ["from-a", "from-b"]

    def test_subsequent_write_dominates(self):
        a, b = MVRegister("A"), MVRegister("B")
        a.write("from-a"); b.write("from-b")
        a.merge(b)
        a.write("resolved")
        assert a.values == ["resolved"]
        b.merge(a)
        assert b.values == ["resolved"]

    def test_sequential_writes_collapse(self):
        r = MVRegister("A")
        r.write("one"); r.write("two"); r.write("three")
        assert r.values == ["three"]
        assert len(r) == 1

    def test_convergence_under_exchange(self):
        a, b, c = MVRegister("A"), MVRegister("B"), MVRegister("C")
        a.write("x"); b.write("y"); c.write("z")
        for left in (a, b, c):
            for right in (a, b, c):
                left.merge(right)
        assert a.state == b.state == c.state
        assert len(a.values) == 3
