"""Shared fixtures and hypothesis strategies for lattice values.

The strategies build arbitrary values of every lattice construct in the
library, letting property tests assert the join-semilattice laws, the
decomposition definitions (paper Definitions 1-3), and the optimality
of ``∆`` uniformly across all types.  Strategies for a given lattice
always draw from one fixed parameterization (same key space, same
bottoms), so any two generated values belong to the *same* lattice and
can be joined.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.lattice import (
    Bool,
    Chain,
    LexPair,
    LinearSum,
    MapLattice,
    MaxElements,
    MaxInt,
    PairLattice,
    SetLattice,
)
from repro.sizes import SizeModel

# ---------------------------------------------------------------------------
# Primitive strategies.
# ---------------------------------------------------------------------------

max_ints = st.integers(min_value=0, max_value=50).map(MaxInt)
bools = st.booleans().map(Bool)
chains = st.integers(min_value=0, max_value=50).map(lambda v: Chain(v, bottom=0))

_ELEMENTS = st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"])
set_lattices = st.frozensets(_ELEMENTS, max_size=6).map(SetLattice)

_KEYS = st.sampled_from(["k1", "k2", "k3", "k4", "k5"])
map_of_maxints = st.dictionaries(_KEYS, max_ints, max_size=4).map(MapLattice)
map_of_sets = st.dictionaries(_KEYS, set_lattices, max_size=3).map(MapLattice)

pairs = st.builds(PairLattice, max_ints, set_lattices)
nested_pairs = st.builds(PairLattice, max_ints, map_of_maxints)
lex_pairs = st.builds(LexPair, max_ints, set_lattices)

linear_sums = st.one_of(
    max_ints.map(LinearSum.left),
    set_lattices.map(lambda s: LinearSum.right(s, left_bottom=MaxInt(0))),
)


def _divides(x: int, y: int) -> bool:
    """Partial order for MaxElements tests: ``y ⊑ x`` when y divides x."""
    return x % y == 0


max_elements = st.frozensets(
    st.sampled_from([1, 2, 3, 4, 6, 8, 12, 24]), max_size=4
).map(lambda s: MaxElements(s, dominates=_divides))

#: Every lattice construct, each drawn from one consistent parameterization.
ALL_LATTICE_STRATEGIES = {
    "MaxInt": max_ints,
    "Bool": bools,
    "Chain": chains,
    "SetLattice": set_lattices,
    "MapLattice[MaxInt]": map_of_maxints,
    "MapLattice[Set]": map_of_sets,
    "PairLattice": pairs,
    "PairLattice[Map]": nested_pairs,
    "LexPair": lex_pairs,
    "LinearSum": linear_sums,
    "MaxElements": max_elements,
}

any_lattice_family = st.sampled_from(sorted(ALL_LATTICE_STRATEGIES))


# ---------------------------------------------------------------------------
# Fixtures.
# ---------------------------------------------------------------------------


@pytest.fixture
def size_model() -> SizeModel:
    """The paper's byte-size constants."""
    return SizeModel()


def pytest_make_parametrize_id(config, val, argname):
    if isinstance(val, str):
        return val
    return None
