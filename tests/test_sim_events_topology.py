"""Unit tests for the event queue and the overlay topologies."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.topology import (
    Topology,
    full_mesh,
    line,
    partial_mesh,
    ring,
    star,
    tree,
)


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, lambda e: fired.append("late"))
        q.schedule(1.0, lambda e: fired.append("early"))
        q.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_scheduling_order(self):
        q = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            q.schedule(1.0, lambda e, t=tag: fired.append(t))
        q.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances(self):
        q = EventQueue()
        q.schedule(3.0, lambda e: None)
        q.step()
        assert q.now == 3.0

    def test_cannot_schedule_in_the_past(self):
        q = EventQueue()
        q.schedule(3.0, lambda e: None)
        q.step()
        with pytest.raises(ValueError):
            q.schedule(1.0, lambda e: None)

    def test_schedule_in_relative(self):
        q = EventQueue()
        q.schedule(2.0, lambda e: q.schedule_in(5.0, lambda e2: None))
        q.step()
        assert len(q) == 1
        q.step()
        assert q.now == 7.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_in(-1.0, lambda e: None)

    def test_run_until_horizon(self):
        q = EventQueue()
        fired = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, lambda e, t=t: fired.append(t))
        count = q.run(until=2.0)
        assert count == 2
        assert fired == [1.0, 2.0]
        assert len(q) == 1

    def test_run_max_events(self):
        q = EventQueue()
        for t in range(10):
            q.schedule(float(t), lambda e: None)
        assert q.run(max_events=4) == 4

    def test_events_can_schedule_more_events(self):
        q = EventQueue()
        fired = []

        def cascade(event):
            fired.append(event.time)
            if event.time < 3:
                q.schedule_in(1.0, cascade)

        q.schedule(1.0, cascade)
        q.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPartialMesh:
    def test_paper_mesh_is_4_regular_on_15_nodes(self):
        topo = partial_mesh(15, 4)
        assert topo.n == 15
        assert all(topo.degree(i) == 4 for i in range(15))
        assert topo.edge_count() == 30

    def test_mesh_has_cycles(self):
        assert partial_mesh(15, 4).has_cycles()

    def test_retwis_mesh(self):
        topo = partial_mesh(50, 4)
        assert topo.n == 50
        assert all(topo.degree(i) == 4 for i in range(50))

    def test_connected(self):
        assert partial_mesh(15, 4).is_connected()

    def test_odd_degree_needs_even_nodes(self):
        with pytest.raises(ValueError):
            partial_mesh(15, 3)
        topo = partial_mesh(16, 3)
        assert all(topo.degree(i) == 3 for i in range(16))

    def test_degree_must_be_below_n(self):
        with pytest.raises(ValueError):
            partial_mesh(4, 4)


class TestTree:
    def test_paper_tree_shape(self):
        """Root has 2 neighbours, inner nodes 3, leaves 1 (Figure 6)."""
        topo = tree(15, 2)
        assert topo.degree(0) == 2
        inner = [i for i in range(1, 7)]
        for node in inner:
            assert topo.degree(node) == 3
        leaves = [i for i in range(7, 15)]
        for node in leaves:
            assert topo.degree(node) == 1

    def test_is_acyclic(self):
        topo = tree(15, 2)
        assert topo.is_tree()
        assert not topo.has_cycles()

    def test_edge_count(self):
        assert tree(15, 2).edge_count() == 14


class TestOtherTopologies:
    def test_ring(self):
        topo = ring(6)
        assert all(topo.degree(i) == 2 for i in range(6))
        assert topo.has_cycles()

    def test_line(self):
        topo = line(5)
        assert topo.is_tree()
        assert topo.degree(0) == topo.degree(4) == 1

    def test_star(self):
        topo = star(7)
        assert topo.degree(0) == 6
        assert topo.is_tree()

    def test_full_mesh(self):
        topo = full_mesh(5)
        assert all(topo.degree(i) == 4 for i in range(5))
        assert topo.edge_count() == 10

    def test_diameter(self):
        assert line(5).diameter() == 4
        assert full_mesh(5).diameter() == 1
        assert ring(6).diameter() == 3

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            line(1)
        with pytest.raises(ValueError):
            star(1)
        with pytest.raises(ValueError):
            full_mesh(1)


class TestTopologyValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges("bad", 3, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges("bad", 3, [(0, 5)])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges("bad", 4, [(0, 1), (2, 3)])

    def test_neighbors_sorted(self):
        topo = Topology.from_edges("t", 4, [(2, 0), (0, 1), (0, 3)])
        assert topo.neighbors(0) == (1, 2, 3)

    def test_edges_normalized(self):
        topo = Topology.from_edges("t", 3, [(2, 1), (1, 0)])
        assert topo.edges() == [(0, 1), (1, 2)]
