"""Unit tests for composition constructs: product, lexicographic, sum.

Includes the paper's Appendix B counterexample territory: the
lexicographic product is only well-behaved with a chain first component,
which is the form this library implements.
"""

import pytest

from repro.lattice import (
    Bool,
    LexPair,
    LinearSum,
    MapLattice,
    MaxInt,
    PairLattice,
    SetLattice,
)


class TestPairLattice:
    def test_componentwise_join(self):
        p = PairLattice(MaxInt(2), MaxInt(3))
        q = PairLattice(MaxInt(5), MaxInt(1))
        assert p.join(q) == PairLattice(MaxInt(5), MaxInt(3))

    def test_leq_requires_both(self):
        p = PairLattice(MaxInt(1), MaxInt(5))
        q = PairLattice(MaxInt(2), MaxInt(4))
        assert not p.leq(q)
        assert not q.leq(p)

    def test_bottom(self):
        p = PairLattice(MaxInt(0), SetLattice())
        assert p.is_bottom
        assert PairLattice(MaxInt(1), SetLattice()).bottom_like() == p

    def test_decompose_embeds_components_with_bottom(self):
        p = PairLattice(MaxInt(2), SetLattice({"a"}))
        parts = list(p.decompose())
        assert PairLattice(MaxInt(2), SetLattice()) in parts
        assert PairLattice(MaxInt(0), SetLattice({"a"})) in parts
        assert len(parts) == 2

    def test_delta_componentwise(self):
        p = PairLattice(MaxInt(5), SetLattice({"a", "b"}))
        q = PairLattice(MaxInt(9), SetLattice({"b"}))
        assert p.delta(q) == PairLattice(MaxInt(0), SetLattice({"a"}))

    def test_size_accounting(self, size_model):
        p = PairLattice(MaxInt(5), SetLattice({"ab"}))
        assert p.size_units() == 2
        assert p.size_bytes(size_model) == size_model.int_bytes + 2


class TestLexPair:
    def test_higher_version_wins_outright(self):
        low = LexPair(MaxInt(1), SetLattice({"x"}))
        high = LexPair(MaxInt(2), SetLattice({"y"}))
        assert low.join(high) == high
        assert high.join(low) == high

    def test_equal_versions_join_payloads(self):
        a = LexPair(MaxInt(2), SetLattice({"x"}))
        b = LexPair(MaxInt(2), SetLattice({"y"}))
        assert a.join(b) == LexPair(MaxInt(2), SetLattice({"x", "y"}))

    def test_lex_order(self):
        assert LexPair(MaxInt(1), SetLattice({"z"})).leq(LexPair(MaxInt(2), SetLattice()))
        assert not LexPair(MaxInt(2), SetLattice()).leq(LexPair(MaxInt(1), SetLattice({"z"})))
        assert LexPair(MaxInt(2), SetLattice({"a"})).leq(LexPair(MaxInt(2), SetLattice({"a", "b"})))

    def test_bottom(self):
        assert LexPair(MaxInt(0), SetLattice()).is_bottom
        assert not LexPair(MaxInt(1), SetLattice()).is_bottom

    def test_decompose_distributes_version(self):
        p = LexPair(MaxInt(3), SetLattice({"a", "b"}))
        parts = sorted(repr(x) for x in p.decompose())
        assert len(parts) == 2
        assert all("MaxInt(3)" in part for part in parts)

    def test_decompose_version_only_state(self):
        p = LexPair(MaxInt(3), SetLattice())
        assert list(p.decompose()) == [p]

    def test_delta_same_version(self):
        mine = LexPair(MaxInt(2), SetLattice({"a", "b"}))
        theirs = LexPair(MaxInt(2), SetLattice({"b"}))
        assert mine.delta(theirs) == LexPair(MaxInt(2), SetLattice({"a"}))

    def test_delta_lower_version_is_bottom(self):
        mine = LexPair(MaxInt(1), SetLattice({"a"}))
        theirs = LexPair(MaxInt(5), SetLattice())
        assert mine.delta(theirs).is_bottom

    def test_delta_higher_version_is_whole_state(self):
        mine = LexPair(MaxInt(5), SetLattice({"a"}))
        theirs = LexPair(MaxInt(1), SetLattice({"b", "c"}))
        assert mine.delta(theirs) == mine

    def test_delta_equal_everything_is_bottom(self):
        p = LexPair(MaxInt(2), SetLattice({"a"}))
        assert p.delta(p).is_bottom


class TestLinearSum:
    def test_left_below_right(self):
        lo = LinearSum.left(MaxInt(99))
        hi = LinearSum.right(Bool(False), left_bottom=MaxInt(0))
        assert lo.leq(hi)
        assert not hi.leq(lo)
        assert lo.join(hi) == hi

    def test_same_side_joins_inner(self):
        a = LinearSum.left(MaxInt(2))
        b = LinearSum.left(MaxInt(5))
        assert a.join(b) == LinearSum.left(MaxInt(5))

    def test_bottom_is_left_bottom(self):
        assert LinearSum.left(MaxInt(0)).is_bottom
        hi = LinearSum.right(Bool(True), left_bottom=MaxInt(0))
        assert not hi.is_bottom
        assert hi.bottom_like() == LinearSum.left(MaxInt(0))

    def test_right_bottom_not_lattice_bottom(self):
        """Right ⊥_B sits above all of A — it carries phase information."""
        hi = LinearSum.right(Bool(False), left_bottom=MaxInt(0))
        assert not hi.is_bottom

    def test_decompose_left(self):
        v = LinearSum.left(MaxInt(3))
        assert list(v.decompose()) == [v]

    def test_decompose_right_bottom_payload(self):
        hi = LinearSum.right(Bool(False), left_bottom=MaxInt(0))
        assert list(hi.decompose()) == [hi]

    def test_delta_across_phases(self):
        lo = LinearSum.left(MaxInt(9))
        hi = LinearSum.right(Bool(True), left_bottom=MaxInt(0))
        assert lo.delta(hi).is_bottom   # everything Left is below Right
        assert hi.delta(lo) == hi       # nothing Right is below Left

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            LinearSum("Middle", MaxInt(1), MaxInt(0))

    def test_size_units_right_bottom_counts_one(self):
        hi = LinearSum.right(Bool(False), left_bottom=MaxInt(0))
        assert hi.size_units() == 1


class TestNestedComposition:
    """Deep compositions exercise the recursion in decompose/delta."""

    def test_map_of_pairs_roundtrip(self):
        state = MapLattice(
            {
                "A": PairLattice(MaxInt(2), MaxInt(3)),
                "B": PairLattice(MaxInt(5), MaxInt(5)),
            }
        )
        parts = list(state.decompose())
        assert len(parts) == 4  # the Appendix C PNCounter example
        rejoined = state.bottom_like()
        for part in parts:
            rejoined = rejoined.join(part)
        assert rejoined == state

    def test_pair_of_maps_delta(self):
        mine = PairLattice(
            MapLattice({"x": MaxInt(3)}),
            MapLattice({"y": MaxInt(1)}),
        )
        theirs = PairLattice(
            MapLattice({"x": MaxInt(1)}),
            MapLattice({"y": MaxInt(4)}),
        )
        d = mine.delta(theirs)
        assert d.first == MapLattice({"x": MaxInt(3)})
        assert d.second.is_bottom

    def test_lex_of_map(self):
        a = LexPair(MaxInt(1), MapLattice({"k": SetLattice({"v"})}))
        b = LexPair(MaxInt(1), MapLattice({"k": SetLattice({"w"})}))
        joined = a.join(b)
        assert joined.second == MapLattice({"k": SetLattice({"v", "w"})})
