"""Unit tests for Algorithm 1: classic, BP, RR, and BP+RR.

The two distributed executions of the paper's Figures 4 and 5 are
replayed step by step, asserting exactly the redundant transmissions
the paper underlines (BP) and overlines (RR).
"""

import pytest

from repro.lattice import SetLattice
from repro.sizes import SizeModel
from repro.sync.deltabased import DeltaBased, classic, delta_bp, delta_bp_rr, delta_rr


def gset_add(element):
    """The optimal addδ mutator as a closure."""

    def mutator(state):
        if element in state:
            return state.bottom_like()
        return SetLattice((element,))

    return mutator


def make(replica, neighbors, *, bp=False, rr=False):
    return DeltaBased(
        replica, neighbors, SetLattice(), n_nodes=4, size_model=SizeModel(), bp=bp, rr=rr
    )


def payload_to(sends, dst):
    """The payload sent to ``dst``, or None when nothing was sent."""
    for send in sends:
        if send.dst == dst:
            return send.message.payload
    return None


class TestFigure4:
    """Two replicas A=0, B=1; BP removes the underlined elements."""

    def run_execution(self, *, bp):
        a = make(0, [1], bp=bp)
        b = make(1, [0], bp=bp)
        a.local_update(gset_add("a"))
        b.local_update(gset_add("b"))

        # •1: B propagates its δ-buffer {b} to A.
        sends_b = b.sync_messages()
        assert payload_to(sends_b, 0) == SetLattice({"b"})
        a.handle_message(1, sends_b[0].message)

        # •2: A sends to B.
        sends_a = a.sync_messages()
        sent_to_b = payload_to(sends_a, 1)

        # B adds c before receiving.
        b.local_update(gset_add("c"))
        b.handle_message(0, sends_a[0].message)

        # •3: B propagates all new changes since the last synchronization.
        sends_b2 = b.sync_messages()
        return sent_to_b, payload_to(sends_b2, 0)

    def test_classic_back_propagates(self):
        """Classic sends {a,b} at •2 and {a,b,c} at •3 — b and {a,b}
        travel straight back to the replicas they came from."""
        at_2, at_3 = self.run_execution(bp=False)
        assert at_2 == SetLattice({"a", "b"})
        assert at_3 == SetLattice({"a", "b", "c"})

    def test_bp_removes_underlined_elements(self):
        """BP sends only {a} at •2 and only {c} at •3."""
        at_2, at_3 = self.run_execution(bp=True)
        assert at_2 == SetLattice({"a"})
        assert at_3 == SetLattice({"c"})

    def test_classic_transmits_as_much_as_state_based(self):
        """The paper's headline anomaly: with a change between every
        sync, classic δ-groups equal the full state."""
        at_2, at_3 = self.run_execution(bp=False)
        assert at_3 == SetLattice({"a", "b", "c"})  # the entire replica state


class TestFigure5:
    """Four replicas A=0, B=1, C=2, D=3 on a cyclic overlay.

    Edges: A–B, A–C, B–C, C–D.  RR removes the overlined ``b`` that
    reaches C twice (directly from B, then inside A's δ-group).
    """

    def run_execution(self, *, bp, rr):
        a = make(0, [1, 2], bp=bp, rr=rr)
        b = make(1, [0, 2], bp=bp, rr=rr)
        c = make(2, [0, 1, 3], bp=bp, rr=rr)
        d = make(3, [2], bp=bp, rr=rr)

        a.local_update(gset_add("a"))
        b.local_update(gset_add("b"))

        # •4: B propagates {b} to neighbours A and C.
        sends_b = b.sync_messages()
        assert payload_to(sends_b, 0) == SetLattice({"b"})
        assert payload_to(sends_b, 2) == SetLattice({"b"})
        a.handle_message(1, payload_msg(sends_b, 0))
        c.handle_message(1, payload_msg(sends_b, 2))

        # •5: C propagates the received {b} to D.
        sends_c = c.sync_messages()
        assert payload_to(sends_c, 3) == SetLattice({"b"})
        d.handle_message(2, payload_msg(sends_c, 3))

        # •6: A sends the join of {a} and the received {b} to C.
        sends_a = a.sync_messages()
        to_c = payload_to(sends_a, 2)
        assert to_c == SetLattice({"a", "b"})  # same under BP: origin is B
        c.handle_message(0, payload_msg(sends_a, 2))

        # •7: C propagates to D.
        sends_c2 = c.sync_messages()
        return payload_to(sends_c2, 3)

    def test_classic_resends_overlined_b(self):
        assert self.run_execution(bp=False, rr=False) == SetLattice({"a", "b"})

    def test_bp_alone_cannot_remove_cycle_redundancy(self):
        """BP does not help: the δ-group arrived from A, not from D."""
        assert self.run_execution(bp=True, rr=False) == SetLattice({"a", "b"})

    def test_rr_extracts_only_the_novel_part(self):
        assert self.run_execution(bp=False, rr=True) == SetLattice({"a"})

    def test_bp_rr_combined(self):
        assert self.run_execution(bp=True, rr=True) == SetLattice({"a"})


def payload_msg(sends, dst):
    for send in sends:
        if send.dst == dst:
            return send.message
    raise AssertionError(f"no message to {dst}")


class TestAlgorithmMechanics:
    def test_buffer_cleared_after_sync(self):
        node = make(0, [1])
        node.local_update(gset_add("x"))
        assert node.buffer
        node.sync_messages()
        assert not node.buffer

    def test_no_message_when_buffer_empty(self):
        node = make(0, [1])
        assert node.sync_messages() == []

    def test_bottom_deltas_not_buffered(self):
        node = make(0, [1])
        node.local_update(gset_add("x"))
        node.local_update(gset_add("x"))  # duplicate: δ = ⊥
        assert len(node.buffer) == 1

    def test_local_update_inflates_state(self):
        node = make(0, [1])
        node.local_update(gset_add("x"))
        assert node.state == SetLattice({"x"})

    def test_classic_inflation_check_rejects_dominated_group(self):
        """Line 16 classic: a δ-group entirely below xᵢ is dropped."""
        node = make(0, [1])
        node.local_update(gset_add("x"))
        node.sync_messages()
        node.handle_message(1, _delta_message({"x"}).message)
        assert not node.buffer

    def test_rr_stores_extraction_not_group(self):
        node = make(0, [1], rr=True)
        node.local_update(gset_add("x"))
        node.sync_messages()
        node.handle_message(1, _delta_message({"x", "y"}).message)
        assert len(node.buffer) == 1
        stored, origin = node.buffer[0]
        assert stored == SetLattice({"y"})
        assert origin == 1

    def test_classic_stores_whole_group(self):
        node = make(0, [1])
        node.local_update(gset_add("x"))
        node.sync_messages()
        node.handle_message(1, _delta_message({"x", "y"}).message)
        stored, _ = node.buffer[0]
        assert stored == SetLattice({"x", "y"})

    def test_memory_accounting(self):
        node = make(0, [1], bp=True)
        node.local_update(gset_add("abcd"))
        assert node.buffer_units() == 1
        assert node.buffer_bytes() == 4
        assert node.metadata_bytes() > 0
        # 1 origin tag (BP) + 1 per-neighbour sequence number.
        assert node.metadata_units() == 2
        assert node.memory_units() == node.state_units() + 1 + 2

    def test_factories_bind_flags_and_labels(self):
        cases = [
            (classic, False, False, "delta-based"),
            (delta_bp, True, False, "delta-based-bp"),
            (delta_rr, False, True, "delta-based-rr"),
            (delta_bp_rr, True, True, "delta-based-bp-rr"),
        ]
        for factory, bp, rr, label in cases:
            node = factory(0, [1], SetLattice(), 2, SizeModel())
            assert node.bp == bp
            assert node.rr == rr
            assert factory.name == label

    def test_message_metadata_is_one_sequence_number(self):
        node = make(0, [1])
        node.local_update(gset_add("x"))
        [send] = node.sync_messages()
        assert send.message.metadata_bytes == SizeModel().int_bytes


def _delta_message(elements):
    """Forge an inbound δ-group message for receiver-side tests."""
    from repro.sync.protocol import Message, Send

    payload = SetLattice(elements)
    model = SizeModel()
    return Send(
        dst=0,
        message=Message(
            kind="delta",
            payload=payload,
            payload_units=payload.size_units(),
            payload_bytes=payload.size_bytes(model),
            metadata_bytes=model.int_bytes,
        ),
    )
