"""Golden vectors pinning the wire format.

The codec's byte layout is a compatibility contract: states persisted
or exchanged by one version must decode under the next.  These vectors
pin the exact encoding of one representative value per construct; any
format change — intentional or not — fails here first, forcing an
explicit decision (and, in a real deployment, a version bump).
"""

import pytest

from repro.causal import Atom, Causal, CausalContext, Dot, DotFun, DotMap, DotSet
from repro.codec import decode, encode
from repro.lattice import (
    Bool,
    Chain,
    LexPair,
    LinearSum,
    MapLattice,
    MaxInt,
    PairLattice,
    SetLattice,
)

GOLDEN = [
    ("maxint-zero", MaxInt(0), "1000"),
    ("maxint", MaxInt(300), "10ac02"),
    ("bool", Bool(True), "1101"),
    ("chain", Chain(7, bottom=0), "1203 0e 03 00"),
    ("set", SetLattice({"b", "a"}), "1302 0501 61 0501 62"),
    ("map", MapLattice({"k": MaxInt(1)}), "1401 0501 6b 1001"),
    ("pair", PairLattice(MaxInt(1), Bool(False)), "15 1001 1100"),
    ("lexpair", LexPair(MaxInt(2), MaxInt(3)), "16 1002 1003"),
    ("sum-left", LinearSum.left(MaxInt(4)), "17 00 1004 1000"),
    ("atom-bottom", Atom(), "21 00"),
    ("atom-int", Atom(-1), "21 01 03 01"),
    (
        "causal-dotset",
        Causal(
            DotSet([Dot("A", 1)]),
            CausalContext.from_dots([Dot("A", 1), Dot("B", 2)]),
        ),
        # store: DotSet with 1 dot (A,1); context: compact {A:1}, cloud {(B,2)}
        "20 01 01 0501 41 01   01 0501 41 01   01 0501 42 02",
    ),
    (
        "causal-dotfun",
        Causal(
            DotFun({Dot("A", 1): Atom("v")}),
            CausalContext.from_dots([Dot("A", 1)]),
        ),
        "20 02 01 0501 41 01 21 01 0501 76   01 0501 41 01   00",
    ),
    (
        "causal-dotmap",
        Causal(
            DotMap({"x": DotSet([Dot("A", 1)])}),
            CausalContext.from_dots([Dot("A", 1)]),
        ),
        "20 03 01 0501 78 01 01 0501 41 01   01 0501 41 01   00",
    ),
]


def _clean(hexes: str) -> bytes:
    return bytes.fromhex(hexes.replace(" ", ""))


@pytest.mark.parametrize("label,value,expected_hex", GOLDEN, ids=[g[0] for g in GOLDEN])
def test_encoding_matches_golden_vector(label, value, expected_hex):
    assert encode(value).hex() == _clean(expected_hex).hex()


@pytest.mark.parametrize("label,value,expected_hex", GOLDEN, ids=[g[0] for g in GOLDEN])
def test_golden_vector_decodes_to_value(label, value, expected_hex):
    assert decode(_clean(expected_hex)) == value
