"""Report rendering helpers: tables, byte formatting, ASCII charts."""

from repro.experiments.report import ascii_chart, format_table, human_bytes


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(
            ("name", "value"), [("short", 1), ("much-longer-name", 2.5)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) >= len("much-longer-name") for line in lines[1:])

    def test_title_is_first_line(self):
        text = format_table(("a",), [(1,)], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_thousands_separators(self):
        text = format_table(("n",), [(1234567,)])
        assert "1,234,567" in text

    def test_booleans_render_as_words(self):
        text = format_table(("ok",), [(True,), (False,)])
        assert "yes" in text and "no" in text


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512.00 B"

    def test_kib(self):
        assert human_bytes(2048) == "2.00 KiB"

    def test_mib(self):
        assert human_bytes(1234567) == "1.18 MiB"

    def test_tib_is_terminal(self):
        assert human_bytes(2**50) == "1024.00 TiB"


class TestAsciiChart:
    def test_linear_scale_proportionality(self):
        text = ascii_chart({"x": [50.0], "y": [100.0]}, width=10)
        x_line, y_line = text.splitlines()
        assert y_line.count("█") == 10
        assert x_line.count("█") == 5

    def test_log_scale_spreads_magnitudes(self):
        text = ascii_chart({"a": [1.0, 10.0, 100.0]}, width=20, log=True)
        lines = text.splitlines()
        bars = [line.count("█") for line in lines]
        # Log scale: equal ratios → equal bar increments.
        assert bars[1] - bars[0] == bars[2] - bars[1] == 10

    def test_zero_values_render_empty_marker(self):
        text = ascii_chart({"z": [0.0], "p": [5.0]}, width=8)
        z_line = next(line for line in text.splitlines() if line.startswith("z"))
        assert "▏" in z_line and "█" not in z_line

    def test_unit_suffix(self):
        text = ascii_chart({"m": [3.0]}, unit="KiB")
        assert "3.000 KiB" in text

    def test_single_point_series_omits_index(self):
        text = ascii_chart({"solo": [7.0]})
        assert "solo " in text and "solo[0]" not in text

    def test_empty_series_is_graceful(self):
        assert ascii_chart({}) == "(no data)"

    def test_equal_log_values_fill_fully(self):
        text = ascii_chart({"a": [5.0], "b": [5.0]}, width=6, log=True)
        assert all(line.count("█") == 6 for line in text.splitlines())
