"""The metrics registry, series helpers, timers, and the lag probe."""

import pytest

from repro.obs.lag import ConvergenceProbe
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timing import HotPathTimers
from repro.sim.series import bucket_series, cumulative, partition_at


class TestRegistry:
    def test_counters_are_found_again_by_name(self):
        registry = MetricsRegistry()
        counter = registry.counter("scheduler.ticks")
        counter.inc()
        assert registry.counter("scheduler.ticks") is counter
        assert registry.counter("scheduler.ticks").value == 1

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("mem")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_aggregates(self):
        histogram = Histogram("lat")
        for value in (4, 1, 7):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 12
        assert histogram.min == 1
        assert histogram.max == 7
        assert histogram.mean == 4.0

    def test_snapshot_is_sorted_and_flat(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("c").observe(4)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a"] == 1.5
        assert snapshot["b"] == 2
        assert snapshot["c.count"] == 1
        assert snapshot["c.sum"] == 4

    def test_views_merge_under_their_prefix(self):
        registry = MetricsRegistry()
        registry.register_view("wal", lambda: {"records": 5})
        assert registry.snapshot()["wal.records"] == 5
        # Re-registering replaces (a rebuilt store re-binding its view).
        registry.register_view("wal", lambda: {"records": 9})
        assert registry.snapshot()["wal.records"] == 9


class TestSchedulerAdapter:
    """scheduler.stats() and the attribute adapters read the registry."""

    def make_scheduler(self, registry=None):
        from repro.kv.antientropy import AntiEntropyConfig, AntiEntropyScheduler

        return AntiEntropyScheduler(
            AntiEntropyConfig(repair_interval=2, repair_mode="digest"),
            shard_ids=(0, 1),
            shard_peers={0: (1,), 1: (1,)},
            replica=0,
            registry=registry,
        )

    def test_stats_reads_registry_counters(self):
        registry = MetricsRegistry()
        scheduler = self.make_scheduler(registry)
        scheduler.note_probe(3)
        scheduler.note_repair_traffic(100, 16)
        stats = scheduler.stats()
        assert stats["probes"] == 3
        assert stats["repair_payload_bytes"] == 100
        assert stats["repair_metadata_bytes"] == 16
        assert registry.snapshot()["scheduler.probes"] == 3
        # The attribute adapters mirror the registry values.
        assert scheduler.probes == 3
        assert scheduler.repair_payload_bytes == 100

    def test_counters_survive_a_scheduler_rebuild(self):
        registry = MetricsRegistry()
        first = self.make_scheduler(registry)
        first.note_repair_traffic(64, 0)
        # A lose-state rebuild constructs a fresh scheduler on the same
        # (surviving) registry: counts continue, nothing retires.
        second = self.make_scheduler(registry)
        second.note_repair_traffic(36, 0)
        assert second.stats()["repair_payload_bytes"] == 100


class TestSeriesHelpers:
    def test_bucket_series_sums_windows_and_skips_empty(self):
        items = [(0.0, 1), (40.0, 2), (250.0, 5)]
        series = bucket_series(
            items, 100.0, time=lambda r: r[0], value=lambda r: r[1]
        )
        assert series == [(0.0, 3), (200.0, 5)]

    def test_cumulative_running_total(self):
        assert cumulative([(0.0, 3), (200.0, 5)]) == [(0.0, 3), (200.0, 8)]

    def test_partition_at_boundary_goes_after(self):
        before, after = partition_at(
            [(99.0, "a"), (100.0, "b"), (101.0, "c")], 100.0, time=lambda r: r[0]
        )
        assert [x[1] for x in before] == ["a"]
        assert [x[1] for x in after] == ["b", "c"]

    def test_collector_series_built_on_helpers(self):
        from repro.sim.metrics import MessageRecord, MetricsCollector

        collector = MetricsCollector(2)
        for when, units in ((0.0, 2), (150.0, 3)):
            collector.record_message(
                MessageRecord(
                    time=when,
                    src=0,
                    dst=1,
                    kind="delta",
                    payload_units=units,
                    payload_bytes=units * 8,
                    metadata_bytes=4,
                )
            )
        assert collector.units_series(100.0) == [(0.0, 2), (100.0, 3)]
        assert collector.cumulative_units_series(100.0) == [(0.0, 2), (100.0, 5)]
        first, second = collector.split_at(100.0)
        assert first.message_count == 1
        assert second.message_count == 1


class TestHotPathTimers:
    def test_record_and_span_accumulate(self):
        timers = HotPathTimers()
        timers.record("runtime.tick", units=5, seconds=0.25)
        timers.record("runtime.tick", units=2, seconds=0.5)
        with timers.span("tcp.encode", units=3):
            pass
        snapshot = timers.snapshot()
        assert snapshot["runtime.tick"] == {
            "calls": 2,
            "seconds": 0.75,
            "units": 7,
        }
        assert snapshot["tcp.encode"]["calls"] == 1
        assert snapshot["tcp.encode"]["units"] == 3
        assert len(timers) == 2


class TestConvergenceProbe:
    def test_window_opens_on_disagreement_and_closes_on_agreement(self):
        probe = ConvergenceProbe()
        assert probe.observe(0, {1: True}) == []
        assert probe.observe(1, {1: False}) == []
        assert probe.observe(2, {1: False}) == []
        assert probe.observe(3, {1: True}) == [(1, 2)]
        assert probe.closed == [(1, 1, 2)]

    def test_open_windows_are_reported_not_dropped(self):
        probe = ConvergenceProbe()
        probe.observe(5, {2: False})
        assert probe.open_lags(8) == {2: 3}
        assert probe.distribution()["count"] == 0

    def test_distribution(self):
        probe = ConvergenceProbe()
        for shard, (start, end) in enumerate(((0, 1), (0, 3), (2, 10))):
            probe.observe(start, {shard: False})
            probe.observe(end, {shard: True})
        distribution = probe.distribution()
        assert distribution["count"] == 3
        assert distribution["max"] == 8
        assert distribution["p50"] == 3
