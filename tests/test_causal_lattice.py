"""Property-based tests for the causal lattice.

States are generated the only way causal states can exist in practice:
by running random operation interleavings (adds, removes, writes,
merges) over a small group of replicas.  Every state drawn this way is
reachable, satisfies the store⊆context invariant, and — because merges
are included — exhibits the concurrent add/remove shapes that make the
causal order subtle.

Against such states we check the full Section III contract: the
join-semilattice laws, the derived partial order, decomposition
validity (Definitions 1–3), the two defining properties of ``∆``, and
the agreement of the optimized ``delta``/``leq`` fast paths with the
generic definitions they shortcut.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.causal import AWSet, Causal, CausalMVRegister, CCounter, EWFlag, RWSet
from repro.lattice.base import join_all
from repro.lattice.decompose import (
    is_irredundant_decomposition,
    is_join_irreducible,
)

REPLICAS = ("A", "B", "C")
ELEMENTS = ("x", "y", "z")


def _execute(crdt_cls, ops):
    """Run an operation script over three replicas; return all states seen."""
    replicas = {name: crdt_cls(name) for name in REPLICAS}
    pool = [replicas["A"].state]  # bottom
    for op in ops:
        kind = op[0]
        if kind == "merge":
            _, src, dst = op
            replicas[dst].merge(replicas[src])
        elif kind == "add":
            _, name, element = op
            replicas[name].add(element)
        elif kind == "remove":
            _, name, element = op
            replicas[name].remove(element)
        elif kind == "write":
            _, name, element = op
            replicas[name].write(element)
        elif kind == "increment":
            _, name, _ = op
            replicas[name].increment()
        elif kind == "reset":
            _, name, _ = op
            replicas[name].reset()
        pool.append(replicas[op[1]].state)
    return pool


def _ops(kinds):
    return st.lists(
        st.one_of(
            st.tuples(
                st.sampled_from(kinds),
                st.sampled_from(REPLICAS),
                st.sampled_from(ELEMENTS),
            ),
            st.tuples(
                st.just("merge"),
                st.sampled_from(REPLICAS),
                st.sampled_from(REPLICAS),
            ),
        ),
        min_size=0,
        max_size=14,
    )


@st.composite
def causal_states(draw, n=1):
    """Draw ``n`` reachable causal states from one random execution."""
    family = draw(st.sampled_from(["awset", "rwset", "ewflag", "mvreg", "ccounter"]))
    if family == "awset":
        pool = _execute(AWSet, draw(_ops(("add", "remove"))))
    elif family == "rwset":
        pool = _execute(RWSet, draw(_ops(("add", "remove"))))
    elif family == "ewflag":

        class _Flag(EWFlag):
            def add(self, _):
                self.enable()

            def remove(self, _):
                self.disable()

        pool = _execute(_Flag, draw(_ops(("add", "remove"))))
    elif family == "mvreg":

        class _Reg(CausalMVRegister):
            pass

        pool = _execute(_Reg, draw(_ops(("write",))))
    else:
        pool = _execute(CCounter, draw(_ops(("increment", "reset"))))
    picks = [draw(st.sampled_from(pool)) for _ in range(n)]
    return picks[0] if n == 1 else tuple(picks)


def _generic_delta(a: Causal, b: Causal) -> Causal:
    """``∆`` computed literally from the decomposition (Section III-B)."""
    acc = a.bottom_like()
    for irreducible in a.decompose():
        if not irreducible.leq(b):
            acc = acc.join(irreducible)
    return acc


# ---------------------------------------------------------------------------
# Join-semilattice laws.
# ---------------------------------------------------------------------------


@given(causal_states())
def test_join_idempotent(x):
    assert x.join(x) == x


@given(causal_states(n=2))
def test_join_commutative(pair):
    x, y = pair
    assert x.join(y) == y.join(x)


@given(causal_states(n=3))
def test_join_associative(triple):
    x, y, z = triple
    assert x.join(y).join(z) == x.join(y.join(z))


@given(causal_states())
def test_bottom_is_identity(x):
    bottom = x.bottom_like()
    assert bottom.join(x) == x
    assert bottom.is_bottom


@given(causal_states(n=2))
def test_join_is_least_upper_bound(pair):
    x, y = pair
    joined = x.join(y)
    assert x.leq(joined) and y.leq(joined)


@given(causal_states(n=2))
def test_leq_agrees_with_join_definition(pair):
    """The optimized order must equal ``x ⊑ y ⇔ x ⊔ y = y``."""
    x, y = pair
    assert x.leq(y) == (x.join(y) == y)


@given(causal_states(n=2))
def test_join_preserves_invariant(pair):
    x, y = pair
    x.join(y).check_invariant()


# ---------------------------------------------------------------------------
# Decompositions (Definitions 1–3 of the paper).
# ---------------------------------------------------------------------------


@given(causal_states())
def test_decomposition_joins_back(x):
    assert join_all(x.decompose(), x.bottom_like()) == x


@given(causal_states())
def test_decomposition_parts_are_join_irreducible(x):
    for part in x.decompose():
        assert is_join_irreducible(part)
        assert not part.is_bottom


@given(causal_states())
@settings(max_examples=60)
def test_decomposition_is_irredundant(x):
    assert is_irredundant_decomposition(list(x.decompose()), x)


@given(causal_states())
def test_bottom_decomposes_to_nothing(x):
    assert list(x.bottom_like().decompose()) == []


# ---------------------------------------------------------------------------
# Optimal deltas.
# ---------------------------------------------------------------------------


@given(causal_states(n=2))
def test_delta_joined_with_b_gives_a_join_b(pair):
    a, b = pair
    assert a.delta(b).join(b) == a.join(b)


@given(causal_states(n=2))
def test_delta_matches_generic_definition(pair):
    """The store-recursive fast path equals the decompose-and-filter ∆."""
    a, b = pair
    assert a.delta(b) == _generic_delta(a, b)


@given(causal_states(n=2))
def test_delta_is_minimal(pair):
    """Any c with c ⊔ b = a ⊔ b sits above ∆(a, b) — here c = a itself."""
    a, b = pair
    assert a.delta(b).leq(a)


@given(causal_states(n=2))
def test_delta_of_leq_state_is_bottom(pair):
    a, b = pair
    joined = a.join(b)
    assert a.delta(joined).is_bottom
    assert b.delta(joined).is_bottom


@given(causal_states())
def test_delta_against_bottom_is_identity(x):
    assert x.delta(x.bottom_like()) == x


@given(causal_states(n=2))
def test_delta_tombstones_kill_live_remote_dots(pair):
    """∆ must carry removals the other side still holds live.

    This is the subtle case: a tombstone dot is redundant only when the
    other side has seen *and removed* it.  A delta that omitted these
    would resurrect removed elements during anti-entropy.
    """
    a, b = pair
    d = a.delta(b)
    merged = d.join(b)
    for dot in b.store.dots():
        held_live_after = dot in merged.store.dots()
        removed_by_a = a.context.contains(dot) and dot not in a.store.dots()
        if removed_by_a:
            assert not held_live_after


# ---------------------------------------------------------------------------
# Hash/equality consistency (states are dict keys in δ-buffers).
# ---------------------------------------------------------------------------


@given(causal_states(n=2))
def test_equal_states_hash_equal(pair):
    x, y = pair
    merged_one = x.join(y)
    merged_two = y.join(x)
    assert merged_one == merged_two
    assert hash(merged_one) == hash(merged_two)
