"""Engine mechanics: suppressions, baseline round-trips, reporters, CLI.

The golden rule corpus lives in ``test_lint_rules.py``; this file pins
the machinery around the rules — the ``lint-ok`` grammar, the
content-fingerprinted baseline (including its stability under line
drift), both reporters, the exit-code contract of ``repro lint``, and
the repository's own lint-clean status with its exact sanctioned
suppression set.
"""

import json
import os

import pytest

from repro.cli import main
from repro.lint import (
    ALL_RULES,
    finding_fingerprint,
    lint_paths,
    load_project,
    read_baseline,
    render_json,
    render_text,
    run_rules,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    Module,
    Project,
    discover_files,
    load_module,
    parse_suppressions,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: A snippet with one finding per line of interest: a global-RNG draw.
VIOLATION = "import random\n\nx = random.random()\n"


def lint_sources(sources, rules=None):
    """Lint a {path: source} mapping without touching disk."""
    project = Project(
        modules=[load_module(path, text) for path, text in sources.items()]
    )
    return run_rules(project, ALL_RULES() if rules is None else rules)


class TestSuppressionParsing:
    def test_inline_comment_covers_its_line(self):
        source = "import random\nx = random.random()  # repro: lint-ok[det-rng] corpus fixture\n"
        (suppression,) = parse_suppressions("mod.py", source)
        assert suppression.rules == ("det-rng",)
        assert suppression.reason == "corpus fixture"
        assert suppression.covers == (2,)

    def test_standalone_comment_also_covers_next_line(self):
        source = (
            "import random\n"
            "# repro: lint-ok[det-rng] corpus fixture\n"
            "x = random.random()\n"
        )
        (suppression,) = parse_suppressions("mod.py", source)
        assert suppression.covers == (2, 3)
        result = lint_sources({"mod.py": source})
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["det-rng"]

    def test_multiple_rule_ids_one_comment(self):
        source = "# repro: lint-ok[det-rng, det-clock] fixture\n"
        (suppression,) = parse_suppressions("mod.py", source)
        assert suppression.rules == ("det-rng", "det-clock")

    def test_hash_inside_string_is_not_a_suppression(self):
        source = 'text = "# repro: lint-ok[det-rng] not a comment"\n'
        assert parse_suppressions("mod.py", source) == []

    def test_missing_reason_is_a_finding(self):
        source = "import random\nx = random.random()  # repro: lint-ok[det-rng]\n"
        result = lint_sources({"mod.py": source})
        rules = {f.rule for f in result.findings}
        assert "suppression" in rules
        message = next(
            f.message for f in result.findings if f.rule == "suppression"
        )
        assert "no reason" in message

    def test_unknown_rule_id_is_a_finding(self):
        source = "x = 1  # repro: lint-ok[no-such-rule] reason\n"
        result = lint_sources({"mod.py": source})
        assert any(
            f.rule == "suppression" and "unknown rule" in f.message
            for f in result.findings
        )

    def test_unused_suppression_is_a_warning_finding(self):
        source = "x = 1  # repro: lint-ok[det-rng] nothing here\n"
        result = lint_sources({"mod.py": source})
        (finding,) = [f for f in result.findings if f.rule == "suppression"]
        assert finding.severity == "warning"
        assert "unused" in finding.message

    def test_used_suppression_is_not_reported_unused(self):
        source = "import random\nx = random.random()  # repro: lint-ok[det-rng] fixture\n"
        result = lint_sources({"mod.py": source})
        assert result.clean

    def test_suppression_shields_only_named_rules(self):
        # det-clock suppression does not shield the det-rng finding.
        source = (
            "import random\n"
            "x = random.random()  # repro: lint-ok[det-clock] wrong rule\n"
        )
        result = lint_sources({"repro/sim/mod.py": source})
        assert any(f.rule == "det-rng" for f in result.findings)


class TestParseErrors:
    def test_unparseable_file_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        result = lint_paths([str(tmp_path)], ALL_RULES())
        (finding,) = [f for f in result.findings if f.rule == "parse-error"]
        assert finding.path == str(bad)
        assert result.files == 2


class TestDiscovery:
    def test_duplicate_targets_linted_once(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(VIOLATION)
        result = lint_paths(
            [str(target), str(tmp_path), str(target)], ALL_RULES()
        )
        assert result.files == 1
        assert len(result.findings) == 1

    def test_hidden_and_pycache_dirs_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text(VIOLATION)
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "junk.py").write_text(VIOLATION)
        result = lint_paths([str(tmp_path)], ALL_RULES())
        assert result.files == 0

    def test_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            discover_files(["no/such/path"])


class TestBaseline:
    def _project_with_violation(self, tmp_path, prefix=""):
        target = tmp_path / "mod.py"
        target.write_text(prefix + VIOLATION)
        project = load_project([str(tmp_path)])
        return target, project

    def test_round_trip_accepts_findings(self, tmp_path):
        _, project = self._project_with_violation(tmp_path)
        result = run_rules(project, ALL_RULES())
        assert result.findings
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, result.findings, project)
        baseline = read_baseline(baseline_path)
        new, baselined, stale = baseline.split(result.findings, project)
        assert new == []
        assert len(baselined) == len(result.findings)
        assert stale == []

    def test_fingerprint_survives_line_drift(self, tmp_path):
        target, project = self._project_with_violation(tmp_path)
        result = run_rules(project, ALL_RULES())
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, result.findings, project)
        # Insert lines above the violation: the line number moves, the
        # content fingerprint must not.
        target.write_text("# a comment\n# another\n" + VIOLATION)
        drifted_project = load_project([str(tmp_path)])
        drifted = run_rules(drifted_project, ALL_RULES())
        assert drifted.findings[0].line != result.findings[0].line
        baseline = read_baseline(baseline_path)
        new, baselined, stale = baseline.split(
            drifted.findings, drifted_project
        )
        assert new == []
        assert len(baselined) == len(drifted.findings)

    def test_fixed_finding_reported_stale(self, tmp_path):
        target, project = self._project_with_violation(tmp_path)
        result = run_rules(project, ALL_RULES())
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, result.findings, project)
        target.write_text("x = 1\n")
        clean_project = load_project([str(tmp_path)])
        clean = run_rules(clean_project, ALL_RULES())
        baseline = read_baseline(baseline_path)
        new, baselined, stale = baseline.split(clean.findings, clean_project)
        assert new == [] and baselined == []
        assert len(stale) == len(result.findings)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = read_baseline(str(tmp_path / "nope.json"))
        assert baseline.empty

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError):
            read_baseline(str(path))

    def test_fingerprint_depends_on_rule_path_and_content(self):
        finding = Finding(
            rule="det-rng", path="a.py", line=3, col=0, message="m"
        )
        base = finding_fingerprint(finding, "x = random.random()")
        assert base != finding_fingerprint(finding, "y = random.random()")
        other_rule = Finding(
            rule="det-clock", path="a.py", line=3, col=0, message="m"
        )
        assert base != finding_fingerprint(other_rule, "x = random.random()")
        # Line numbers are deliberately not part of the key.
        moved = Finding(
            rule="det-rng", path="a.py", line=99, col=0, message="m"
        )
        assert base == finding_fingerprint(moved, "x = random.random()")


class TestReporters:
    def _result(self):
        return lint_sources({"mod.py": VIOLATION})

    def test_text_report_lists_findings_and_summary(self):
        text = render_text(self._result())
        assert "mod.py:3:" in text
        assert "error[det-rng]" in text
        assert "1 finding in 1 file" in text

    def test_text_report_counts_baselined_and_stale(self):
        result = self._result()
        text = render_text(
            result,
            baselined=result.findings,
            stale_baseline=["deadbeef"],
            new_findings=[],
        )
        assert "0 findings" in text
        assert "1 baselined" in text
        assert "stale baseline entry" in text

    def test_json_report_shape(self):
        payload = json.loads(render_json(self._result()))
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "det-rng"
        assert finding["path"] == "mod.py"
        assert finding["line"] == 3
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []


class TestCli:
    def test_lint_src_is_clean(self, capsys):
        exit_code = main(["lint", SRC])
        assert exit_code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_seeded_violation_fails(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        exit_code = main(
            ["lint", str(tmp_path), "--baseline", str(tmp_path / "b.json")]
        )
        assert exit_code == 1
        assert "det-rng" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        baseline = str(tmp_path / "baseline.json")
        assert (
            main(
                [
                    "lint",
                    str(tmp_path),
                    "--baseline",
                    baseline,
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert os.path.exists(baseline)
        assert main(["lint", str(tmp_path), "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # A *new* violation still gates red over the baseline.
        (tmp_path / "worse.py").write_text(VIOLATION)
        assert main(["lint", str(tmp_path), "--baseline", baseline]) == 1

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATION)
        exit_code = main(
            [
                "lint",
                str(tmp_path),
                "--format",
                "json",
                "--baseline",
                str(tmp_path / "b.json"),
            ]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "det-rng",
            "det-clock",
            "det-taint",
            "wire-registry",
            "verb-registry",
            "event-registry",
            "trace-pairing",
            "frozen-mutation",
            "async-blocking-transitive",
            "resource-typestate",
            "broad-except",
        ):
            assert rule_id in out
        assert "async-blocking: alias of async-blocking-transitive" in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "no/such/tree"]) == 2

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        assert (
            main(["lint", str(tmp_path), "--baseline", str(bad)]) == 2
        )


#: A snippet whose only finding is interprocedural: an ``async def``
#: body that blocks the event loop (the chain of length one).
ASYNC_VIOLATION = "import time\n\nasync def handler():\n    time.sleep(1)\n"


class TestProfilesStatsGraph:
    """PR 10 CLI surface: ``--profile``, ``--stats``, ``--graph``."""

    def test_relaxed_profile_skips_interprocedural_rules(self, tmp_path):
        (tmp_path / "mod.py").write_text(ASYNC_VIOLATION)
        assert main(["lint", str(tmp_path)]) == 1
        assert main(["lint", str(tmp_path), "--profile", "relaxed"]) == 0

    def test_relaxed_profile_still_guards_rng(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        assert main(["lint", str(tmp_path), "--profile", "relaxed"]) == 1

    def test_stats_table_in_text_output(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        (tmp_path / "ok.py").write_text(
            "import random\n"
            "y = random.random()  # repro: lint-ok[det-rng] fixture\n"
        )
        main(["lint", str(tmp_path), "--stats"])
        out = capsys.readouterr().out
        assert "rule" in out and "findings" in out and "suppressed" in out
        # det-rng: one live finding, one active suppression.
        (line,) = [l for l in out.splitlines() if l.strip().startswith("det-rng")]
        assert line.split()[1:3] == ["1", "1"]
        # Zero rows are present too: every active rule is accounted for.
        assert any(
            l.strip().startswith("broad-except") for l in out.splitlines()
        )

    def test_stats_key_in_json_output(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        main(["lint", str(tmp_path), "--stats", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["det-rng"]["findings"] == 1
        assert payload["stats"]["det-rng"]["suppressed"] == 0
        assert "broad-except" in payload["stats"]

    def test_no_stats_flag_no_stats_key(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        main(["lint", str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert "stats" not in payload

    def test_graph_exports_dot(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "def callee():\n    return 1\n\ndef caller():\n    return callee()\n"
        )
        dot = tmp_path / "graph.dot"
        assert main(["lint", str(tmp_path), "--graph", str(dot)]) == 0
        text = dot.read_text()
        assert text.startswith("digraph")
        assert "caller" in text and "callee" in text
        assert "->" in text


class TestRuleAliases:
    """``async-blocking`` lives on as an alias of the transitive rule."""

    def test_alias_suppression_shields_canonical_finding(self):
        source = (
            "import time\n"
            "async def handler():\n"
            "    # repro: lint-ok[async-blocking] fixture keeps old name\n"
            "    time.sleep(1)\n"
        )
        result = lint_sources({"mod.py": source})
        assert result.clean
        assert [f.rule for f in result.suppressed] == [
            "async-blocking-transitive"
        ]

    def test_canonical_suppression_still_works(self):
        source = (
            "import time\n"
            "async def handler():\n"
            "    # repro: lint-ok[async-blocking-transitive] fixture\n"
            "    time.sleep(1)\n"
        )
        result = lint_sources({"mod.py": source})
        assert result.clean

    def test_malformed_alias_suppression_is_still_a_finding(self):
        # A reason-less suppression is malformed whether it names the
        # canonical id or the legacy alias: the alias migration must
        # not launder bad grammar.
        source = (
            "import time\n"
            "async def handler():\n"
            "    # repro: lint-ok[async-blocking]\n"
            "    time.sleep(1)\n"
        )
        result = lint_sources({"mod.py": source})
        assert any(
            f.rule == "suppression" and "no reason" in f.message
            for f in result.findings
        )

    def test_alias_does_not_shield_other_rules(self):
        source = (
            "import random\n"
            "x = random.random()  # repro: lint-ok[async-blocking] wrong rule\n"
        )
        result = lint_sources({"mod.py": source})
        assert any(f.rule == "det-rng" for f in result.findings)


class TestRepositoryStatus:
    """The repo's own lint verdict, pinned.

    These are the acceptance criteria of the linter PR itself: a clean
    tree with an *empty* checked-in baseline, and a closed allowlist of
    sanctioned ``frozen-mutation`` memo sites.  A new suppression
    anywhere in ``src/`` must be added here deliberately.
    """

    def test_checked_in_baseline_is_empty(self):
        baseline = read_baseline(
            os.path.join(REPO_ROOT, "lint-baseline.json")
        )
        assert baseline.empty

    def test_sanctioned_suppressions_are_exactly_the_memo_sites(self):
        result = lint_paths([SRC], ALL_RULES())
        assert result.clean
        sites = sorted(
            (
                os.path.relpath(f.path, REPO_ROOT).replace(os.sep, "/"),
                f.rule,
            )
            for f in result.suppressed
        )
        assert sites == [
            ("src/repro/causal/dots.py", "frozen-mutation"),
            ("src/repro/codec.py", "frozen-mutation"),
            ("src/repro/lattice/map_lattice.py", "frozen-mutation"),
            ("src/repro/lattice/map_lattice.py", "frozen-mutation"),
            ("src/repro/lattice/primitives.py", "frozen-mutation"),
            ("src/repro/lattice/set_lattice.py", "frozen-mutation"),
            # PR 10 interprocedural rules: the serving stack touches
            # real time and real locks by design, at exactly these
            # two sanctioned sites.
            ("src/repro/net/tcp.py", "det-taint"),
            ("src/repro/serve/replica.py", "async-blocking-transitive"),
        ]
