"""Live ring rebalancing: WAL-segment shard handoff while traffic flows.

Covers the membership-change machinery end to end:

* cluster level — mid-run ``add_replica`` / ``decommission_replica``
  converge with client traffic flowing, on the simulator and over real
  TCP sockets, for WAL-backed and log-less recovery policies;
* the handoff protocol — offers, segments, completion acks, the
  root-match short-circuit, retry under message loss, and pacing under
  a send budget;
* fencing — a decommissioned replica's logs are truncated and sealed,
  so a later re-add starts from the handoff, not from stale history;
* scheduler units — membership migration preserves δ-path clocks, and
  the handoff queue walks offer → segment → done with retries;
* store units — in-flight traffic for a shard the ring moved away is
  tolerated (counted), while traffic for a shard the ring *does* place
  here still fails loudly.
"""

import random

import pytest

from repro.kv import (
    AntiEntropyConfig,
    AntiEntropyScheduler,
    HashRing,
    KVCluster,
    KVRoutingError,
    KVStore,
    KVUpdate,
)
from repro.lattice.map_lattice import MapLattice
from repro.sim.network import ClusterConfig
from repro.sim.topology import full_mesh
from repro.sync import StateBased, Scuttlebutt, keyed_bp_rr
from repro.sync.protocol import Message
from repro.wal import MemoryStorage, ShardLog, WalFencedError
from repro.lattice.set_lattice import SetLattice
from repro.codec import encode


REPAIR = AntiEntropyConfig(
    repair_interval=3, repair_fanout=8, repair_mode="digest"
)


def make_cluster(n_topology, n_ring, *, recovery="wal", transport="sim",
                 antientropy=REPAIR, replication=2, shards=16, loss_rate=0.0):
    ring = HashRing(range(n_ring), n_shards=shards, replication=replication)
    return KVCluster(
        ring,
        keyed_bp_rr,
        config=ClusterConfig(topology=full_mesh(n_topology), loss_rate=loss_rate),
        antientropy=antientropy,
        recovery=recovery,
        transport=transport,
    )


def pump(cluster, rounds, seed=0, keys=24, writes=12):
    """Client traffic routed by the *current* ring, one batch per round."""
    rng = random.Random(seed)
    for r in range(rounds):
        for i in range(writes):
            cluster.update(f"set:{rng.randrange(keys)}", "add", f"e{seed}-{r}-{i}")
        cluster.run_round(updates=None)


def expected_union(seeds_rounds, keys=24, writes=12):
    """Replay the pump schedule to the per-key ground truth."""
    union = {}
    for seed, rounds_range in seeds_rounds:
        rng = random.Random(seed)
        for r in rounds_range:
            for i in range(writes):
                key = f"set:{rng.randrange(keys)}"
                union.setdefault(key, set()).add(f"e{seed}-{r}-{i}")
    return union


class TestLiveAdd:
    def test_add_converges_with_traffic_flowing(self):
        cluster = make_cluster(5, 4)
        pump(cluster, 3, seed=1)
        report = cluster.add_replica(4)
        assert report.added == 4 and report.removed is None
        assert report.new_replicas == (0, 1, 2, 3, 4)
        assert len(report.moved_shards) > 0
        pump(cluster, 4, seed=2)
        cluster.drain()
        assert cluster.converged()
        assert cluster.pending_handoffs() == 0
        # The joiner actually owns (and serves) shards now.
        assert cluster.nodes[4].shards
        for key, want in expected_union(
            [(1, range(3)), (2, range(4))]
        ).items():
            assert cluster.value(key) == want

    def test_handoff_undercuts_the_naive_fullstate_baseline(self):
        cluster = make_cluster(6, 5, replication=3)
        pump(cluster, 4, seed=3, writes=20)
        report = cluster.add_replica(5)
        pump(cluster, 4, seed=4)
        cluster.drain()
        assert cluster.converged()
        stats = cluster.scheduler_stats()
        assert stats["handoffs_completed"] >= len(report.transfers)
        assert 0 < stats["handoff_payload_bytes"] < report.naive_fullstate_bytes

    def test_add_rejects_bad_nodes(self):
        cluster = make_cluster(5, 4)
        with pytest.raises(ValueError, match="no topology node 9"):
            cluster.add_replica(9)
        with pytest.raises(ValueError, match="already a member"):
            cluster.add_replica(2)
        cluster.crash(4)
        with pytest.raises(ValueError, match="crashed node 4"):
            cluster.add_replica(4)

    def test_rebalance_requires_repair(self):
        cluster = make_cluster(5, 4, antientropy=AntiEntropyConfig())
        with pytest.raises(ValueError, match="requires repair"):
            cluster.add_replica(4)

    @pytest.mark.parametrize("inner", [StateBased, Scuttlebutt], ids=["state", "scuttlebutt"])
    def test_other_inner_protocols_rebalance_too(self, inner):
        ring = HashRing(range(4), n_shards=8, replication=2)
        cluster = KVCluster(
            ring,
            inner,
            config=ClusterConfig(topology=full_mesh(5)),
            antientropy=REPAIR,
        )
        pump(cluster, 2, seed=5)
        cluster.add_replica(4)
        pump(cluster, 3, seed=6)
        cluster.drain()
        assert cluster.converged()


class TestLiveDecommission:
    def test_decommission_converges_and_leaver_ends_empty(self):
        cluster = make_cluster(5, 5)
        pump(cluster, 3, seed=7)
        report = cluster.decommission_replica(0)
        assert report.removed == 0
        assert 0 not in cluster.ring.replicas
        pump(cluster, 4, seed=8)
        cluster.drain()
        assert cluster.converged()
        assert not cluster.nodes[0].shards
        assert not cluster.nodes[0]._fencing
        for key, want in expected_union([(7, range(3)), (8, range(4))]).items():
            assert cluster.value(key) == want

    def test_leaver_wal_is_fenced_and_truncated(self):
        cluster = make_cluster(4, 4)
        pump(cluster, 3, seed=9)
        owned_before = set(cluster.nodes[0].shards)
        assert owned_before
        cluster.decommission_replica(0)
        pump(cluster, 3, seed=10)
        cluster.drain()
        wal = cluster._wals[0]
        for shard in owned_before:
            log = wal.log(shard)
            assert log.fenced
            assert log.size_bytes() == 0
            with pytest.raises(WalFencedError):
                log.stage(b"stale")
        assert cluster.wal_stats()["wal_fences"] >= len(owned_before)

    def test_readd_after_decommission_cannot_resurrect_stale_state(self):
        """The fencing rule: the re-added node regains shards through
        the handoff, and its pre-decommission log never replays."""
        cluster = make_cluster(5, 5)
        pump(cluster, 3, seed=11)
        cluster.decommission_replica(4)
        pump(cluster, 3, seed=12)
        cluster.drain()
        report = cluster.add_replica(4)
        pump(cluster, 4, seed=13)
        cluster.drain()
        assert cluster.converged()
        assert cluster.pending_handoffs() == 0
        for shard in cluster.nodes[4].shards:
            assert not cluster._wals[4].log(shard).fenced
        for key, want in expected_union(
            [(11, range(3)), (12, range(3)), (13, range(4))]
        ).items():
            assert cluster.value(key) == want

    def test_decommissioning_a_crashed_node_preserves_its_wal(self):
        """Dead-node removal must not destroy the only durable copy:
        the crashed leaver's shards are reported unsourced, its logs
        stay unfenced and intact for operator recovery."""
        cluster = make_cluster(4, 4, replication=1, shards=8)
        pump(cluster, 3, seed=23)
        victim = 3
        owned = set(cluster.nodes[victim].shards)
        assert owned
        cluster.run_round(updates=None)  # commit the victim's staged WAL
        sizes = {
            shard: cluster._wals[victim].log(shard).size_bytes()
            for shard in owned
        }
        assert any(size > 0 for size in sizes.values())
        cluster.crash(victim)
        report = cluster.decommission_replica(victim)
        # rf=1: no live old owner — every moved shard is unsourced.
        assert report.unsourced
        assert {shard for shard, _ in report.unsourced} <= owned
        for shard in owned:
            log = cluster._wals[victim].log(shard)
            assert not log.fenced
            assert log.size_bytes() == sizes[shard]

    def test_decommission_below_replication_raises(self):
        cluster = make_cluster(3, 3, replication=3)
        with pytest.raises(ValueError, match="would leave 2 < replication 3"):
            cluster.decommission_replica(0)


class TestHandoffProtocol:
    def test_logless_store_ships_its_encoded_decomposition(self):
        """recovery='repair' has no WAL; the segment falls back to the
        encoded join decomposition of the live shard state."""
        cluster = make_cluster(5, 4, recovery="repair")
        pump(cluster, 3, seed=14)
        cluster.add_replica(4)
        pump(cluster, 4, seed=15)
        cluster.drain()
        assert cluster.converged()
        stats = cluster.scheduler_stats()
        assert stats["handoff_segments"] > 0
        assert stats["handoff_payload_bytes"] > 0

    def test_handoff_survives_message_loss(self):
        """Offers, segments, and acks retry until acknowledged."""
        cluster = make_cluster(5, 4, loss_rate=0.15)
        pump(cluster, 2, seed=16)
        cluster.add_replica(4)
        pump(cluster, 4, seed=17)
        cluster.drain()
        assert cluster.converged()
        assert cluster.pending_handoffs() == 0

    def test_handoff_respects_the_send_budget(self):
        """A tiny budget still makes progress (paced, not starved)."""
        tight = AntiEntropyConfig(
            budget_bytes=256,
            repair_interval=3,
            repair_fanout=4,
            repair_mode="digest",
        )
        cluster = make_cluster(5, 4, antientropy=tight)
        pump(cluster, 3, seed=18, writes=20)
        cluster.add_replica(4)
        pump(cluster, 5, seed=19)
        cluster.drain()
        assert cluster.converged()
        assert cluster.pending_handoffs() == 0

    def test_offer_root_match_short_circuits_the_segment(self):
        """A receiver already holding the content acks the offer
        complete — no segment bytes cross the wire."""
        ring = HashRing(range(3), n_shards=4, replication=2)
        store = KVStore(
            replica=0,
            neighbors=(1, 2),
            bottom=MapLattice(),
            n_nodes=3,
            ring=ring,
            inner_factory=keyed_bp_rr,
            antientropy=REPAIR,
        )
        shard = next(iter(store.shards))
        offer = store._handoff_offer(shard, store.shards[shard])
        reply = store._handle_handoff(1, shard, offer)
        assert reply.kind == "kv-handoff-ack"
        complete, root = reply.payload
        assert complete and root is not None

    def test_segment_replay_acks_complete(self):
        ring = HashRing(range(3), n_shards=4, replication=2)

        def store_for(replica):
            group = next(
                (s, ring.shard_owners(s))
                for s in range(4)
                if replica in ring.shard_owners(s)
            )
            return KVStore(
                replica=replica,
                neighbors=tuple(r for r in range(3) if r != replica),
                bottom=MapLattice(),
                n_nodes=3,
                ring=ring,
                inner_factory=keyed_bp_rr,
                antientropy=REPAIR,
            )

        sender, receiver = store_for(0), store_for(1)
        shared = sorted(set(sender.shards) & set(receiver.shards))
        assert shared, "rings this small always share a shard"
        shard = shared[0]
        delta = MapLattice({"set:x": SetLattice({"a", "b"})})
        sender.shards[shard].absorb_state(delta, None)
        segment = Message(
            kind="kv-handoff-segment",
            payload=(encode(sender.shards[shard].state),),
            payload_units=2,
            payload_bytes=10,
            metadata_bytes=8,
            metadata_units=1,
        )
        reply = receiver._handle_handoff(0, shard, segment)
        complete, root = reply.payload
        assert complete
        assert receiver.shards[shard].state == sender.shards[shard].state
        assert receiver.scheduler.handoff_segments == 1


class TestRebalancePreflight:
    def test_disconnected_placement_fails_before_any_mutation(self):
        """On a non-mesh overlay, a rebalance whose new groups are not
        fully connected must raise *before* touching any store — a
        mid-loop failure would leave the cluster half-rebalanced."""
        from repro.sim.topology import star

        # Star: every spoke reaches only the hub (node 0), so any owner
        # group containing two spokes is disconnected.
        ring = HashRing([0, 1], n_shards=8, replication=2)
        cluster = KVCluster(
            ring,
            keyed_bp_rr,
            config=ClusterConfig(topology=star(4)),
            antientropy=REPAIR,
        )
        cluster.update("set:a", "add", "x")
        cluster.run_round(updates=None)
        shards_before = {
            node: sorted(store.shards) for node, store in enumerate(cluster.nodes)
        }
        with pytest.raises(ValueError, match="cannot reach"):
            cluster.add_replica(2)
        assert cluster.ring.replicas == (0, 1)  # ring untouched
        assert shards_before == {
            node: sorted(store.shards) for node, store in enumerate(cluster.nodes)
        }
        assert cluster.pending_handoffs() == 0


class TestOverlappingRebalances:
    def test_shard_moving_twice_keeps_its_only_copy(self):
        """Back-to-back membership changes while the first handoff is
        still pending must not lose data: at rf=1 the retained old
        source is the only replica with the content, so the second
        rebalance must pick it — not the current (still empty) ring
        owner — and a rootless declination ack must never fence it."""
        cluster = make_cluster(3, 2, replication=1, shards=4)
        for i in range(8):
            cluster.update(f"set:{i}", "add", "precious")
        cluster.run_round(updates=None)
        cluster.drain()
        written = {f"set:{i}" for i in range(8)}
        # First change: node 0 leaves; its shards' handoffs are pending.
        first = cluster.decommission_replica(0)
        # Immediately (no rounds in between): node 2 joins, moving some
        # of those shards a second time before any segment shipped.
        second = cluster.add_replica(2)
        twice_moved = set(first.moved_shards) & set(second.moved_shards)
        cluster.drain()
        assert cluster.converged()
        assert cluster.pending_handoffs() == 0
        for key in written:
            assert cluster.value(key) == {"precious"}, (
                key,
                cluster.ring.shard_of(key),
                twice_moved,
            )
        # Once every handoff settled, nothing lingers in fencing sets.
        for node in cluster.nodes:
            assert not node._fencing
        # Declinations (receivers the second change outran) are counted
        # as abandonments, never as receiver-confirmed completions.
        stats = cluster.scheduler_stats()
        assert (
            stats["handoffs_completed"] + stats["handoffs_abandoned"]
            == stats["handoffs_started"]
        )


class TestStaleTraffic:
    def test_stale_shard_traffic_is_counted_not_fatal(self):
        ring = HashRing(range(3), n_shards=8, replication=2)
        store = KVStore(
            replica=0,
            neighbors=(1, 2),
            bottom=MapLattice(),
            n_nodes=3,
            ring=ring,
            inner_factory=keyed_bp_rr,
            antientropy=REPAIR,
        )
        victim = next(iter(store.shards))
        # Move every shard off replica 0, then deliver traffic for one.
        store.apply_ring(HashRing([1, 2], n_shards=8, replication=2))
        assert not store.shards
        stale = Message(
            kind="kv-shard",
            payload=(victim, Message("state", MapLattice(), 0, 0, 0)),
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=0,
            metadata_units=0,
        )
        assert store.handle_message(1, stale) == []
        assert store.stale_shard_messages == 1

    def test_traffic_for_a_shard_we_should_own_still_fails_loudly(self):
        ring = HashRing(range(3), n_shards=8, replication=3)
        store = KVStore(
            replica=0,
            neighbors=(1, 2),
            bottom=MapLattice(),
            n_nodes=3,
            ring=ring,
            inner_factory=keyed_bp_rr,
            antientropy=REPAIR,
        )
        shard = next(iter(store.shards))
        del store.shards[shard]  # simulate an internal inconsistency
        broken = Message(
            kind="kv-shard",
            payload=(shard, Message("state", MapLattice(), 0, 0, 0)),
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=0,
            metadata_units=0,
        )
        with pytest.raises(KVRoutingError):
            store.handle_message(1, broken)


class TestSchedulerMembership:
    def make(self, **kwargs):
        config = AntiEntropyConfig(
            repair_interval=4, repair_mode="digest", **kwargs
        )
        return AntiEntropyScheduler(
            config, [0, 1], {0: (1, 2), 1: (2,)}, replica=0
        )

    def test_apply_membership_preserves_surviving_path_clocks(self):
        scheduler = self.make()
        scheduler.tick = 7
        scheduler.note_delta_activity(0, 1)
        scheduler.apply_membership([0, 2], {0: (1, 3), 2: (3,)})
        # Surviving path keeps its clock; new paths start warm at `tick`.
        assert scheduler._last_delta[(0, 1)] == 7
        assert scheduler._last_delta[(0, 3)] == 7
        assert scheduler._last_delta[(2, 3)] == 7
        # Paths to dropped shards/peers are gone.
        assert (1, 2) not in scheduler._last_delta
        assert scheduler._peer_shards == {1: (0,), 3: (0, 2)}

    def test_apply_membership_suspects_requested_paths(self):
        scheduler = self.make()
        scheduler.apply_membership(
            [0], {0: (1, 2)}, suspect_paths=[(0, 1), (9, 9)]
        )
        assert (0, 1) in scheduler._suspect
        assert (9, 9) not in scheduler._suspect

    def test_handoff_lifecycle_offer_segment_done(self):
        scheduler = self.make()
        scheduler.tick = 1
        scheduler.enqueue_handoff(5, 3)
        assert scheduler.pending_handoffs() == 1
        assert scheduler.plan_handoffs() == [(5, 3, "offer")]
        # Unacknowledged: nothing re-fires before the retry interval.
        assert scheduler.plan_handoffs() == []
        scheduler.note_handoff_wanted(5, 3)
        assert scheduler.plan_handoffs() == [(5, 3, "segment")]
        assert scheduler.finish_handoff(5, 3)
        assert scheduler.pending_handoffs() == 0
        assert scheduler.handoffs_started == 1
        assert scheduler.handoffs_completed == 1

    def test_unacked_phases_retry_after_the_interval(self):
        scheduler = self.make(handoff_retry_interval=2)
        scheduler.tick = 1
        scheduler.enqueue_handoff(0, 2)
        assert scheduler.plan_handoffs() == [(0, 2, "offer")]
        scheduler.tick += 1
        assert scheduler.plan_handoffs() == []
        scheduler.tick += 1
        assert scheduler.plan_handoffs() == [(0, 2, "offer")]

    def test_budget_exhaustion_paces_segments_to_one(self):
        scheduler = self.make(budget_bytes=64, repair_fanout=4)
        scheduler.tick = 1
        for shard in (0, 1):
            for dst in (3, 4):
                scheduler.enqueue_handoff(shard, dst)
                scheduler.note_handoff_wanted(shard, dst)
        scheduler._spent = 999  # the tick's plan() already blew the budget
        assert len(scheduler.plan_handoffs()) == 1
        scheduler._spent = 0
        scheduler.tick += 1  # budget clears; the three never-sent fire
        assert len(scheduler.plan_handoffs()) == 3


class TestShardLogFencing:
    def test_fence_truncates_and_seals(self):
        log = ShardLog(MemoryStorage(), "s0.wal")
        log.stage(encode(SetLattice({"a"})))
        log.commit()
        assert log.size_bytes() > 0
        log.fence()
        assert log.fenced
        assert log.size_bytes() == 0
        assert log.replay() is None
        with pytest.raises(WalFencedError):
            log.stage(b"x")
        log.unfence()
        log.stage(encode(SetLattice({"b"})))
        log.commit()
        assert log.replay() == SetLattice({"b"})

    def test_export_records_round_trips_the_state(self):
        from repro.codec import decode

        log = ShardLog(MemoryStorage(), "s1.wal")
        for element in ("a", "b", "c"):
            log.stage(encode(SetLattice({element})))
        log.commit()
        bodies = log.export_records()
        assert bodies
        state = None
        for body in bodies:
            delta = decode(body)
            state = delta if state is None else state.join(delta)
        assert state == SetLattice({"a", "b", "c"})

    def test_fenced_log_exports_nothing(self):
        log = ShardLog(MemoryStorage(), "s2.wal")
        log.stage(encode(SetLattice({"a"})))
        log.commit()
        log.fence()
        assert log.export_records() == []


class TestRebalanceOverTcp:
    def test_add_and_decommission_converge_over_sockets(self):
        cluster = make_cluster(5, 4, transport="tcp", shards=8)
        try:
            pump(cluster, 2, seed=20, writes=6)
            cluster.add_replica(4)
            pump(cluster, 3, seed=21, writes=6)
            cluster.drain()
            assert cluster.converged()
            cluster.decommission_replica(0)
            pump(cluster, 3, seed=22, writes=6)
            cluster.drain()
            assert cluster.converged()
            assert cluster.pending_handoffs() == 0
            assert not cluster.nodes[0].shards
            stats = cluster.scheduler_stats()
            assert stats["handoff_segments"] > 0
            assert stats["handoff_payload_bytes"] > 0
        finally:
            cluster.close()
