"""WAL-backed crash recovery: local replay first, repair the remainder.

``crash(lose_state=True)`` under a WAL recovery policy rebuilds the
replica from its own per-shard log instead of re-shipping its keyspace
over the network.  These tests pin the policy ladder down:

* every inner protocol converges after the fault schedule under both
  WAL policies, with the replayed bookkeeping staying truthful
  (the content flows through ``absorb_state``);
* the WAL run spends strictly fewer repair payload bytes than the
  bottom-restart digest baseline on the identical seeded schedule —
  the measurable claim the recovery experiment makes;
* the durability boundary is honest: records staged after the last
  group commit are lost at the crash and digest repair covers exactly
  that remainder;
* ``wal+repair`` verifies the replay — the recovered replica itself
  probes every δ-path instead of waiting for peer suspicion;
* the log survives on real files (``FileStorage``) and across the TCP
  transport, not just in the simulator's memory backend.
"""

import pytest

from repro.experiments.kv_sweep import KVConfig, run_kv_repair_cell
from repro.kv import (
    AntiEntropyConfig,
    HashRing,
    KVCluster,
    KVStore,
    RECOVERY_POLICIES,
)
from repro.sync import MerkleSync, Scuttlebutt, StateBased, keyed_bp_rr, keyed_classic
from repro.wal import FileStorage

INNER = {
    "state-based": StateBased,
    "delta-based": keyed_classic,
    "delta-based-bp-rr": keyed_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "merkle": MerkleSync,
}

DIGEST_REPAIR = AntiEntropyConfig(
    repair_interval=2, repair_fanout=8, repair_mode="digest"
)


def build_cluster(inner=keyed_bp_rr, recovery="wal", **kwargs):
    ring = HashRing(range(4), n_shards=8, replication=3)
    return KVCluster(
        ring, inner, antientropy=DIGEST_REPAIR, recovery=recovery, **kwargs
    )


def run_fault_schedule(cluster, victim=3):
    """Writes, settle, crash with disk loss, divergence, recover, drain."""
    for i in range(12):
        cluster.update(f"aws:{i}", "add", f"e{i}")
    cluster.run_round(updates=None)
    cluster.drain()
    cluster.crash(victim, lose_state=True)
    cluster.update("aws:0", "add", "while-down")
    cluster.run_round(updates=None)
    cluster.recover(victim)
    cluster.drain()


class TestWalRecoveryConverges:
    @pytest.mark.parametrize("recovery", ["wal", "wal+repair"])
    @pytest.mark.parametrize("algorithm", sorted(INNER))
    def test_every_inner_protocol_recovers_from_its_log(self, algorithm, recovery):
        cluster = build_cluster(INNER[algorithm], recovery=recovery)
        run_fault_schedule(cluster)
        assert cluster.converged(), f"{algorithm}/{recovery} diverged"
        assert cluster.value("aws:0") >= {"e0", "while-down"}
        for i in range(1, 12):
            assert cluster.value(f"aws:{i}") == frozenset({f"e{i}"})
        stats = cluster.wal_stats()
        assert stats["wal_replays"] > 0
        assert stats["wal_replayed_bytes"] > 0

    def test_replay_restores_state_before_any_network_round(self):
        """The rebuilt store holds its committed keyspace immediately —
        the local-replay-first half of the recovery argument."""
        cluster = build_cluster()
        for i in range(12):
            cluster.update(f"aws:{i}", "add", f"e{i}")
        cluster.run_round(updates=None)
        cluster.drain()
        survivor_view = {
            shard: cluster.nodes[3].shards[shard].state
            for shard in cluster.nodes[3].shards
        }
        cluster.crash(3, lose_state=True)
        rebuilt = cluster.nodes[3]
        assert isinstance(rebuilt, KVStore)
        # No round has run since the rebuild: anything it holds came
        # from the log.  The torn tail (records staged after the last
        # commit) may be missing; everything committed must be back.
        for shard, sync in rebuilt.shards.items():
            assert sync.state.leq(survivor_view[shard])
        assert any(not sync.state.is_bottom for sync in rebuilt.shards.values())

    def test_repair_policy_still_rebuilds_from_bottom(self):
        cluster = build_cluster(recovery="repair")
        for i in range(12):
            cluster.update(f"aws:{i}", "add", f"e{i}")
        cluster.run_round(updates=None)
        cluster.drain()
        cluster.crash(3, lose_state=True)
        rebuilt = cluster.nodes[3]
        assert all(sync.state.is_bottom for sync in rebuilt.shards.values())
        assert cluster.wal_stats() == {}

    def test_recovery_policy_is_validated(self):
        with pytest.raises(ValueError, match="recovery"):
            build_cluster(recovery="hope")
        assert set(RECOVERY_POLICIES) == {"repair", "wal", "wal+repair"}

    def test_wal_knobs_without_a_wal_policy_are_rejected(self):
        """Silently ignoring the storage would fake durability."""
        from repro.wal import MemoryStorage, WalConfig

        with pytest.raises(ValueError, match="wal_storage"):
            build_cluster(
                recovery="repair", wal_storage=lambda replica: MemoryStorage()
            )
        with pytest.raises(ValueError, match="wal_storage"):
            build_cluster(recovery="repair", wal_config=WalConfig())


class TestWalBeatsRemoteRepair:
    def run_policy(self, recovery):
        cluster = build_cluster(recovery=recovery)
        run_fault_schedule(cluster)
        assert cluster.converged()
        return cluster.scheduler_stats()

    def test_wal_replay_cuts_repair_payload(self):
        baseline = self.run_policy("repair")
        replayed = self.run_policy("wal")
        assert 0 < replayed["repair_payload_bytes"] < baseline["repair_payload_bytes"]

    def test_verified_replay_probes_from_the_recovered_side(self):
        trusted = self.run_policy("wal")
        verified = self.run_policy("wal+repair")
        # Suspicion on every δ-path makes the rebuilt replica probe its
        # co-owners itself, on top of the peers' own suspicion probes.
        assert verified["probes"] > trusted["probes"]


class TestDurabilityBoundary:
    def test_records_staged_after_the_last_tick_are_lost(self):
        """Group commit persists at ticks; a write landing after the
        victim's last tick is gone from the log — and digest repair,
        not the replay, brings it back."""
        cluster = build_cluster()
        cluster.update("aws:0", "add", "committed")
        cluster.run_round(updates=None)
        cluster.drain()
        # This write reaches the owners' stores (and WAL staging) but no
        # tick ever commits it before the crash.
        cluster.update("aws:1", "add", "staged-only")
        victims = cluster.ring.owners("aws:1")
        for victim in victims:
            cluster.crash(victim, lose_state=True)
        for victim in victims:
            rebuilt = cluster.nodes[victim]
            assert isinstance(rebuilt, KVStore)
            assert rebuilt.get("aws:1") == frozenset()
        discarded = cluster.wal_stats()["wal_discarded_records"]
        assert discarded > 0
        for victim in victims:
            cluster.recover(victim)
        cluster.drain()
        assert cluster.converged()
        # All owners lost it, so the write is genuinely gone — the
        # documented price of group commit, visible and bounded.
        assert cluster.value("aws:1") == frozenset()
        assert cluster.value("aws:0") == frozenset({"committed"})

    def test_replay_wal_itself_enforces_the_crash_boundary(self):
        """The discard of staged-but-uncommitted records lives in the
        recovery API, not in one particular caller."""
        from repro.kv import kv_store_factory
        from repro.lattice import MapLattice
        from repro.wal import ReplicaWal

        ring = HashRing(range(2), n_shards=2, replication=2)
        wal = ReplicaWal(0)
        factory = kv_store_factory(
            ring, keyed_bp_rr, antientropy=DIGEST_REPAIR, wal_provider=lambda r: wal
        )
        dead = factory(replica=0, neighbors=[1], bottom=MapLattice(), n_nodes=2)
        dead.update("set:a", "add", "durable")
        dead.sync_messages()  # tick: group commit
        dead.update("set:a", "add", "staged-only")
        assert wal.log(ring.shard_of("set:a")).staged_records == 1

        fresh = factory(replica=0, neighbors=[1], bottom=MapLattice(), n_nodes=2)
        assert fresh.replay_wal() == 1
        assert wal.log(ring.shard_of("set:a")).staged_records == 0
        assert fresh.get("set:a") == frozenset({"durable"})

    def test_rebuild_reattaches_the_same_log(self):
        cluster = build_cluster()
        cluster.update("aws:0", "add", "first-life")
        cluster.run_round(updates=None)
        wal_before = cluster.nodes[0].wal
        cluster.crash(0, lose_state=True)
        cluster.recover(0)
        assert cluster.nodes[0].wal is wal_before
        cluster.update("aws:0", "add", "second-life")
        cluster.run_round(updates=None)
        cluster.drain()
        cluster.crash(0, lose_state=True)
        cluster.recover(0)
        cluster.drain()
        assert cluster.converged()
        assert cluster.value("aws:0") >= {"first-life", "second-life"}

    def test_replayed_paths_warm_the_scheduler_at_recover(self):
        """restore_clock marks replayed δ-paths active *after* the tick
        jump, so a good replay is not instantly re-probed as cold."""
        cluster = build_cluster()
        for i in range(12):
            cluster.update(f"aws:{i}", "add", f"e{i}")
        cluster.run_round(updates=None)
        cluster.drain()
        cluster.crash(3, lose_state=True)
        rebuilt = cluster.nodes[3]
        assert rebuilt._replayed_paths  # recorded at replay time
        cluster.run_round(updates=None)
        cluster.recover(3)
        assert rebuilt._replayed_paths == ()  # consumed by restore_clock
        round_now = cluster.rounds_run
        assert rebuilt.scheduler.tick == round_now
        assert rebuilt.scheduler._last_delta
        assert all(
            tick == round_now for tick in rebuilt.scheduler._last_delta.values()
        )


class TestFileBackedAndTcp:
    def test_file_storage_backs_a_cluster_run(self, tmp_path):
        cluster = build_cluster(
            wal_storage=lambda replica: FileStorage(str(tmp_path / f"r{replica}"))
        )
        run_fault_schedule(cluster)
        assert cluster.converged()
        # Real segment files exist for the victim and survived the crash.
        victim_logs = FileStorage(str(tmp_path / "r3")).names()
        assert victim_logs
        assert all(name.endswith(".wal") for name in victim_logs)

    def test_wal_recovery_over_tcp_beats_the_digest_baseline(self):
        # Keyspace sized so the rebuild savings dominate the (small)
        # cost of re-propagating writes the replay *resurrects* — see
        # TestWalResurrectsLostWrites for that effect in isolation.
        config = KVConfig(
            replicas=6,
            keys=120,
            rounds=6,
            ops_per_node=3,
            shards=12,
            replication=2,
            repair_interval=2,
            repair_fanout=8,
            transport="tcp",
        )
        workload = config.make_workload(config.ring())
        digest = run_kv_repair_cell(config, "delta-based-bp-rr", "digest", workload)
        wal = run_kv_repair_cell(config, "delta-based-bp-rr", "wal", workload)
        assert digest.converged and wal.converged
        assert wal.wal_replayed_bytes > 0
        assert wal.repair_payload_bytes < digest.repair_payload_bytes

    def test_unknown_strategy_label_is_rejected(self):
        config = KVConfig(repair_interval=2)
        with pytest.raises(ValueError, match="recovery strategy"):
            run_kv_repair_cell(config, "delta-based-bp-rr", "psychic")


class TestWalResurrectsLostWrites:
    """Replay restores *committed* writes remote repair cannot.

    A write that reached only the crash victim — acknowledged, WAL-
    committed, but never delivered to any co-owner (refused across a
    partition, or single-owner placement) — is simply gone under the
    ``repair`` policy: no surviving replica can re-ship what none of
    them ever held.  The WAL policies replay it from the victim's own
    log, and the normal anti-entropy machinery then propagates the
    resurrected content outward.  (This is why a WAL cell can report a
    few *extra* repair bytes on small keyspaces: it is shipping data
    the baseline silently lost.)
    """

    def test_single_owner_shard_survives_disk_loss_only_with_wal(self):
        def run(recovery):
            ring = HashRing(range(2), n_shards=4, replication=1)
            cluster = KVCluster(
                ring, keyed_bp_rr, antientropy=DIGEST_REPAIR, recovery=recovery
            )
            cluster.update("set:solo", "add", "precious")
            cluster.run_round(updates=None)  # the tick group-commits
            victim = cluster.ring.owners("set:solo")[0]
            cluster.crash(victim, lose_state=True)
            cluster.recover(victim)
            cluster.drain()
            return cluster.value("set:solo")

        assert run("repair") == frozenset()  # unrecoverable: rf=1, disk gone
        assert run("wal") == frozenset({"precious"})

    def test_partition_era_write_survives_heal_then_crash(self):
        """heal → crash with no round in between: the victim is the only
        replica holding its partition-era coordinated writes."""

        def run(recovery):
            ring = HashRing(range(4), n_shards=8, replication=2)
            cluster = KVCluster(
                ring, keyed_bp_rr, antientropy=DIGEST_REPAIR, recovery=recovery
            )
            victim = 3
            # A key the victim coordinates; isolating the victim puts
            # every co-owner across the cut, so the partition-era flush
            # is refused.
            key = next(
                f"set:k{i}"
                for i in range(200)
                if cluster.ring.owners(f"set:k{i}")[0] == victim
            )
            cluster.run_round(updates=None)
            cluster.partition([victim])
            cluster.update(key, "add", "partition-era")
            cluster.run_round(updates=None)  # tick: commit locally, flush refused
            cluster.heal()
            cluster.crash(victim, lose_state=True)
            cluster.recover(victim)
            cluster.drain()
            assert cluster.converged()
            return cluster.value(key)

        assert run("repair") == frozenset()  # no survivor ever held it
        assert run("wal") == frozenset({"partition-era"})
        assert run("wal+repair") == frozenset({"partition-era"})


class TestKeyspaceNovelty:
    """The WAL's per-message diff exploits join's structure sharing."""

    def test_novelty_is_the_optimal_keyed_delta(self):
        from repro.kv.store import _keyspace_novelty
        from repro.lattice import MapLattice, SetLattice

        before = MapLattice({"a": SetLattice({"x"}), "b": SetLattice({"y"})})
        after = before.join(
            MapLattice({"b": SetLattice({"y", "z"}), "c": SetLattice({"w"})})
        )
        novelty = _keyspace_novelty(before, after)
        assert novelty == MapLattice(
            {"b": SetLattice({"z"}), "c": SetLattice({"w"})}
        )

    def test_redundant_delivery_yields_bottom(self):
        from repro.kv.store import _keyspace_novelty
        from repro.lattice import MapLattice, SetLattice

        before = MapLattice({"a": SetLattice({"x"})})
        assert _keyspace_novelty(before, before).is_bottom
        # A join that allocated a new object but taught nothing.
        after = before.join(MapLattice({"a": SetLattice({"x"})}))
        assert _keyspace_novelty(before, after).is_bottom

    def test_unchanged_keys_are_skipped_by_identity(self):
        from repro.kv.store import _keyspace_novelty
        from repro.lattice import MapLattice, SetLattice

        class Tripwire(SetLattice):
            def delta(self, other):  # pragma: no cover - must not run
                raise AssertionError("diffed an untouched key")

        before = MapLattice({"quiet": Tripwire({"x"})})
        after = before.join(MapLattice({"loud": SetLattice({"y"})}))
        novelty = _keyspace_novelty(before, after)
        assert set(novelty.entries) == {"loud"}


class TestSchedulerRebuildSupport:
    def test_reverse_index_maps_peers_to_shared_shards(self):
        from repro.kv import AntiEntropyScheduler

        scheduler = AntiEntropyScheduler(
            AntiEntropyConfig(repair_interval=3, repair_mode="digest"),
            [0, 1, 2],
            {0: (1, 2), 1: (2,), 2: ()},
        )
        assert scheduler._peer_shards == {1: (0,), 2: (0, 1)}
        scheduler.note_peer_unreachable(2)
        assert scheduler._suspect == {(0, 2), (1, 2)}
        # A peer sharing nothing marks nothing.
        scheduler.note_peer_unreachable(9)
        assert scheduler._suspect == {(0, 2), (1, 2)}

    def test_suspect_all_paths_covers_every_delta_path(self):
        from repro.kv import AntiEntropyScheduler

        scheduler = AntiEntropyScheduler(
            AntiEntropyConfig(repair_interval=3, repair_mode="digest"),
            [0, 1],
            {0: (1, 2), 1: (2,)},
        )
        scheduler.suspect_all_paths()
        assert scheduler._suspect == {(0, 1), (0, 2), (1, 2)}


class TestRuntimeRestoreHook:
    def test_replace_applies_restore_before_going_live(self):
        from repro.lattice import MapLattice, SetLattice
        from repro.net.runtime import ReplicaRuntime

        first = StateBased(0, [1], MapLattice(), 2)
        runtime = ReplicaRuntime(first)
        fresh = StateBased(0, [1], MapLattice(), 2)
        seen = []

        def restore(synchronizer):
            seen.append(synchronizer)
            synchronizer.absorb_state(MapLattice({"k": SetLattice({"v"})}))

        runtime.replace(fresh, restore=restore)
        assert seen == [fresh]
        assert runtime.synchronizer is fresh
        assert fresh.state == MapLattice({"k": SetLattice({"v"})})

    def test_replace_still_validates_identity(self):
        from repro.lattice import MapLattice
        from repro.net.runtime import ReplicaRuntime

        runtime = ReplicaRuntime(StateBased(0, [1], MapLattice(), 2))
        with pytest.raises(ValueError, match="replica"):
            runtime.replace(StateBased(1, [0], MapLattice(), 2))
