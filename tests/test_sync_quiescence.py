"""Quiescence: what each protocol costs when nothing is changing.

A real deployment spends most of its life converged.  The paper's
protocols differ sharply at rest — state-based keeps shipping full
states every interval, delta variants go silent once buffers drain,
Scuttlebutt keeps exchanging digest vectors, Merkle keeps exchanging
root hashes — and these costs are design consequences worth pinning,
not accidents of the simulator.
"""

import pytest

from repro.lattice.set_lattice import SetLattice
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import partial_mesh
from repro.sync import ALGORITHMS
from repro.sync.merkle import MerkleSync


def converged_cluster(factory):
    """A cluster that did some work and fully converged."""
    topology = partial_mesh(6, 4)
    cluster = Cluster(ClusterConfig(topology=topology), factory, SetLattice())

    def unique_add(node, r):
        element = f"n{node}r{r}"

        def add(state, e=element):
            if e in state:
                return state.bottom_like()
            return SetLattice((e,))

        return add

    cluster.run_rounds(3, lambda r, node: (unique_add(node, r),))
    cluster.drain()
    assert cluster.converged()
    # State convergence does not imply buffer quiescence: δ-buffers may
    # still hold the (now redundant) last-received groups, which the
    # next tick flushes.  Settle those before measuring the idle cost.
    cluster.run_round(updates=None)
    cluster.run_round(updates=None)
    return cluster


def idle_tick(cluster):
    """Run one update-free round; return the messages it produced."""
    before = len(cluster.metrics.messages)
    cluster.run_round(updates=None)
    return cluster.metrics.messages[before:]


@pytest.mark.parametrize(
    "variant",
    ["delta-based", "delta-based-bp", "delta-based-rr", "delta-based-bp-rr"],
)
def test_delta_variants_are_silent_at_rest(variant):
    """Empty δ-buffers send nothing — the δ-group join of ∅ is ⊥."""
    cluster = converged_cluster(ALGORITHMS[variant])
    assert idle_tick(cluster) == []


def test_state_based_keeps_shipping_full_states():
    cluster = converged_cluster(ALGORITHMS["state-based"])
    idle = idle_tick(cluster)
    assert idle, "state-based never goes quiet"
    state_units = cluster.nodes[0].state.size_units()
    assert all(m.payload_units == state_units for m in idle)


def test_scuttlebutt_pays_digest_vectors_at_rest():
    cluster = converged_cluster(ALGORITHMS["scuttlebutt"])
    idle = idle_tick(cluster)
    assert idle, "anti-entropy keeps probing"
    # Probes carry vector metadata but no payload once converged.
    assert all(m.payload_units == 0 for m in idle)
    assert all(m.metadata_units > 0 for m in idle)


def test_op_based_is_silent_once_ops_are_delivered():
    cluster = converged_cluster(ALGORITHMS["op-based"])
    assert all(m.payload_units == 0 for m in idle_tick(cluster))


def test_merkle_pays_one_root_digest_per_link():
    cluster = converged_cluster(MerkleSync)
    idle = idle_tick(cluster)
    links = sum(len(node.neighbors) for node in cluster.nodes)
    assert len(idle) == links
    assert all(m.payload_units == 0 and m.metadata_units == 1 for m in idle)


def test_quiescent_ordering_matches_the_design():
    """At rest: delta silence < digest probes < full states."""
    def idle_units(factory):
        cluster = converged_cluster(factory)
        return sum(m.total_units for m in idle_tick(cluster))

    delta = idle_units(ALGORITHMS["delta-based-bp-rr"])
    scuttlebutt = idle_units(ALGORITHMS["scuttlebutt"])
    state = idle_units(ALGORITHMS["state-based"])
    assert delta == 0
    assert 0 < scuttlebutt < state
