"""Property-based convergence tests across every synchronizer.

Strong eventual consistency is the contract every protocol must honour:
whatever the topology, update pattern, and interleaving, once updates
stop and synchronization keeps running, all replicas reach the same
state — and protocols that replay the same schedule agree on *which*
state.  Hypothesis explores random cluster sizes, topology families,
and update schedules.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lattice import MapLattice, MaxInt, SetLattice
from repro.sim.runner import run_experiment, run_suite
from repro.sim.topology import full_mesh, line, partial_mesh, ring, star, tree
from repro.sync import (
    OpBased,
    Scuttlebutt,
    ScuttlebuttGC,
    StateBased,
    classic,
    delta_bp,
    delta_bp_rr,
    delta_rr,
)
from repro.workloads.base import Workload

ALL = {
    "state-based": StateBased,
    "delta-based": classic,
    "delta-based-bp": delta_bp,
    "delta-based-rr": delta_rr,
    "delta-based-bp-rr": delta_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "scuttlebutt-gc": ScuttlebuttGC,
    "op-based": OpBased,
}

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class RandomSetWorkload(Workload):
    """A randomized GSet schedule: some nodes add, some stay silent."""

    name = "random-gset"

    def __init__(self, n_nodes, rounds, activity):
        super().__init__(n_nodes, rounds)
        self.activity = activity  # {(round, node): [elements]}

    def bottom(self):
        return SetLattice()

    def updates_for(self, round_index, node):
        elements = self.activity.get((round_index, node), [])

        def adder(state, batch=tuple(elements)):
            missing = [e for e in batch if e not in state]
            return SetLattice(missing) if missing else state.bottom_like()

        return (adder,) if elements else ()


@st.composite
def cluster_scenarios(draw):
    """A random topology plus a random sparse update schedule."""
    n = draw(st.integers(min_value=2, max_value=8))
    builders = [line, star, full_mesh]
    if n >= 3:
        builders.extend([ring, lambda k: tree(k, 2)])
    if n >= 5:
        builders.append(lambda k: partial_mesh(k, 2))
    topology = draw(st.sampled_from(builders))(n)
    rounds = draw(st.integers(min_value=1, max_value=5))
    activity = {}
    for r in range(rounds):
        for node in range(n):
            if draw(st.booleans()):
                count = draw(st.integers(min_value=1, max_value=3))
                activity[(r, node)] = [f"e-{r}-{node}-{i}" for i in range(count)]
    return topology, RandomSetWorkload(n, rounds, activity), activity


@given(cluster_scenarios(), st.sampled_from(sorted(ALL)))
@SLOW
def test_every_protocol_reaches_convergence(scenario, algorithm):
    topology, workload, activity = scenario
    result = run_experiment(ALL[algorithm], workload, topology)
    assert result.converged

    expected = {e for batch in activity.values() for e in batch}
    assert result.final_state_units == len(expected)


@given(cluster_scenarios())
@SLOW
def test_all_protocols_agree_on_final_state(scenario):
    topology, _, activity = scenario

    def fresh():
        n = topology.n
        rounds = max((r for r, _ in activity), default=0) + 1
        return RandomSetWorkload(n, rounds, activity)

    results = run_suite(ALL, fresh, topology)
    units = {r.final_state_units for r in results.values()}
    assert len(units) == 1


@given(cluster_scenarios())
@SLOW
def test_bp_rr_never_transmits_more_than_classic(scenario):
    """The optimizations only ever remove redundant state."""
    topology, _, activity = scenario

    def fresh():
        n = topology.n
        rounds = max((r for r, _ in activity), default=0) + 1
        return RandomSetWorkload(n, rounds, activity)

    results = run_suite(
        {"delta-based": classic, "delta-based-bp-rr": delta_bp_rr}, fresh, topology
    )
    assert (
        results["delta-based-bp-rr"].transmission_units()
        <= results["delta-based"].transmission_units()
    )


class RandomCounterWorkload(Workload):
    """Randomized per-node increments on a shared GCounter."""

    name = "random-gcounter"

    def __init__(self, n_nodes, rounds, increments):
        super().__init__(n_nodes, rounds)
        self.increments = increments  # {(round, node): amount}

    def bottom(self):
        return MapLattice()

    def updates_for(self, round_index, node):
        amount = self.increments.get((round_index, node), 0)
        if not amount:
            return ()

        def bump(state, by=amount, replica=node):
            current = state.get(replica)
            base = current.value if isinstance(current, MaxInt) else 0
            return MapLattice({replica: MaxInt(base + by)})

        return (bump,)


@st.composite
def counter_scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    topology = star(n) if draw(st.booleans()) else full_mesh(n)
    rounds = draw(st.integers(min_value=1, max_value=4))
    increments = {}
    for r in range(rounds):
        for node in range(n):
            amount = draw(st.integers(min_value=0, max_value=3))
            if amount:
                increments[(r, node)] = amount
    return topology, RandomCounterWorkload(n, rounds, increments), increments


@given(counter_scenarios(), st.sampled_from(sorted(ALL)))
@SLOW
def test_counter_value_preserved(scenario, algorithm):
    """Every protocol delivers exactly the sum of all increments."""
    topology, workload, increments = scenario
    result = run_experiment(ALL[algorithm], workload, topology)
    assert result.converged
    # Recover the converged counter value from a fresh replay.
    from repro.sim.network import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(topology), ALL[algorithm], workload.bottom())
    cluster.run_rounds(workload.rounds, workload.updates_for)
    cluster.drain()
    total = sum(
        entry.value for _, entry in cluster.nodes[0].state.items()
    )
    assert total == sum(increments.values())
