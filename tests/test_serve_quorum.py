"""Quorum-read semantics, at the pure level and on the in-process cluster.

The serving client's quorum read is two pure functions —
:func:`~repro.serve.client.join_replies` (the result is the join of the
``r`` replies) and :func:`~repro.serve.client.stale_repliers` (who gets
read repair) — tested here against hand-built lattices, divergent and
dominated alike.  Alongside them, the single-replica read they
generalize: ``KVCluster.value(read_replica=...)`` error paths, asserted
down to the message text the serving layer forwards to clients.
"""

from __future__ import annotations

import pytest

from repro.kv import HashRing, KVCluster, KVRoutingError, Unavailable
from repro.lattice import MaxInt, SetLattice
from repro.serve.client import KVClient, join_replies, stale_repliers
from repro.sync import keyed_bp_rr


class TestJoinReplies:
    def test_no_replies_is_none(self):
        assert join_replies([]) is None

    def test_all_unwritten_is_none(self):
        assert join_replies([None, None, None]) is None

    def test_single_reply_is_returned(self):
        reply = SetLattice(frozenset({"a"}))
        assert join_replies([reply]) == reply

    def test_none_replies_are_skipped(self):
        reply = SetLattice(frozenset({"a"}))
        assert join_replies([None, reply, None]) == reply

    def test_divergent_replies_join_to_dominate_both(self):
        left = SetLattice(frozenset({"a", "b"}))
        right = SetLattice(frozenset({"b", "c"}))
        joined = join_replies([left, right])
        assert joined == SetLattice(frozenset({"a", "b", "c"}))
        assert left.leq(joined) and right.leq(joined)

    def test_one_fresh_reply_wins_over_stale_quorum(self):
        # The quorum-overlap argument in miniature: as long as one
        # replier saw the write, the join sees it.
        stale = MaxInt(3)
        fresh = MaxInt(7)
        assert join_replies([stale, stale, fresh]) == MaxInt(7)


class TestStaleRepliers:
    def test_unwritten_key_repairs_nobody(self):
        assert stale_repliers([(0, None), (1, None)], None) == []

    def test_up_to_date_replier_is_not_repaired(self):
        value = SetLattice(frozenset({"x"}))
        assert stale_repliers([(0, value), (1, value)], value) == []

    def test_unwritten_replier_of_a_written_key_is_stale(self):
        value = SetLattice(frozenset({"x"}))
        assert stale_repliers([(0, value), (1, None)], value) == [1]

    def test_strictly_below_replier_is_stale(self):
        below = SetLattice(frozenset({"x"}))
        joined = SetLattice(frozenset({"x", "y"}))
        assert stale_repliers([(0, joined), (1, below)], joined) == [1]

    def test_divergent_repliers_are_both_stale(self):
        left = SetLattice(frozenset({"a"}))
        right = SetLattice(frozenset({"b"}))
        joined = join_replies([left, right])
        assert stale_repliers([(0, left), (1, right)], joined) == [0, 1]


class TestClientQuorumValidation:
    """Constructor guards: quorums bounded by the replication factor."""

    ADDRS = {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2), 2: ("127.0.0.1", 3)}

    def test_r_outside_replication_rejected(self):
        with pytest.raises(ValueError, match="read quorum"):
            KVClient(self.ADDRS, replication=3, r=4)
        with pytest.raises(ValueError, match="read quorum"):
            KVClient(self.ADDRS, replication=3, r=0)

    def test_w_outside_replication_rejected(self):
        with pytest.raises(ValueError, match="write quorum"):
            KVClient(self.ADDRS, replication=3, w=4)

    def test_unknown_route_rejected(self):
        with pytest.raises(ValueError, match="unknown read route"):
            KVClient(self.ADDRS, route="nearest")


class TestReadReplicaErrorPaths:
    """``KVCluster.value(read_replica=)``: the exact refusal messages.

    The serving layer forwards these messages verbatim over the wire
    (status ``ERR_ROUTING`` / ``ERR_INTERNAL``), so their content is
    part of the client-visible contract, not just a nicety.
    """

    def make(self):
        ring = HashRing(range(4), n_shards=8, replication=2)
        cluster = KVCluster(ring, keyed_bp_rr)
        cluster.update("set:pin", "add", "v")
        cluster.run_round(updates=None)
        cluster.drain()
        return ring, cluster

    def test_non_owner_names_replica_key_and_owners(self):
        ring, cluster = self.make()
        owners = ring.owners("set:pin")
        outsider = next(r for r in ring.replicas if r not in owners)
        with pytest.raises(KVRoutingError) as excinfo:
            cluster.value("set:pin", read_replica=outsider)
        message = str(excinfo.value)
        assert f"replica {outsider} does not own key 'set:pin'" in message
        assert str(list(owners)) in message

    def test_crashed_pin_is_unavailable_and_names_the_replica(self):
        ring, cluster = self.make()
        owner = ring.owners("set:pin")[0]
        cluster.crash(owner)
        with pytest.raises(Unavailable) as excinfo:
            cluster.value("set:pin", read_replica=owner)
        assert f"read replica {owner} of key 'set:pin' is down" in str(
            excinfo.value
        )
        # Unpinned reads stay available through the surviving owner.
        assert cluster.value("set:pin") == {"v"}

    def test_quorum_read_of_divergent_owners_is_their_join(self):
        # The cluster-level analogue of the client's quorum read: two
        # owners answer with divergent lattices; the client-side join
        # dominates both, while each single-replica read sees only its
        # own owner's state.
        ring, cluster = self.make()
        owners = ring.owners("set:pin")
        cluster.partition([owners[0]])
        cluster.update("set:pin", "add", "left")  # coordinator's side
        replies = [
            cluster.nodes[owner].value_lattice("set:pin") for owner in owners
        ]
        joined = join_replies(replies)
        assert joined is not None
        for reply in replies:
            assert reply is None or reply.leq(joined)
        from repro.kv.types import Schema

        read = Schema().spec_for("set:pin").read(joined)
        assert "left" in read and "v" in read


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
