"""Integration: causal CRDTs through every synchronization protocol.

The causal lattice implements the same interface as the grow-only
types, so all of Section V's protocols must replicate observed-remove
data unchanged.  These tests run scripted and randomized add/remove
workloads over the paper's topologies and assert global convergence,
no resurrection of removed elements, and the paper's transmission
ordering (BP+RR ≤ classic) — the Appendix B claim made executable.
"""

import random

import pytest

from repro.causal import AWSet, Causal, CCounter, EWFlag
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import full_mesh, partial_mesh, tree
from repro.sync import ALGORITHMS
from repro.sync.reliable import DeltaBasedAcked

PROTOCOLS = sorted(ALGORITHMS)


def run_awset_churn(factory, topology, rounds=6, seed=11, loss_rate=0.0):
    """Random adds/removes of a small element pool on every node."""
    config = ClusterConfig(topology=topology, loss_rate=loss_rate, loss_seed=seed)
    cluster = Cluster(config, factory, Causal.map_bottom())
    handles = [AWSet(node) for node in range(topology.n)]
    rng = random.Random(seed)
    elements = [f"e{i}" for i in range(10)]

    def updates_for(round_index, node):
        handle = handles[node]
        element = rng.choice(elements)
        if rng.random() < 0.65:
            return (lambda state, e=element, h=handle: h.add_delta(state, e),)
        return (lambda state, e=element, h=handle: h.remove_delta(state, e),)

    cluster.run_rounds(rounds, updates_for)
    cluster.drain()
    return cluster


# ---------------------------------------------------------------------------
# Convergence across all protocols and both paper topologies.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize(
    "topology", [partial_mesh(8, 4), tree(8, 3)], ids=["mesh", "tree"]
)
def test_awset_converges(protocol, topology):
    cluster = run_awset_churn(ALGORITHMS[protocol], topology)
    assert cluster.converged()
    for node in cluster.nodes:
        node.state.check_invariant()


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_all_protocols_reach_identical_awset(protocol):
    """Every protocol lands on the same final state for the same script."""
    reference = run_awset_churn(ALGORITHMS["state-based"], partial_mesh(8, 4))
    candidate = run_awset_churn(ALGORITHMS[protocol], partial_mesh(8, 4))
    assert candidate.nodes[0].state == reference.nodes[0].state


def test_ewflag_converges_under_toggling():
    topology = partial_mesh(8, 4)
    cluster = Cluster(
        ClusterConfig(topology=topology),
        ALGORITHMS["delta-based-bp-rr"],
        Causal.set_bottom(),
    )
    handles = [EWFlag(node) for node in range(topology.n)]
    rng = random.Random(3)

    def updates_for(round_index, node):
        handle = handles[node]
        if rng.random() < 0.5:
            return (lambda state, h=handle: h.enable_delta(state),)
        return (lambda state, h=handle: h.disable_delta(state),)

    cluster.run_rounds(6, updates_for)
    cluster.drain()
    assert cluster.converged()


def test_ccounter_converges_with_resets():
    topology = tree(8, 3)
    cluster = Cluster(
        ClusterConfig(topology=topology),
        ALGORITHMS["delta-based-bp-rr"],
        Causal.fun_bottom(),
    )
    handles = [CCounter(node) for node in range(topology.n)]
    rng = random.Random(5)

    def updates_for(round_index, node):
        handle = handles[node]
        if rng.random() < 0.85:
            return (lambda state, h=handle: h.increment_delta(state),)
        return (lambda state, h=handle: h.reset_delta(state),)

    cluster.run_rounds(6, updates_for)
    cluster.drain()
    assert cluster.converged()
    values = {
        sum(entry.value for entry in node.state.store.values())
        for node in cluster.nodes
    }
    assert len(values) == 1


# ---------------------------------------------------------------------------
# No resurrection: the regression RR's tombstone handling guards against.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fully_propagated_removal_stays_removed(protocol):
    """Add everywhere, sync, remove at one node, sync: gone everywhere.

    A synchronizer whose ``∆`` dropped tombstones against live remote
    dots would resurrect the element on some path through the mesh.
    """
    topology = partial_mesh(8, 4)
    cluster = Cluster(
        ClusterConfig(topology=topology), ALGORITHMS[protocol], Causal.map_bottom()
    )
    handles = [AWSet(node) for node in range(topology.n)]

    cluster.run_round(
        lambda node: (lambda state, h=handles[node]: h.add_delta(state, "victim"),)
    )
    cluster.drain()
    assert all("victim" in {k for k in node.state.store.keys()} for node in cluster.nodes)

    cluster.run_round(
        lambda node: (
            (lambda state, h=handles[0]: h.remove_delta(state, "victim"),)
            if node == 0
            else ()
        )
    )
    cluster.drain()
    assert cluster.converged()
    for node in cluster.nodes:
        assert "victim" not in {k for k in node.state.store.keys()}


# ---------------------------------------------------------------------------
# Transmission ordering (the paper's Figure 7 claim, on causal data).
# ---------------------------------------------------------------------------


def _total_units(cluster):
    return sum(record.total_units for record in cluster.metrics.messages)


def test_bp_rr_transmits_no_more_than_classic_on_mesh():
    topology = partial_mesh(8, 4)
    classic = run_awset_churn(ALGORITHMS["delta-based"], topology, rounds=8)
    best = run_awset_churn(ALGORITHMS["delta-based-bp-rr"], topology, rounds=8)
    assert _total_units(best) < _total_units(classic)


def test_rr_dominates_bp_on_mesh():
    """With cycles, RR must recover far more than BP alone (Section V-B)."""
    topology = partial_mesh(8, 4)
    bp_only = run_awset_churn(ALGORITHMS["delta-based-bp"], topology, rounds=8)
    rr_only = run_awset_churn(ALGORITHMS["delta-based-rr"], topology, rounds=8)
    assert _total_units(rr_only) < _total_units(bp_only)


def test_classic_tracks_state_based_on_mesh():
    """The paper's headline anomaly holds for causal payloads too."""
    topology = partial_mesh(8, 4)
    state_based = run_awset_churn(ALGORITHMS["state-based"], topology, rounds=8)
    classic = run_awset_churn(ALGORITHMS["delta-based"], topology, rounds=8)
    ratio = _total_units(classic) / _total_units(state_based)
    assert ratio > 0.8  # no better than state-based, within noise


# ---------------------------------------------------------------------------
# Lossy channels: the acked δ-buffer carries causal states too.
# ---------------------------------------------------------------------------


def test_acked_delta_sync_converges_under_loss():
    def factory(replica, neighbors, bottom, n_nodes, size_model):
        return DeltaBasedAcked(replica, neighbors, bottom, n_nodes, size_model)

    topology = partial_mesh(8, 4)
    cluster = run_awset_churn(factory, topology, rounds=6, loss_rate=0.2)
    assert cluster.converged()
    assert cluster.messages_dropped > 0


def test_full_mesh_needs_no_relaying():
    """On a complete graph every protocol converges in one drain round."""
    topology = full_mesh(5)
    cluster = run_awset_churn(ALGORITHMS["delta-based-bp-rr"], topology, rounds=3)
    assert cluster.converged()
