"""Round-trip tests for the wire message-envelope codec.

Two layers of evidence that :func:`repro.codec.encode_message` /
:func:`decode_message` faithfully carry every message the protocols
emit:

* **construction** — one handcrafted representative per wire kind in
  :data:`repro.codec.WIRE_KINDS`, checked for payload equality, unit
  preservation, and the byte-accounting invariants (``total_bytes ==
  len(envelope)``; for lattice payloads, the payload section is exactly
  the lattice codec's bytes);
* **emission** — every synchronization protocol (and the kv store with
  both repair modes, exercising the three ``kv-*`` repair kinds plus
  the shard framing) is run on a simulated cluster whose transport
  encodes and decodes *every* message before delivery.  Convergence to
  the same state as the un-encoded run proves the decoded payloads are
  semantically identical, not merely equal-looking.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    WIRE_KINDS,
    CodecError,
    UnsupportedType,
    decode_message,
    encode,
    encode_message,
    frame_message,
)
from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.cluster import KVCluster
from repro.kv.ring import HashRing
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt
from repro.lattice.set_lattice import SetLattice
from repro.net.sim import SimTransport
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import full_mesh, partial_mesh
from repro.sync import ALGORITHMS, MerkleSync, delta_acked_factory, keyed_bp_rr
from repro.sync.opbased import OpEnvelope
from repro.sync.protocol import Message, Send
from repro.workloads import GSetWorkload
from repro.workloads.kv import KVZipfWorkload

from tests.conftest import ALL_LATTICE_STRATEGIES


def roundtrip(message: Message) -> Message:
    return decode_message(encode_message(message))


def make_message(kind, payload, payload_units=3, metadata_units=2) -> Message:
    """Model byte fields are arbitrary here: the wire carries measures."""
    return Message(
        kind=kind,
        payload=payload,
        payload_units=payload_units,
        payload_bytes=111,
        metadata_bytes=222,
        metadata_units=metadata_units,
    )


def _fp(text: str) -> bytes:
    return hashlib.blake2b(text.encode(), digest_size=8).digest()


_INNER_STATE = make_message("state", SetLattice({"a", "b"}))
_INNER_DELTA = make_message("delta", MapLattice({"k": MaxInt(4)}))

#: One representative payload per wire kind.
REPRESENTATIVES = {
    "state": SetLattice({"x", "y", "z"}),
    "delta": MapLattice({"k1": MaxInt(3), "k2": SetLattice({"a"})}),
    "keyed-delta": MapLattice({"obj": SetLattice({"e1", "e2"})}),
    "digest": {0: 3, 2: 7, 5: 1},
    "deltas": [((0, 1), SetLattice({"a"})), ((2, 4), MaxInt(9))],
    "ops": [
        OpEnvelope(origin=0, seq=1, clock={0: 1}, payload=SetLattice({"a"})),
        OpEnvelope(origin=2, seq=3, clock={0: 1, 2: 3}, payload=MaxInt(5)),
    ],
    "delta-seq": (SetLattice({"a", "b"}), (1, 2, 5)),
    "delta-ack": (3, 4, 7),
    "mt-node": (("", b"d" * 20), ("a3", b"e" * 20)),
    "mt-leaves": (("a", ((b"h" * 20, encode(MaxInt(3))),)),),
    "mt-leaves-final": (
        ("0", ((b"i" * 20, encode(SetLattice({"q"}))),)),
        ("f", ()),
    ),
    "kv-digest": b"r" * 16,
    "kv-diff": frozenset({_fp("one"), _fp("two")}),
    "kv-repair": (MapLattice({"k": MaxInt(2)}), frozenset({_fp("echo")})),
    "kv-shard": (3, _INNER_STATE),
    "kv-batch": ((1, _INNER_STATE), (5, _INNER_DELTA)),
    "kv-handoff-offer": (b"r" * 16, 512),
    "kv-handoff-segment": (encode(SetLattice({"a"})), encode(MaxInt(7))),
    "kv-handoff-ack": (True, b"r" * 16),
}

#: Kinds whose payload object is pure lattice content.
LATTICE_KINDS = ("state", "delta", "keyed-delta")


class TestEveryKindRoundTrips:
    def test_registry_is_fully_covered(self):
        assert set(REPRESENTATIVES) == set(WIRE_KINDS)

    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVES))
    def test_payload_survives(self, kind):
        message = make_message(kind, REPRESENTATIVES[kind])
        decoded = roundtrip(message)
        assert decoded.kind == kind
        if kind in ("kv-shard", "kv-batch"):
            # Nested messages come back with *measured* byte fields, so
            # compare the semantic content (shard routing, inner kind,
            # inner payload, units), not dataclass equality.
            entries = (
                [decoded.payload] if kind == "kv-shard" else list(decoded.payload)
            )
            originals = (
                [message.payload] if kind == "kv-shard" else list(message.payload)
            )
            for (shard, inner), (want_shard, want_inner) in zip(entries, originals):
                assert shard == want_shard
                assert inner.kind == want_inner.kind
                assert inner.payload == want_inner.payload
                assert inner.payload_units == want_inner.payload_units
                assert inner.metadata_units == want_inner.metadata_units
        else:
            assert decoded.payload == message.payload

    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVES))
    def test_units_travel_verbatim(self, kind):
        message = make_message(
            kind, REPRESENTATIVES[kind], payload_units=17, metadata_units=9
        )
        decoded = roundtrip(message)
        assert decoded.payload_units == 17
        assert decoded.metadata_units == 9

    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVES))
    def test_measured_sizes_cover_the_envelope(self, kind):
        """payload + metadata == exactly what crosses the wire."""
        message = make_message(kind, REPRESENTATIVES[kind])
        frame = frame_message(message)
        decoded = decode_message(frame.data)
        assert decoded.total_bytes == len(frame.data)
        assert decoded.payload_bytes == frame.payload_bytes
        assert decoded.metadata_bytes == frame.metadata_bytes

    @pytest.mark.parametrize("kind", LATTICE_KINDS)
    def test_lattice_payload_section_is_the_lattice_codec(self, kind):
        """For lattice payloads the payload bytes are exactly
        ``len(encode(payload))`` — no hidden framing in the payload
        share of the measured split."""
        payload = REPRESENTATIVES[kind]
        frame = frame_message(make_message(kind, payload))
        assert frame.payload_bytes == len(encode(payload))
        decoded = decode_message(frame.data)
        assert decoded.payload_bytes == len(encode(payload))

    def test_metadata_only_kinds_measure_zero_payload(self):
        """Digests, vectors, acks, and probes are pure metadata on the
        wire, matching the paper's payload/metadata split."""
        for kind in ("digest", "delta-ack", "mt-node", "kv-digest", "kv-diff"):
            frame = frame_message(make_message(kind, REPRESENTATIVES[kind]))
            assert frame.payload_bytes == 0, kind

    def test_gc_digest_variant(self):
        payload = {
            "vector": {0: 4, 1: 2},
            "knowledge": {0: {0: 4, 1: 1}, 1: {}, 2: {0: 3}},
        }
        decoded = roundtrip(make_message("digest", payload))
        assert decoded.payload == payload

    def test_kv_repair_without_echo(self):
        decoded = roundtrip(
            make_message("kv-repair", (MapLattice({"k": MaxInt(1)}), None))
        )
        assert decoded.payload == (MapLattice({"k": MaxInt(1)}), None)

    def test_nested_batch_preserves_inner_kinds_and_units(self):
        decoded = roundtrip(make_message("kv-batch", REPRESENTATIVES["kv-batch"]))
        (shard_a, inner_a), (shard_b, inner_b) = decoded.payload
        assert (shard_a, shard_b) == (1, 5)
        assert inner_a.kind == "state" and inner_a.payload == _INNER_STATE.payload
        assert inner_b.kind == "delta" and inner_b.payload == _INNER_DELTA.payload
        assert inner_a.payload_units == _INNER_STATE.payload_units


class TestErrors:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(UnsupportedType):
            encode_message(make_message("carrier-pigeon", SetLattice()))

    def test_truncated_envelope(self):
        data = encode_message(make_message("state", SetLattice({"a"})))
        with pytest.raises(CodecError):
            decode_message(data[:-1])

    def test_trailing_bytes(self):
        data = encode_message(make_message("state", SetLattice({"a"})))
        with pytest.raises(CodecError):
            decode_message(data + b"\x00")

    def test_junk_is_a_codec_error(self):
        with pytest.raises(CodecError):
            decode_message(b"\xff\xff\xff\xff")


@given(
    family=st.sampled_from(
        sorted(set(ALL_LATTICE_STRATEGIES) - {"MaxElements"})
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_arbitrary_lattice_payloads_roundtrip(family, data):
    """Property: any encodable lattice rides any lattice-payload kind."""
    value = data.draw(ALL_LATTICE_STRATEGIES[family])
    kind = data.draw(st.sampled_from(LATTICE_KINDS))
    frame = frame_message(make_message(kind, value))
    decoded = decode_message(frame.data)
    assert decoded.payload == value
    assert frame.payload_bytes == len(encode(value))
    assert decoded.total_bytes == len(frame.data)


# ---------------------------------------------------------------------------
# Emission coverage: every protocol, through the codec, still converges.
# ---------------------------------------------------------------------------


class CodecRoundtripTransport(SimTransport):
    """A sim transport that ships every message through the wire codec.

    Each outbound message is encoded and decoded before dispatch, so
    protocols receive exactly what a real socket would hand them.  The
    kinds observed are recorded for coverage assertions.
    """

    def __init__(self, config, metrics):
        super().__init__(config, metrics)
        self.kinds_seen = set()

    def send(self, src, sends):
        reencoded = []
        for send in sends:
            self._note_kinds(send.message)
            reencoded.append(
                Send(dst=send.dst, message=decode_message(encode_message(send.message)))
            )
        super().send(src, reencoded)

    def _note_kinds(self, message):
        self.kinds_seen.add(message.kind)
        if message.kind in ("kv-shard",):
            self.kinds_seen.add(message.payload[1].kind)
        if message.kind in ("kv-batch",):
            for _, inner in message.payload:
                self.kinds_seen.add(inner.kind)


PROTOCOLS = dict(ALGORITHMS)
PROTOCOLS["merkle"] = MerkleSync
PROTOCOLS["delta-based-acked"] = delta_acked_factory

EXPECTED_KINDS = {
    "state-based": {"state"},
    "delta-based": {"delta"},
    "delta-based-bp": {"delta"},
    "delta-based-rr": {"delta"},
    "delta-based-bp-rr": {"delta"},
    "scuttlebutt": {"digest", "deltas"},
    "scuttlebutt-gc": {"digest", "deltas"},
    "op-based": {"ops"},
    "merkle": {"mt-node", "mt-leaves"},
    "delta-based-acked": {"delta-seq", "delta-ack"},
}


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_protocol_converges_through_the_codec(name):
    topology = partial_mesh(5, 2)
    workload = GSetWorkload(5, rounds=4)

    def run(transport):
        cluster = Cluster(
            ClusterConfig(topology), PROTOCOLS[name], workload.bottom(), transport
        )
        cluster.run_rounds(workload.rounds, workload.updates_for)
        cluster.drain()
        assert cluster.converged()
        return cluster

    plain = run("sim")
    wired = CodecRoundtripTransport(
        ClusterConfig(topology), MetricsCollector(topology.n)
    )
    through = run(wired)
    assert through.nodes[0].state == plain.nodes[0].state
    assert EXPECTED_KINDS[name] <= wired.kinds_seen


@pytest.mark.parametrize("repair_mode", ["blanket", "digest"])
def test_kv_store_converges_through_the_codec(repair_mode):
    """The shard framing and all three kv-* repair kinds cross the codec."""
    ring = HashRing(range(6), n_shards=12, replication=2)
    workload = KVZipfWorkload(ring, 9, 3, keys=60, zipf_coefficient=1.0, seed=5)
    antientropy = AntiEntropyConfig(
        repair_interval=3, repair_fanout=8, repair_mode=repair_mode
    )
    config = ClusterConfig(full_mesh(6))
    wired = CodecRoundtripTransport(config, MetricsCollector(6))
    cluster = KVCluster(
        ring, keyed_bp_rr, antientropy=antientropy, config=config, transport=wired
    )
    phase = 3
    updates = workload.updates_for
    cluster.run_rounds(phase, updates)
    cluster.partition(range(3))
    for round_index in range(phase, 2 * phase):
        cluster.run_round(lambda node, r=round_index: updates(r, node))
    cluster.heal()
    cluster.crash(5, lose_state=True)
    for round_index in range(2 * phase, workload.rounds):
        cluster.run_round(lambda node, r=round_index: updates(r, node))
    cluster.recover(5)
    cluster.drain()
    assert cluster.converged()
    assert "kv-repair" in wired.kinds_seen
    if repair_mode == "digest":
        assert {"kv-digest", "kv-diff"} <= wired.kinds_seen
    assert {"kv-batch"} <= wired.kinds_seen or {"kv-shard"} <= wired.kinds_seen
