"""WAL invariants: replay = join, compaction = join, torn tails drop.

The write-ahead log's correctness rests on lattice algebra, so the
load-bearing guarantees are property-tested across every serializable
lattice family:

* **replay** — ``replay(log) == ⊔ appended deltas``: the log is a
  complete representation of the state, whatever order and granularity
  the deltas arrived in;
* **compaction** — ``replay(compact(log)) == replay(log)``: folding the
  records into the single record of their join loses nothing, because
  compaction *is* the join;
* **durability boundary** — group commit means staged records are
  invisible to replay until committed and gone after a crash
  (``discard_staged``); a committed batch torn mid-write (truncated or
  bit-flipped tail) is detected by the record CRCs, dropped cleanly,
  and never poisons later appends;
* **crash-mid-compaction** — the atomic-replace contract: recovery
  after a compaction that died before its rename replays the original
  records.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import encode
from repro.lattice import MapLattice, SetLattice
from repro.wal import (
    FileStorage,
    MemoryStorage,
    ReplicaWal,
    ShardLog,
    WalConfig,
    pack_record,
    unpack_records,
)

from conftest import ALL_LATTICE_STRATEGIES

#: MaxElements has no wire format (its order is an arbitrary function).
SERIALIZABLE_FAMILIES = sorted(set(ALL_LATTICE_STRATEGIES) - {"MaxElements"})


def delta_batches(family):
    """1-8 deltas of one family — a shard's worth of WAL appends."""
    return st.lists(ALL_LATTICE_STRATEGIES[family], min_size=1, max_size=8)


def join_all(deltas):
    state = deltas[0]
    for delta in deltas[1:]:
        state = state.join(delta)
    return state


# ---------------------------------------------------------------------------
# Replay and compaction properties, per lattice family.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", SERIALIZABLE_FAMILIES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_replay_is_the_join_of_appended_deltas(family, data):
    deltas = data.draw(delta_batches(family))
    wal = ReplicaWal(0)
    for delta in deltas:
        wal.append(7, delta)
    wal.commit()
    assert wal.replay(7) == join_all(deltas)


@pytest.mark.parametrize("family", SERIALIZABLE_FAMILIES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_compaction_preserves_replay(family, data):
    """The acceptance property: replay(compact(log)) == replay(log)."""
    deltas = data.draw(delta_batches(family))
    wal = ReplicaWal(0, config=WalConfig(compact_bytes=None))
    for delta in deltas:
        wal.append(3, delta)
    wal.commit()
    before = wal.replay(3)
    wal.compact(3)
    assert wal.replay(3) == before
    # Idempotent: compacting a compacted log changes nothing.
    wal.compact(3)
    assert wal.replay(3) == before


@pytest.mark.parametrize("family", SERIALIZABLE_FAMILIES)
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_replay_order_and_batching_are_irrelevant(family, data):
    """One commit per delta == one commit for all deltas == reversed."""
    deltas = data.draw(delta_batches(family))
    batched, unbatched, reversed_ = ReplicaWal(0), ReplicaWal(1), ReplicaWal(2)
    for delta in deltas:
        batched.append(0, delta)
        unbatched.append(0, delta)
        unbatched.commit()
    for delta in reversed(deltas):
        reversed_.append(0, delta)
    batched.commit()
    reversed_.commit()
    assert batched.replay(0) == unbatched.replay(0) == reversed_.replay(0)


# ---------------------------------------------------------------------------
# Group commit: the durability boundary.
# ---------------------------------------------------------------------------


class TestGroupCommit:
    def test_staged_records_are_invisible_until_commit(self):
        wal = ReplicaWal(0)
        wal.append(0, SetLattice({"a"}))
        assert wal.replay(0) is None
        wal.commit()
        assert wal.replay(0) == SetLattice({"a"})

    def test_discard_staged_is_the_crash_boundary(self):
        wal = ReplicaWal(0)
        wal.append(0, SetLattice({"durable"}))
        wal.commit()
        wal.append(0, SetLattice({"lost"}))
        assert wal.discard_staged() == 1
        wal.commit()
        assert wal.replay(0) == SetLattice({"durable"})
        assert wal.stats()["wal_discarded_records"] == 1

    def test_commit_batches_one_append_per_shard(self):
        storage = MemoryStorage()
        wal = ReplicaWal(0, storage=storage)
        for i in range(5):
            wal.append(1, SetLattice({f"e{i}"}))
        wal.commit()
        assert wal.log(1).commits == 1
        assert wal.log(1).records_committed == 5

    def test_shards_have_independent_logs(self):
        wal = ReplicaWal(0)
        wal.append(0, SetLattice({"zero"}))
        wal.append(1, SetLattice({"one"}))
        wal.commit()
        assert wal.replay(0) == SetLattice({"zero"})
        assert wal.replay(1) == SetLattice({"one"})


# ---------------------------------------------------------------------------
# Torn and corrupt tails.
# ---------------------------------------------------------------------------


class TestCorruptTail:
    def committed(self, *elements):
        wal = ReplicaWal(0)
        for element in elements:
            wal.append(0, SetLattice({element}))
        wal.commit()
        return wal, wal.log(0)

    def test_truncated_tail_record_is_dropped(self):
        wal, log = self.committed("a", "b", "c")
        image = wal.storage.read(log.name)
        wal.storage.replace(log.name, image[:-3])  # tear the last record
        log._size = None
        assert wal.replay(0) == SetLattice({"a", "b"})
        assert log.corrupt_tails_dropped == 1

    def test_bit_flip_in_tail_is_caught_by_crc(self):
        wal, log = self.committed("a", "b")
        image = bytearray(wal.storage.read(log.name))
        image[-5] ^= 0xFF  # flip a byte inside the last record body
        wal.storage.replace(log.name, bytes(image))
        log._size = None
        assert wal.replay(0) == SetLattice({"a"})
        assert log.corrupt_tails_dropped == 1

    def test_junk_appended_after_commit_is_dropped(self):
        wal, log = self.committed("a")
        wal.storage.append(log.name, b"\x07garbage")
        assert wal.replay(0) == SetLattice({"a"})

    def test_truncation_repairs_the_log_for_future_appends(self):
        """The corrupt tail is physically removed, so later commits
        never chain records onto junk bytes."""
        wal, log = self.committed("a", "b")
        wal.storage.append(log.name, b"torn!")
        assert wal.replay(0) == SetLattice({"a", "b"})
        wal.append(0, SetLattice({"c"}))
        wal.commit()
        assert wal.replay(0) == SetLattice({"a", "b", "c"})
        assert log.corrupt_tails_dropped == 1

    def test_unpack_reports_the_clean_prefix(self):
        records = pack_record(b"one") + pack_record(b"two")
        bodies, clean, corrupt = unpack_records(records + b"\xff")
        assert bodies == [b"one", b"two"]
        assert clean == len(records)
        assert corrupt
        bodies, clean, corrupt = unpack_records(records)
        assert bodies == [b"one", b"two"] and not corrupt

    def test_commit_over_an_inherited_torn_tail_truncates_first(self):
        """A reopened log with a torn tail is repaired before the first
        append — otherwise the new (CRC-valid) records would sit behind
        junk that no replay can cross, silently losing them."""
        wal, log = self.committed("a")
        wal.storage.append(log.name, b"torn-by-previous-process")

        reopened = ReplicaWal(0, storage=wal.storage)
        reopened.append(0, SetLattice({"b"}))
        reopened.commit()  # must truncate the junk before appending
        assert reopened.replay(0) == SetLattice({"a", "b"})
        assert reopened.log(0).corrupt_tails_dropped == 1

    def test_crc_valid_but_undecodable_record_ends_the_prefix(self):
        """A record that passes its checksum but no longer decodes must
        drop like a torn tail, not abort crash recovery."""
        wal, log = self.committed("a", "b")
        wal.storage.append(log.name, pack_record(b"\x99not-a-lattice"))
        wal.append(0, SetLattice({"after"}))
        wal.commit()  # commits behind the bad record
        assert wal.replay(0) == SetLattice({"a", "b"})  # prefix only
        assert log.corrupt_tails_dropped == 1
        # The bad record (and what sat behind it) was truncated away, so
        # later commits land on a clean image again.
        wal.append(0, SetLattice({"c"}))
        wal.commit()
        assert wal.replay(0) == SetLattice({"a", "b", "c"})

    def test_reopen_over_an_undecodable_record_truncates_before_append(self):
        """Tail validation uses replay's boundary (decodability, not
        just CRC), so a commit after reopen never lands behind a record
        the next replay would reject."""
        wal, log = self.committed("a", "b")
        wal.storage.append(log.name, pack_record(b"\x99not-a-lattice"))

        reopened = ReplicaWal(0, storage=wal.storage)
        reopened.append(0, SetLattice({"after-reopen"}))
        reopened.commit()
        assert reopened.replay(0) == SetLattice({"a", "b", "after-reopen"})
        assert reopened.log(0).corrupt_tails_dropped == 1

    def test_whole_log_corrupt_replays_to_nothing(self):
        wal, log = self.committed("a")
        wal.storage.replace(log.name, b"\x99\x99\x99")
        log._size = None
        assert wal.replay(0) is None
        assert wal.storage.read(log.name) == b""


# ---------------------------------------------------------------------------
# Compaction mechanics and crash-safety.
# ---------------------------------------------------------------------------


class TestCompaction:
    def test_threshold_triggers_compaction_on_commit(self):
        wal = ReplicaWal(0, config=WalConfig(compact_bytes=64))
        for i in range(12):
            wal.append(0, SetLattice({f"element-{i}"}))
        wal.commit()
        log = wal.log(0)
        assert log.compactions >= 1
        assert log.size_bytes() <= log.committed_bytes
        assert wal.replay(0) == SetLattice({f"element-{i}" for i in range(12)})

    def test_compaction_shrinks_redundant_logs(self):
        """Overlapping deltas (the common case: RR extraction off, or
        repeated repair absorptions) fold into one small image."""
        wal = ReplicaWal(0, config=WalConfig(compact_bytes=None))
        for _ in range(20):
            wal.append(0, MapLattice({"k": SetLattice({"v"})}))
        wal.commit()
        log = wal.log(0)
        before = log.size_bytes()
        assert wal.compact(0)
        assert log.size_bytes() < before
        assert wal.replay(0) == MapLattice({"k": SetLattice({"v"})})

    def test_compacting_an_empty_log_is_a_noop(self):
        wal = ReplicaWal(0)
        assert not wal.compact(0)

    def test_compaction_attempts_amortize_once_the_state_outgrows_the_threshold(
        self, monkeypatch
    ):
        """A joined image larger than the threshold must not trigger a
        fresh decode-join-encode on every subsequent commit; the
        trigger waits until the log doubles past the last image."""
        elements = {f"element-{i:04d}" for i in range(30)}
        wal = ReplicaWal(0, config=WalConfig(compact_bytes=64))
        for element in sorted(elements):
            wal.append(0, SetLattice({element}))
        wal.commit()
        log = wal.log(0)
        assert log.compactions == 1  # folded once on the way in...
        assert log.size_bytes() > 64  # ...and the image stays oversized
        assert log._compact_floor == log.size_bytes()

        attempts = []
        original = ShardLog.compact
        monkeypatch.setattr(
            ShardLog, "compact", lambda s: (attempts.append(1), original(s))[1]
        )
        wal.append(0, SetLattice({"one-more"}))
        wal.commit()
        assert attempts == []  # below 2× the image: no re-derivation
        assert wal.replay(0) == SetLattice(elements | {"one-more"})

    def test_crash_mid_compaction_replays_the_original(self, tmp_path):
        """A compaction that died before its atomic rename leaves the
        temp file behind and the original records intact; recovery
        ignores the temp file and replays the full log."""
        storage = FileStorage(str(tmp_path))
        wal = ReplicaWal(0, storage=storage, config=WalConfig(compact_bytes=None))
        deltas = [SetLattice({f"e{i}"}) for i in range(6)]
        for delta in deltas:
            wal.append(0, delta)
        wal.commit()
        name = wal.log(0).name
        # Simulate the crash: the compacted image was fully written to
        # the temp file, but the process died before os.replace.
        compacted = pack_record(encode(wal.replay(0)))
        (tmp_path / (name + ".tmp")).write_bytes(compacted)

        recovered = ReplicaWal(0, storage=FileStorage(str(tmp_path)))
        state = recovered.replay(0)
        assert state == SetLattice({f"e{i}" for i in range(6)})
        assert recovered.log(0).records_committed == 0  # reopened, not rewritten
        # And the interrupted compaction can simply run again.
        assert recovered.compact(0)
        assert recovered.replay(0) == state


# ---------------------------------------------------------------------------
# Storage backends.
# ---------------------------------------------------------------------------


class TestStorage:
    def test_file_storage_survives_reopen(self, tmp_path):
        first = ReplicaWal(4, storage=FileStorage(str(tmp_path)))
        first.append(2, SetLattice({"x"}))
        first.append(9, MapLattice({"k": SetLattice({"y"})}))
        first.commit()

        second = ReplicaWal(4, storage=FileStorage(str(tmp_path)))
        assert second.replay(2) == SetLattice({"x"})
        assert second.replay(9) == MapLattice({"k": SetLattice({"y"})})

    def test_file_storage_hides_temp_files(self, tmp_path):
        storage = FileStorage(str(tmp_path))
        storage.append("a.wal", b"data")
        (tmp_path / "b.wal.tmp").write_bytes(b"half-written")
        assert storage.names() == ("a.wal",)

    def test_file_storage_rejects_traversal_names(self, tmp_path):
        storage = FileStorage(str(tmp_path))
        for bad in ("../escape", "", ".hidden", "a/b"):
            with pytest.raises(ValueError):
                storage.read(bad)

    def test_memory_storage_replace_and_remove(self):
        storage = MemoryStorage()
        storage.append("log", b"one")
        storage.append("log", b"two")
        assert storage.read("log") == b"onetwo"
        storage.replace("log", b"three")
        assert storage.read("log") == b"three"
        storage.remove("log")
        assert storage.read("log") == b""
        assert storage.names() == ()

    def test_missing_name_reads_empty(self, tmp_path):
        assert MemoryStorage().read("nope") == b""
        assert FileStorage(str(tmp_path)).read("nope.wal") == b""


class TestConfig:
    def test_compact_threshold_validated(self):
        with pytest.raises(ValueError, match="compact_bytes"):
            WalConfig(compact_bytes=0)

    def test_shard_log_repr_and_size_cache(self):
        log = ShardLog(MemoryStorage(), "r000-s00000.wal")
        assert "r000-s00000.wal" in repr(log)
        assert log.size_bytes() == 0
