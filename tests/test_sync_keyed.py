"""Tests for per-object (keyed) delta-based synchronization."""

import pytest

from repro.lattice import MapLattice, SetLattice
from repro.sim.runner import run_experiment, run_suite
from repro.sim.topology import partial_mesh
from repro.sizes import SizeModel
from repro.sync.keyed import (
    KeyedDeltaBased,
    keyed_bp,
    keyed_bp_rr,
    keyed_classic,
    keyed_rr,
)
from repro.sync.protocol import Message
from repro.workloads import RetwisWorkload
from repro.workloads.base import Workload

MODEL = SizeModel()


def store_add(key, element):
    """δ-mutator: add ``element`` to the set object under ``key``."""

    def mutator(state):
        current = state.get(key)
        if isinstance(current, SetLattice) and element in current:
            return state.bottom_like()
        return MapLattice({key: SetLattice((element,))})

    return mutator


def make(replica, neighbors, **flags):
    return KeyedDeltaBased(
        replica, neighbors, MapLattice(), n_nodes=4, size_model=MODEL, **flags
    )


def bundle(entries):
    payload = MapLattice(entries)
    return Message(
        "keyed-delta",
        payload,
        payload.size_units(),
        payload.size_bytes(MODEL),
        MODEL.int_bytes,
        1,
    )


class TestKeyedMechanics:
    def test_requires_map_state(self):
        with pytest.raises(TypeError):
            KeyedDeltaBased(0, [1], SetLattice(), 2, MODEL)

    def test_local_update_splits_per_object(self):
        node = make(0, [1])

        def multi(state):
            return MapLattice({"a": SetLattice({"x"}), "b": SetLattice({"y"})})

        node.local_update(multi)
        assert len(node.buffer) == 2
        assert {key for key, _, _ in node.buffer} == {"a", "b"}

    def test_sync_bundles_objects(self):
        node = make(0, [1])
        node.local_update(store_add("a", "x"))
        node.local_update(store_add("b", "y"))
        [send] = node.sync_messages()
        assert send.message.payload == MapLattice(
            {"a": SetLattice({"x"}), "b": SetLattice({"y"})}
        )
        assert not node.buffer

    def test_classic_check_is_per_object(self):
        """A dominated object is dropped even when others inflate."""
        node = make(0, [1])
        node.local_update(store_add("cold", "x"))
        node.sync_messages()
        incoming = bundle(
            {"cold": SetLattice({"x"}), "hot": SetLattice({"new"})}
        )
        node.handle_message(1, incoming)
        assert len(node.buffer) == 1
        key, delta, origin = node.buffer[0]
        assert key == "hot"
        assert origin == 1

    def test_classic_keeps_whole_object_group(self):
        """Within one object the classic check is still all-or-nothing."""
        node = make(0, [1])
        node.local_update(store_add("obj", "x"))
        node.sync_messages()
        node.handle_message(1, bundle({"obj": SetLattice({"x", "y"})}))
        _, delta, _ = node.buffer[0]
        assert delta == SetLattice({"x", "y"})  # x re-buffered redundantly

    def test_rr_extracts_within_object(self):
        node = make(0, [1], rr=True)
        node.local_update(store_add("obj", "x"))
        node.sync_messages()
        node.handle_message(1, bundle({"obj": SetLattice({"x", "y"})}))
        _, delta, _ = node.buffer[0]
        assert delta == SetLattice({"y"})

    def test_bp_filters_origin(self):
        node = make(0, [1, 2], bp=True)
        node.handle_message(1, bundle({"obj": SetLattice({"x"})}))
        sends = node.sync_messages()
        assert {send.dst for send in sends} == {2}

    def test_factories(self):
        for factory, bp, rr in (
            (keyed_classic, False, False),
            (keyed_bp, True, False),
            (keyed_rr, False, True),
            (keyed_bp_rr, True, True),
        ):
            node = factory(0, [1], MapLattice(), 2, MODEL)
            assert (node.bp, node.rr) == (bp, rr)

    def test_memory_accounting_counts_keys(self):
        node = make(0, [1], bp=True)
        node.local_update(store_add("obj", "abcd"))
        assert node.buffer_units() == 1
        assert node.buffer_bytes() == 3 + 4  # "obj" + "abcd"
        assert node.metadata_units() == 1 + 1


class MultiObjectWorkload(Workload):
    """Two nodes repeatedly updating a hot object plus cold objects."""

    name = "multi-object"

    def __init__(self, n_nodes, rounds):
        super().__init__(n_nodes, rounds)

    def bottom(self):
        return MapLattice()

    def updates_for(self, round_index, node):
        return (
            store_add("hot", f"h-{round_index}-{node}"),
            store_add(f"cold-{node}", f"c-{round_index}-{node}"),
        )


class TestKeyedConvergence:
    def test_all_variants_converge(self):
        topo = partial_mesh(6, 2)
        for factory in (keyed_classic, keyed_bp, keyed_rr, keyed_bp_rr):
            result = run_experiment(factory, MultiObjectWorkload(6, 5), topo)
            assert result.converged
            assert result.final_state_units == 2 * 6 * 5

    def test_retwis_contention_hits_classic_not_bprr(self):
        """Per-object classic degrades with same-object concurrency."""
        topo = partial_mesh(6, 2)
        results = run_suite(
            {"classic": keyed_classic, "bp-rr": keyed_bp_rr},
            lambda: MultiObjectWorkload(6, 6),
            topo,
        )
        assert (
            results["classic"].transmission_units()
            > results["bp-rr"].transmission_units()
        )

    def test_retwis_workload_end_to_end(self):
        topo = partial_mesh(6, 2)
        workload = RetwisWorkload(6, users=50, rounds=5, ops_per_node=3, seed=3)
        result = run_experiment(keyed_bp_rr, workload, topo)
        assert result.converged
