"""Determinism: identical runs produce identical measurements.

EXPERIMENTS.md promises that every driver is reproducible — same
seeds, same topology, same schedule ⇒ same tables.  These tests pin
that promise at the cluster level (message-by-message) and at the
experiment level (the quantities the paper plots), for protocols with
and without randomized inputs (message loss).
"""

from repro.causal import Causal
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.runner import run_experiment
from repro.sim.topology import partial_mesh
from repro.sync import ALGORITHMS
from repro.sync.reliable import delta_acked_factory
from repro.workloads import AWSetChurnWorkload, GSetWorkload


def _message_trace(cluster):
    return [
        (m.time, m.src, m.dst, m.kind, m.payload_units, m.metadata_units)
        for m in cluster.metrics.messages
    ]


def _run_churn_cluster(loss_rate=0.0):
    workload = AWSetChurnWorkload(8, rounds=6, seed=3)
    cluster = Cluster(
        ClusterConfig(topology=partial_mesh(8, 4), loss_rate=loss_rate, loss_seed=11),
        ALGORITHMS["delta-based-bp-rr"] if loss_rate == 0.0 else delta_acked_factory,
        Causal.map_bottom(),
    )
    cluster.run_rounds(workload.rounds, workload.updates_for)
    cluster.drain()
    return cluster


def test_identical_runs_emit_identical_message_traces():
    first = _run_churn_cluster()
    second = _run_churn_cluster()
    assert _message_trace(first) == _message_trace(second)
    assert first.nodes[0].state == second.nodes[0].state


def test_loss_pattern_is_seeded_and_reproducible():
    first = _run_churn_cluster(loss_rate=0.2)
    second = _run_churn_cluster(loss_rate=0.2)
    assert first.messages_dropped == second.messages_dropped > 0
    assert _message_trace(first) == _message_trace(second)


def test_experiment_results_are_reproducible():
    def run_once():
        return run_experiment(
            ALGORITHMS["scuttlebutt"],
            GSetWorkload(8, rounds=5),
            partial_mesh(8, 4),
        )

    first, second = run_once(), run_once()
    assert first.transmission_units() == second.transmission_units()
    assert first.transmission_bytes() == second.transmission_bytes()
    assert first.final_state_units == second.final_state_units
    assert first.drain_rounds == second.drain_rounds


def test_different_seeds_change_the_trace():
    base = _run_churn_cluster()
    other_workload = AWSetChurnWorkload(8, rounds=6, seed=4)
    cluster = Cluster(
        ClusterConfig(topology=partial_mesh(8, 4)),
        ALGORITHMS["delta-based-bp-rr"],
        Causal.map_bottom(),
    )
    cluster.run_rounds(other_workload.rounds, other_workload.updates_for)
    cluster.drain()
    assert _message_trace(base) != _message_trace(cluster)
