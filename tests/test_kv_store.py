"""The per-replica store engine: typing, routing, scheduling, framing."""

import pytest

from repro.kv import (
    AntiEntropyConfig,
    HashRing,
    KVCluster,
    KVRoutingError,
    KVStore,
    KVTypeError,
    KVUpdate,
    Schema,
    kv_store_factory,
    type_spec,
)
from repro.lattice import MapLattice
from repro.sizes import SizeModel
from repro.sync import StateBased, keyed_bp_rr

MODEL = SizeModel()


def make_store(replica=0, n=4, replication=2, inner=keyed_bp_rr, **kwargs):
    ring = HashRing(range(n), replication=replication, n_shards=8)
    factory = kv_store_factory(ring, inner, **kwargs)
    neighbors = [i for i in range(n) if i != replica]
    return ring, factory(replica, neighbors, MapLattice(), n, MODEL)


class TestSchema:
    def test_prefix_resolution(self):
        schema = Schema()
        assert schema.type_of("cnt:balance") == "pncounter"
        assert schema.type_of("aws:cart") == "awset"
        assert schema.type_of("flw:0000042") == "gset"

    def test_explicit_binding_wins(self):
        schema = Schema()
        schema.bind("cnt:weird", "gcounter")
        assert schema.type_of("cnt:weird") == "gcounter"

    def test_unresolvable_key(self):
        with pytest.raises(KVTypeError, match="cannot type"):
            Schema().type_of("mystery")

    def test_default_type(self):
        schema = Schema(default="lwwregister")
        assert schema.type_of("anything") == "lwwregister"

    def test_unknown_type_rejected_eagerly(self):
        with pytest.raises(KVTypeError, match="unknown CRDT type"):
            Schema().bind("k", "no-such-type")


class TestTypeSpecs:
    def test_unknown_operation(self):
        with pytest.raises(KVTypeError, match="no operation"):
            type_spec("gcounter").apply("A", None, "decrement", 1)

    def test_grow_only_types_cannot_be_removed(self):
        with pytest.raises(KVTypeError, match="grow-only"):
            type_spec("gset").remove_delta("A", None)

    def test_apply_does_not_mutate_the_input_state(self):
        spec = type_spec("gcounter")
        state = spec.bottom()
        delta = spec.apply("A", state, "increment", 3)
        assert state.is_bottom
        assert spec.read(delta) == 3


class TestTypedApi:
    def test_heterogeneous_keyspace(self):
        _, store = make_store(replica=0, n=2, replication=2)
        store.update("gct:hits", "increment", 2)
        store.update("cnt:score", "increment", 5)
        store.update("cnt:score", "decrement", 1)
        store.update("set:tags", "add", "x")
        store.update("aws:cart", "add", "milk")
        store.update("reg:motd", "write", "hi", 7)
        assert store.get("gct:hits") == 2
        assert store.get("cnt:score") == 4
        assert store.get("set:tags") == {"x"}
        assert store.get("aws:cart") == frozenset({"milk"})
        assert store.get("reg:motd") == "hi"

    def test_unwritten_key_reads_bottom(self):
        _, store = make_store(replica=0, n=2, replication=2)
        assert store.get("set:empty") == set()
        assert store.value_lattice("set:empty") is None

    def test_duplicate_add_produces_bottom_delta(self):
        _, store = make_store(replica=0, n=2, replication=2)
        assert not store.update("set:tags", "add", "x").is_bottom
        assert store.update("set:tags", "add", "x").is_bottom

    def test_observed_remove(self):
        _, store = make_store(replica=0, n=2, replication=2)
        store.update("aws:cart", "add", "milk")
        store.remove("aws:cart")
        assert store.get("aws:cart") == frozenset()

    def test_routing_rejected_for_unowned_key(self):
        ring, store = make_store(replica=0, n=6, replication=2)
        foreign = next(
            f"set:{i}" for i in range(1000) if 0 not in ring.owners(f"set:{i}")
        )
        with pytest.raises(KVRoutingError):
            store.update(foreign, "add", "x")
        with pytest.raises(KVRoutingError):
            store.get(foreign)

    def test_raw_mutators_are_rejected(self):
        _, store = make_store(replica=0, n=2, replication=2)
        with pytest.raises(TypeError, match="KVUpdate"):
            store.local_update(lambda state: state)

    def test_keys_lists_written_keys(self):
        _, store = make_store(replica=0, n=2, replication=2)
        store.update("set:a", "add", "x")
        store.update("gct:b", "increment")
        assert set(store.keys()) == {"set:a", "gct:b"}


class TestWireFraming:
    def test_batched_frames_merge_per_destination(self):
        _, store = make_store(replica=0, n=2, replication=2)
        for i in range(12):
            store.update(f"set:{i:03d}", "add", f"e{i}")
        sends = store.sync_messages()
        assert sends
        for send in sends:
            assert send.message.kind == "kv-batch"
            entries = send.message.payload
            # Framing adds one shard tag per bundled message.
            assert send.message.metadata_units == sum(
                m.metadata_units for _, m in entries
            ) + len(entries)
            assert send.message.payload_bytes == sum(
                m.payload_bytes for _, m in entries
            )
        # One batch per destination.
        assert len({send.dst for send in sends}) == len(sends)

    def test_unbatched_frames_are_single_shard(self):
        _, store = make_store(
            replica=0, n=2, replication=2,
            antientropy=AntiEntropyConfig(batch=False),
        )
        for i in range(12):
            store.update(f"set:{i:03d}", "add", f"e{i}")
        sends = store.sync_messages()
        assert all(send.message.kind == "kv-shard" for send in sends)
        assert len(sends) > 1

    def test_unexpected_wire_kind_rejected(self):
        from repro.sync.protocol import Message

        _, store = make_store(replica=0, n=2, replication=2)
        with pytest.raises(ValueError, match="unexpected wire"):
            store.handle_message(1, Message("delta", MapLattice(), 0, 0, 0))


class TestScheduler:
    def test_budget_defers_shards_and_backpressure_batches(self):
        """A tiny budget defers most shards; nothing is ever lost."""
        ring = HashRing(range(4), replication=2, n_shards=8)
        cluster = KVCluster(
            ring, keyed_bp_rr,
            antientropy=AntiEntropyConfig(budget_bytes=64),
        )
        for i in range(32):
            cluster.update(f"set:{i:03d}", "add", f"e{i}")
        cluster.run_round(updates=None)
        deferred = sum(
            node.scheduler.stats()["deferred"] for node in cluster.nodes
        )
        assert deferred > 0
        cluster.drain()
        assert cluster.converged()
        for i in range(32):
            assert cluster.value(f"set:{i:03d}") == {f"e{i}"}

    def test_repair_pushes_full_state_periodically(self):
        ring = HashRing(range(3), replication=3, n_shards=4)
        cluster = KVCluster(
            ring, StateBased,
            antientropy=AntiEntropyConfig(repair_interval=2, repair_fanout=4),
        )
        cluster.update("set:x", "add", "a")
        for _ in range(4):
            cluster.run_round(updates=None)
        repairs = sum(node.scheduler.stats()["repairs"] for node in cluster.nodes)
        assert repairs > 0

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            AntiEntropyConfig(budget_bytes=0)
        with pytest.raises(ValueError):
            AntiEntropyConfig(repair_interval=-1)
        with pytest.raises(ValueError):
            AntiEntropyConfig(repair_fanout=0)


class TestStoreAsSynchronizer:
    def test_keyspace_must_start_empty(self):
        from repro.lattice import MaxInt

        ring = HashRing(range(2), replication=2, n_shards=4)
        factory = kv_store_factory(ring, keyed_bp_rr)
        with pytest.raises(TypeError, match="empty MapLattice"):
            factory(0, [1], MapLattice({"k": MaxInt(1)}), 2, MODEL)

    def test_disconnected_replica_group_rejected(self):
        ring = HashRing(range(3), replication=3, n_shards=2)
        factory = kv_store_factory(ring, keyed_bp_rr)
        with pytest.raises(ValueError, match="cannot reach co-owners"):
            factory(0, [1], MapLattice(), 3, MODEL)  # replica 2 unreachable

    def test_memory_accounting_sums_shards(self):
        _, store = make_store(replica=0, n=2, replication=2)
        store.update("set:a", "add", "x")
        store.update("gct:b", "increment")
        assert store.state_units() == store.state.size_units()
        assert store.buffer_units() > 0  # δ-buffers hold the two deltas
        store.sync_messages()
        assert store.buffer_units() == 0

    def test_factory_is_labelled_for_reports(self):
        ring = HashRing(range(2), replication=2)
        factory = kv_store_factory(ring, keyed_bp_rr)
        assert factory.name == "kv[delta-based-bp-rr]"
