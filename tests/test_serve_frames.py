"""The serving layer's client/control wire protocol (`repro.serve.frames`).

Round-trips for every verb family, the error statuses, and the framing
helpers — all pure bytes, no sockets except one socketpair exercising
the blocking send/recv path end to end.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.serve import frames
from repro.serve.frames import (
    FrameError,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)


def roundtrip_request(request: Request) -> Request:
    return decode_request(encode_request(request))


def roundtrip_response(response: Response) -> Response:
    return decode_response(encode_response(response))


class TestRequestRoundtrip:
    def test_get(self):
        back = roundtrip_request(Request(7, frames.GET, key="cnt:00001"))
        assert back == Request(7, frames.GET, key="cnt:00001")

    def test_remove(self):
        back = roundtrip_request(Request(8, frames.REMOVE, key="set:a"))
        assert back == Request(8, frames.REMOVE, key="set:a")

    def test_put_with_typed_args(self):
        request = Request(9, frames.PUT, key="reg:r", op="write", args=("v1", 4))
        assert roundtrip_request(request) == request

    def test_put_with_no_args(self):
        request = Request(1, frames.PUT, key="cnt:c", op="increment", args=())
        assert roundtrip_request(request) == request

    def test_repair_carries_opaque_blob(self):
        request = Request(2, frames.REPAIR, blob=b"\x00\x01\xffencoded")
        assert roundtrip_request(request) == request

    def test_control_body_json(self):
        body = {"addresses": {"0": ["127.0.0.1", 4242]}, "round": 3}
        request = Request(3, frames.WIRE, body=body)
        assert roundtrip_request(request) == request

    def test_bare_verbs_have_no_fields(self):
        for verb in (
            frames.PING,
            frames.TICK,
            frames.COUNTERS,
            frames.ROOTS,
            frames.STAT,
            frames.SHUTDOWN,
        ):
            assert roundtrip_request(Request(4, verb)) == Request(4, verb)

    def test_request_ids_are_preserved_verbatim(self):
        for request_id in (0, 1, 127, 128, 1 << 20):
            assert roundtrip_request(
                Request(request_id, frames.TICK)
            ).id == request_id


class TestRequestErrors:
    def test_unknown_verb(self):
        with pytest.raises(FrameError, match="unknown verb"):
            decode_request(b"\x00\x7f")

    def test_missing_verb(self):
        with pytest.raises(FrameError, match="missing verb"):
            decode_request(b"\x05")

    def test_truncated_put(self):
        good = encode_request(
            Request(1, frames.PUT, key="k", op="add", args=("x",))
        )
        with pytest.raises(FrameError):
            decode_request(good[:-2])

    def test_truncated_repair_blob(self):
        good = encode_request(Request(1, frames.REPAIR, blob=b"abcdef"))
        with pytest.raises(FrameError, match="truncated repair blob"):
            decode_request(good[:-1])

    def test_control_body_must_be_an_object(self):
        import json
        from io import BytesIO

        from repro.codec import write_uvarint

        out = BytesIO()
        write_uvarint(out, 1)
        out.write(bytes((frames.WIRE,)))
        payload = json.dumps([1, 2]).encode("utf-8")
        write_uvarint(out, len(payload))
        out.write(payload)
        with pytest.raises(FrameError, match="JSON object"):
            decode_request(out.getvalue())


class TestResponseRoundtrip:
    def test_ok_empty(self):
        back = roundtrip_response(Response(5))
        assert back.ok and back.blob is None and back.body == {} and back.error is None

    def test_ok_with_blob(self):
        response = Response(6, blob=b"\x00encoded-lattice")
        back = roundtrip_response(response)
        assert back.ok and back.blob == response.blob

    def test_ok_with_empty_blob_distinct_from_absent(self):
        # GET of an unwritten key answers blob=None; an encoded bottom
        # would be blob=b"...".  The flag bit keeps them distinct.
        assert roundtrip_response(Response(1, blob=b"")).blob == b""
        assert roundtrip_response(Response(1)).blob is None

    def test_ok_with_body(self):
        response = Response(7, body={"round": 12, "blocked": 0})
        assert roundtrip_response(response).body == {"round": 12, "blocked": 0}

    def test_ok_with_blob_and_body(self):
        response = Response(8, blob=b"xy", body={"a": 1})
        back = roundtrip_response(response)
        assert (back.blob, back.body) == (b"xy", {"a": 1})

    def test_error_statuses_carry_the_message(self):
        for status in (
            frames.ERR_ROUTING,
            frames.ERR_TYPE,
            frames.ERR_BAD_REQUEST,
            frames.ERR_INTERNAL,
        ):
            back = roundtrip_response(
                Response(9, status, error="replica 2 does not own key 'k'")
            )
            assert not back.ok
            assert back.status == status
            assert back.error == "replica 2 does not own key 'k'"

    def test_truncated_response(self):
        good = encode_response(Response(1, blob=b"abcdef"))
        with pytest.raises(FrameError):
            decode_response(good[:-1])


class TestFraming:
    def test_frame_prefixes_big_endian_length(self):
        framed = frames.frame(b"body")
        assert framed == struct.pack(">I", 4) + b"body"

    def test_oversized_frame_refused(self):
        with pytest.raises(FrameError, match="too large"):
            frames.frame(b"x" * (frames.MAX_FRAME_BYTES + 1))

    def test_oversized_length_prefix_refused_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", frames.MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError, match="too large"):
                frames.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_send_recv_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            body = encode_request(Request(3, frames.GET, key="gct:00001"))
            frames.send_frame(a, body)
            frames.send_frame(a, b"")
            assert frames.recv_frame(b) == body
            assert frames.recv_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_peer_close_mid_frame_is_a_connection_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 10) + b"half")
            a.close()
            with pytest.raises(ConnectionError):
                frames.recv_frame(b)
        finally:
            b.close()

    def test_verb_name_covers_known_and_unknown(self):
        assert frames.verb_name(frames.GET) == "get"
        assert frames.verb_name(0x7F) == "verb-0x7f"
