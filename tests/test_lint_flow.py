"""Units for the intraprocedural CFG and the forward dataflow solver.

The CFG shape tests pin the edges the typestate rule leans on — raise
edges into handlers, the finally relay, the catches-all give-up — and
the property test pins the solver semantics: the fixpoint of a
monotone gen/kill framework is unique, so any iteration order must
land on the same answer the worklist does.
"""

import ast

from hypothesis import given, settings, strategies as st

from repro.lint.flow import (
    ENTRY,
    ERROR_EXIT,
    NORMAL_EXIT,
    STATEMENT,
    build_cfg,
    solve_forward,
)


def cfg_of(source):
    tree = ast.parse(source)
    return build_cfg(tree.body[0])


def statement_nodes(cfg):
    return [n for n in cfg.nodes if n.kind == STATEMENT]


class TestCfgShapes:
    def test_straight_line(self):
        cfg = cfg_of("def f():\n    x = 1\n    y = 2\n")
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count(ENTRY) == 1
        assert kinds.count(NORMAL_EXIT) == 1
        assert kinds.count(ERROR_EXIT) == 1
        first, second = statement_nodes(cfg)
        assert second.index in first.successors
        assert cfg.normal_exit in second.successors
        # Constant assigns cannot raise.
        assert first.raise_successors == []

    def test_call_gets_a_raise_edge(self):
        cfg = cfg_of("def f():\n    poke()\n")
        (node,) = statement_nodes(cfg)
        assert node.raise_successors == [cfg.error_exit]

    def test_if_branches_rejoin(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    y = 3\n"
        )
        join = next(
            n
            for n in statement_nodes(cfg)
            if isinstance(n.stmt, ast.Assign) and n.stmt.lineno == 6
        )
        predecessors = [
            n.index for n in cfg.nodes if join.index in n.successors
        ]
        assert len(predecessors) == 2

    def test_loop_has_a_back_edge(self):
        cfg = cfg_of("def f(c):\n    while c:\n        x = 1\n")
        head = next(
            n for n in statement_nodes(cfg) if isinstance(n.stmt, ast.While)
        )
        body = next(
            n for n in statement_nodes(cfg) if isinstance(n.stmt, ast.Assign)
        )
        assert head.index in body.successors

    def test_code_after_return_is_disconnected(self):
        cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        ret = next(
            n for n in statement_nodes(cfg) if isinstance(n.stmt, ast.Return)
        )
        assert cfg.normal_exit in ret.successors
        # The builder drops unreachable statements outright: no node
        # exists for the dead assign, so no rule can report on it.
        assert not any(
            isinstance(n.stmt, ast.Assign) for n in statement_nodes(cfg)
        )

    def test_body_raise_routes_to_handler_not_exit(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        poke()\n"
            "    except ValueError:\n"
            "        x = 1\n"
        )
        call = next(
            n for n in statement_nodes(cfg) if isinstance(n.stmt, ast.Expr)
        )
        assert call.raise_successors != [cfg.error_exit]

    def test_narrow_handler_keeps_unmatched_propagation(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        poke()\n"
            "    except ValueError:\n"
            "        x = 1\n"
        )
        # Some path still reaches the error exit: a TypeError from
        # poke() is not caught.
        assert any(
            cfg.error_exit in n.all_successors() for n in cfg.nodes
        )

    def test_catch_all_handler_suppresses_propagation(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        poke()\n"
            "    except Exception:\n"
            "        x = 1\n"
        )
        assert not any(
            cfg.error_exit in n.all_successors() for n in cfg.nodes
        )

    def test_finally_relays_the_exceptional_path(self):
        cfg = cfg_of(
            "def f():\n"
            "    try:\n"
            "        poke()\n"
            "    finally:\n"
            "        x = 1\n"
        )
        relay = next(
            n
            for n in statement_nodes(cfg)
            if isinstance(n.stmt, ast.Assign)
        )
        assert cfg.error_exit in relay.raise_successors


def _gen_kill_transfer(node, state):
    stmt = node.stmt
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
        name = stmt.value.id
        if name.startswith("gen_"):
            return state | {name[4:]}
        if name.startswith("kill_"):
            return state - {name[5:]}
    return state


class TestSolver:
    def test_may_joins_with_union(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = gen_a\n"
            "    y = 1\n"
        )
        states = solve_forward(cfg, _gen_kill_transfer, mode="may")
        assert states[cfg.normal_exit] == frozenset({"a"})

    def test_must_joins_with_intersection(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = gen_a\n"
            "    y = 1\n"
        )
        states = solve_forward(cfg, _gen_kill_transfer, mode="must")
        assert states[cfg.normal_exit] == frozenset()

    def test_must_keeps_facts_on_all_paths(self):
        cfg = cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = gen_a\n"
            "    else:\n"
            "        x = gen_a\n"
            "    y = 1\n"
        )
        states = solve_forward(cfg, _gen_kill_transfer, mode="must")
        assert states[cfg.normal_exit] == frozenset({"a"})

    def test_kill_removes_a_fact(self):
        cfg = cfg_of(
            "def f():\n"
            "    x = gen_a\n"
            "    x = kill_a\n"
        )
        states = solve_forward(cfg, _gen_kill_transfer, mode="may")
        assert states[cfg.normal_exit] == frozenset()

    def test_unknown_mode_rejected(self):
        cfg = cfg_of("def f():\n    x = 1\n")
        try:
            solve_forward(cfg, _gen_kill_transfer, mode="average")
        except ValueError as error:
            assert "average" in str(error)
        else:
            raise AssertionError("mode check missing")

    def test_raise_transfer_splits_the_edge_states(self):
        # The acquiring statement can raise; on the exceptional edge
        # the acquisition must NOT count (the rule passes the in-state
        # through unchanged there).
        cfg = cfg_of("def f():\n    x = gen_a\n")

        def raise_transfer(node, state):
            return state  # gens do not survive onto the raise edge

        # Make the gen statement raise-capable with a synthetic raise
        # edge to the error exit.
        for node in statement_nodes(cfg):
            if not node.raise_successors:
                node.raise_successors.append(cfg.error_exit)
        states = solve_forward(
            cfg,
            _gen_kill_transfer,
            mode="may",
            raise_transfer=raise_transfer,
        )
        assert states[cfg.normal_exit] == frozenset({"a"})
        assert states[cfg.error_exit] == frozenset()


# ---------------------------------------------------------------------
# Property: the fixpoint is unique, so iteration order cannot matter.
# ---------------------------------------------------------------------


@st.composite
def program_lines(draw, depth=0):
    simple = ["x = gen_a", "x = gen_b", "x = kill_a", "x = kill_b", "poke()"]
    kinds = ["simple"] * 4 + (["if", "loop"] if depth < 2 else [])
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(kinds))
        if kind == "simple":
            lines.append(draw(st.sampled_from(simple)))
        elif kind == "if":
            body = draw(program_lines(depth=depth + 1))
            orelse = draw(program_lines(depth=depth + 1))
            lines.append("if cond:")
            lines.extend("    " + line for line in body)
            lines.append("else:")
            lines.extend("    " + line for line in orelse)
        else:
            body = draw(program_lines(depth=depth + 1))
            lines.append("while cond:")
            lines.extend("    " + line for line in body)
    return lines


def _chaotic_solve(cfg, mode, order):
    """Round-robin reference solver visiting nodes in ``order``."""
    predecessors = {n.index: [] for n in cfg.nodes}
    for node in cfg.nodes:
        for successor in node.all_successors():
            predecessors[successor].append(node.index)
    in_state = {cfg.entry: frozenset()}
    out_state = {}
    changed = True
    while changed:
        changed = False
        for index in order:
            node = cfg.node(index)
            if index == cfg.entry:
                incoming = frozenset()
            else:
                states = [
                    out_state[p]
                    for p in predecessors[index]
                    if p in out_state
                ]
                if not states:
                    continue
                incoming = states[0]
                for state in states[1:]:
                    incoming = (
                        incoming | state if mode == "may" else incoming & state
                    )
            outgoing = _gen_kill_transfer(node, incoming)
            if in_state.get(index) != incoming or out_state.get(index) != outgoing:
                in_state[index] = incoming
                out_state[index] = outgoing
                changed = True
    return in_state


class TestSolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(lines=program_lines(), data=st.data(), mode=st.sampled_from(["may", "must"]))
    def test_fixpoint_is_order_independent(self, lines, data, mode):
        source = "def f(cond):\n" + "\n".join("    " + l for l in lines) + "\n"
        cfg = cfg_of(source)
        order = data.draw(
            st.permutations([n.index for n in cfg.nodes]), label="order"
        )
        expected = solve_forward(cfg, _gen_kill_transfer, mode=mode)
        chaotic = _chaotic_solve(cfg, mode, order)
        assert chaotic == expected

    @settings(max_examples=40, deadline=None)
    @given(lines=program_lines())
    def test_solve_is_deterministic_across_rebuilds(self, lines):
        source = "def f(cond):\n" + "\n".join("    " + l for l in lines) + "\n"
        first = solve_forward(cfg_of(source), _gen_kill_transfer, mode="may")
        second = solve_forward(cfg_of(source), _gen_kill_transfer, mode="may")
        assert first == second
