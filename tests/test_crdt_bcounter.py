"""Bounded counter: rights accounting and the non-negativity invariant.

The BCounter's whole point is that locally-refused decrements keep the
*global* value non-negative without coordination.  Beyond the unit
behaviour of each mutator, a randomized interleaving test drives
increments, rights transfers, decrements, and merges across replicas
and asserts the invariant at every step — the property a downstream
user is actually buying.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crdt import BCounter, InsufficientRights


def sync(*replicas):
    for left in replicas:
        for right in replicas:
            if left is not right:
                left.merge(right)


class TestBasics:
    def test_starts_at_zero_with_no_rights(self):
        c = BCounter("A")
        assert c.value == 0
        assert c.rights == 0

    def test_increment_mints_rights(self):
        c = BCounter("A")
        c.increment(5)
        assert c.value == 5
        assert c.rights == 5

    def test_decrement_spends_rights(self):
        c = BCounter("A")
        c.increment(5)
        c.decrement(3)
        assert c.value == 2
        assert c.rights == 2

    def test_decrement_without_rights_is_refused(self):
        c = BCounter("A")
        with pytest.raises(InsufficientRights):
            c.decrement()

    def test_decrement_beyond_rights_is_refused(self):
        c = BCounter("A")
        c.increment(2)
        with pytest.raises(InsufficientRights):
            c.decrement(3)

    def test_non_positive_amounts_rejected(self):
        c = BCounter("A")
        c.increment(1)
        with pytest.raises(ValueError):
            c.increment(0)
        with pytest.raises(ValueError):
            c.decrement(-1)
        with pytest.raises(ValueError):
            c.transfer(0, to="B")


class TestTransfers:
    def test_transfer_moves_rights(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(10)
        a.transfer(4, to="B")
        b.merge(a)
        assert a.rights == 6
        assert b.rights == 4
        assert b.value == 10  # transfers do not change the value

    def test_recipient_can_spend_transferred_rights(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(10)
        a.transfer(4, to="B")
        b.merge(a)
        b.decrement(4)
        assert b.value == 6
        with pytest.raises(InsufficientRights):
            b.decrement(1)

    def test_transfer_beyond_rights_is_refused(self):
        a = BCounter("A")
        a.increment(3)
        with pytest.raises(InsufficientRights):
            a.transfer(4, to="B")

    def test_transfer_to_self_is_rejected(self):
        a = BCounter("A")
        a.increment(3)
        with pytest.raises(ValueError, match="oneself"):
            a.transfer(1, to="A")

    def test_transfers_accumulate_in_matrix(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(10)
        a.transfer(2, to="B")
        a.transfer(3, to="B")
        b.merge(a)
        assert b.rights == 5

    def test_rights_of_other_replicas_are_visible(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(10)
        a.transfer(4, to="B")
        assert a.rights_of("B") == 4


class TestConvergence:
    def test_concurrent_increments_merge(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(2)
        b.increment(3)
        sync(a, b)
        assert a.value == 5 and b.value == 5
        assert a.state == b.state

    def test_merge_is_idempotent(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(2)
        b.merge(a)
        before = b.state
        b.merge(a)
        assert b.state == before

    def test_deltas_replicate_transfers(self):
        a, b = BCounter("A"), BCounter("B")
        a.increment(5)
        delta = a.transfer(2, to="B")
        b.merge(a.state)  # full state first
        b.merge(delta)  # then the (idempotent) delta again
        assert b.rights == 2


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_invariant_holds_under_random_interleavings(seed):
    """value ≥ 0 and Σ rights == value at every local view, always."""
    rng = random.Random(seed)
    replica_ids = ["A", "B", "C"]
    replicas = {name: BCounter(name) for name in replica_ids}
    for _ in range(40):
        name = rng.choice(replica_ids)
        counter = replicas[name]
        action = rng.random()
        try:
            if action < 0.35:
                counter.increment(rng.randint(1, 5))
            elif action < 0.6:
                counter.decrement(rng.randint(1, 5))
            elif action < 0.8:
                target = rng.choice([r for r in replica_ids if r != name])
                counter.transfer(rng.randint(1, 5), to=target)
            else:
                source = rng.choice([r for r in replica_ids if r != name])
                counter.merge(replicas[source])
        except InsufficientRights:
            pass  # the refusal is the mechanism under test
        # The global invariant must hold at every replica's local view.
        for other in replicas.values():
            assert other.value >= 0
            total_rights = sum(other.rights_of(r) for r in replica_ids)
            assert total_rights == other.value
    sync(*replicas.values())
    states = {repr(c.state) for c in replicas.values()}
    assert len(states) == 1
