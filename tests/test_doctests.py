"""Run the library's docstring examples as tests.

Every public class in the lattice, CRDT, and causal packages carries a
doctest showing its intended use; running them here keeps the
documentation honest — an API change that breaks an example breaks the
build, not the reader.
"""

import doctest
import importlib

import pytest

DOCUMENTED_MODULES = [
    "repro.lattice.primitives",
    "repro.lattice.set_lattice",
    "repro.lattice.map_lattice",
    "repro.lattice.decompose",
    "repro.crdt.base",
    "repro.crdt.gcounter",
    "repro.crdt.pncounter",
    "repro.crdt.bcounter",
    "repro.causal.dots",
    "repro.causal.stores",
    "repro.causal.causal",
    "repro.causal.atom",
    "repro.causal.flags",
    "repro.causal.awset",
    "repro.causal.rwset",
    "repro.causal.mvregister",
    "repro.causal.ccounter",
    "repro.causal.ormap",
    "repro.experiments.report",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
    assert results.attempted > 0, f"{module_name} lost its doctest examples"
