"""Integration tests for the multi-process serving layer (`repro.serve`).

Each test spawns a real 4-process cluster over loopback sockets —
sized small (8 shards, a handful of rounds) so the whole module stays
in tier-1 time.  The scenarios mirror the CI smoke: convergence under
client load, SIGKILL + respawn over the surviving WAL directory, the
advisory lock on that directory, quorum reads joining ``r`` replies,
and the per-process trace files merging by origin.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.kv import KVRoutingError, Unavailable
from repro.kv.antientropy import AntiEntropyConfig
from repro.serve import KVClient, LoadGenerator, ProcessCluster
from repro.wal.storage import FileStorage, StorageLockError

SHARDS = 8


@pytest.fixture(autouse=True)
def hard_timeout():
    """Kill a wedged multi-process test instead of hanging the suite.

    SIGALRM-based so it needs no plugin; generous enough that only a
    genuine deadlock (a replica that never answers, a drain that never
    converges past its own cap) trips it.
    """

    def on_alarm(signum, frame):
        raise TimeoutError("serve integration test exceeded 180s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(180)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

#: Digest repair is what covers a recovered replica's divergence (the
#: deltas it coordinated but never shipped die with its send buffers;
#: only its WAL survives) — same pairing the in-process fault replay
#: requires.
REPAIR = AntiEntropyConfig(
    repair_interval=2, repair_mode="digest", repair_fanout=4
)


def make_cluster(**overrides) -> ProcessCluster:
    options = dict(
        shards=SHARDS, replication=3, recovery="wal", antientropy=REPAIR
    )
    options.update(overrides)
    return ProcessCluster(4, **options)


def make_client(cluster: ProcessCluster, **overrides) -> KVClient:
    options = dict(
        replicas=cluster.replicas,
        shards=SHARDS,
        replication=3,
        seed=11,
    )
    options.update(overrides)
    return KVClient(cluster.client_addresses(), **options)


def test_cluster_converges_under_client_load():
    with make_cluster() as cluster:
        with make_client(cluster, route="random") as client:
            generator = LoadGenerator(client, keys=24, seed=5)
            for _ in range(3):
                for _ in range(15):
                    generator.run_op()
                cluster.run_round(None)
            total = 0
            for _ in range(4):
                delta = client.put("gct:total", "increment", 3)
                assert not delta.is_bottom
                total += 3
            rounds = cluster.drain()
            assert cluster.converged()
            assert rounds <= cluster.max_drain_rounds
            assert client.get("gct:total") == total
            report = generator.report()
            assert report.failed_ops == 0
            assert report.ops == 45
        # Real wire traffic and durable commits happened.
        assert cluster.metrics.message_count > 0
        assert cluster.metrics.total_payload_bytes() > 0
        assert cluster.wal_stats()["wal_committed_bytes"] > 0


def test_sigkill_respawn_recovers_from_wal():
    errors = []
    with make_cluster() as cluster:
        with make_client(cluster, route="random") as client:
            generator = LoadGenerator(
                client, keys=24, seed=3, on_error=errors.append
            )
            acked = 0
            for _ in range(2):
                for _ in range(15):
                    generator.run_op()
                try:
                    client.put("gct:probe", "increment", 1)
                    acked += 1
                except Unavailable:
                    pass
                cluster.run_round(None)

            victim = 3
            cluster.crash(victim, lose_state=True)
            assert victim in cluster.down
            for _ in range(15):
                generator.run_op()
            try:
                client.put("gct:probe", "increment", 1)
                acked += 1
            except Unavailable:
                pass
            cluster.run_round(None)

            cluster.recover(victim)
            # The respawned process rebuilt owned shards from its
            # surviving per-shard logs, not from the network.
            assert cluster.replayed_shards(victim) > 0
            client.update_addresses(cluster.client_addresses())
            for _ in range(10):
                generator.run_op()

            cluster.drain()
            assert cluster.converged()
            # The client never saw a wrong value: every surfaced failure
            # is Unavailable (the staleness contract), and the acked
            # counter reads exactly the acked total after convergence.
            assert all(isinstance(error, Unavailable) for error in errors)
            assert client.get("gct:probe") == acked
        assert cluster.wal_stats()["wal_replayed_bytes"] > 0


def test_wal_dir_flock_excludes_second_opener():
    with make_cluster() as cluster:
        wal_dir = cluster._wal_dir(0)
        assert os.path.isdir(wal_dir)
        live_pid = cluster._procs[0].pid
        with pytest.raises(StorageLockError) as excinfo:
            FileStorage(wal_dir, lock=True)
        assert str(live_pid) in str(excinfo.value)
    # The lock dies with the process: after shutdown the dir reopens.
    storage = FileStorage(wal_dir, lock=True)
    assert storage.locked
    storage.release_lock()


def test_quorum_read_joins_r_replies_and_repairs_stale_owners():
    with make_cluster() as cluster:
        # w=1: only the coordinator holds the write until anti-entropy
        # runs — which this test deliberately never does before reading.
        with make_client(cluster, r=3, w=1, route="random") as client:
            client.put("set:q", "add", "quorum")
            joined = client.get("set:q")
            # The r=3 join sees the coordinator's reply even though two
            # of the three owners answered with nothing.
            assert joined == {"quorum"}
            assert client.stats["divergent_reads"] == 1
            assert client.stats["read_repairs"] == 2
        # Read repair pushed the join to the stale owners: now even an
        # r=1 read at any single owner sees the value, without any
        # anti-entropy round having run.
        with make_client(cluster, r=1, route="random") as reader:
            for _ in range(4):
                assert reader.get("set:q") == {"quorum"}
            assert reader.stats["stale_session_reads"] == 0
        server = cluster.scheduler_stats()
        assert server["read_repairs"] >= 2
        assert server["read_repair_payload_bytes"] > 0


def test_nonowner_put_is_a_routing_error_not_a_crash():
    with make_cluster() as cluster:
        client = make_client(cluster)
        try:
            owners = set(cluster.ring.owners("cnt:routed"))
            outsider = next(
                r for r in cluster.ring.replicas if r not in owners
            )
            from repro.serve import frames

            with pytest.raises(KVRoutingError, match="does not own"):
                cluster._controls[outsider].request(
                    frames.PUT, key="cnt:routed", op="increment", args=(1,)
                )
            # The connection survives a routing error: the same socket
            # serves the next request.
            assert cluster._controls[outsider].request(frames.PING).ok
        finally:
            client.close()


def test_trace_dir_merges_per_process_files(tmp_path):
    from repro.obs import read_trace

    trace_dir = str(tmp_path / "trace")
    with make_cluster(trace_dir=trace_dir) as cluster:
        with make_client(cluster, route="random") as client:
            generator = LoadGenerator(client, keys=16, seed=9)
            for _ in range(20):
                generator.run_op()
            cluster.run_round(None)
            cluster.drain()
    # One file per replica process plus the controller's.
    files = sorted(os.listdir(trace_dir))
    assert "controller.jsonl" in files
    assert sum(name.startswith("r") for name in files) == 4
    events = read_trace(trace_dir)
    origins = {event.origin for event in events}
    assert len(origins) >= 5  # 4 replicas + the controller
    kinds = {event.type for event in events}
    assert "client-op" in kinds
    assert "round" in kinds
    assert "send" in kinds and "deliver" in kinds
    # The merge is round-major: no event of round k+1 precedes one of
    # round k (events without a round sort first within their file).
    rounds = [e.round for e in events if e.round is not None]
    assert rounds == sorted(rounds)
