"""Unit and property tests for dots and causal contexts.

The causal context is the foundation every observed-remove type rests
on: normalization must be canonical (equality is structural), and the
compact-vector-plus-cloud representation must answer containment,
union, difference, and fresh-dot queries exactly as the plain set of
dots would.
"""

from hypothesis import given, strategies as st

from repro.causal import CausalContext, Dot
from repro.sizes import SizeModel

REPLICAS = ["A", "B", "C"]

dots = st.tuples(st.sampled_from(REPLICAS), st.integers(min_value=1, max_value=8)).map(
    lambda t: Dot(*t)
)
dot_sets = st.frozensets(dots, max_size=12)
contexts = dot_sets.map(CausalContext.from_dots)


# ---------------------------------------------------------------------------
# Normalization and canonical form.
# ---------------------------------------------------------------------------


def test_contiguous_dots_compact_into_vector():
    cc = CausalContext.from_dots([Dot("A", 1), Dot("A", 2), Dot("A", 3)])
    assert cc.compact == {"A": 3}
    assert not cc.cloud


def test_gap_keeps_dot_in_cloud():
    cc = CausalContext.from_dots([Dot("A", 1), Dot("A", 3)])
    assert cc.compact == {"A": 1}
    assert cc.cloud == {Dot("A", 3)}


def test_filling_gap_absorbs_cloud():
    cc = CausalContext.from_dots([Dot("A", 1), Dot("A", 3)])
    filled = cc.add(Dot("A", 2))
    assert filled.compact == {"A": 3}
    assert not filled.cloud


def test_cloud_dot_below_vector_is_dropped():
    cc = CausalContext({"A": 5}, cloud=[Dot("A", 3)])
    assert cc.compact == {"A": 5}
    assert not cc.cloud


def test_zero_vector_entries_are_dropped():
    cc = CausalContext({"A": 0, "B": 2})
    assert cc.compact == {"B": 2}


@given(dot_sets)
def test_from_dots_roundtrip(dotset):
    cc = CausalContext.from_dots(dotset)
    assert frozenset(cc.dots()) == dotset


@given(dot_sets)
def test_normalization_is_canonical(dotset):
    """Any construction order yields the same representation."""
    one_by_one = CausalContext()
    for dot in sorted(dotset, reverse=True):
        one_by_one = one_by_one.add(dot)
    batch = CausalContext.from_dots(dotset)
    assert one_by_one == batch
    assert hash(one_by_one) == hash(batch)


# ---------------------------------------------------------------------------
# Queries.
# ---------------------------------------------------------------------------


@given(dot_sets, dots)
def test_contains_matches_set_membership(dotset, dot):
    cc = CausalContext.from_dots(dotset)
    assert cc.contains(dot) == (dot in dotset)


@given(dot_sets)
def test_dot_count_matches_enumeration(dotset):
    cc = CausalContext.from_dots(dotset)
    assert cc.dot_count() == len(dotset)


@given(dot_sets, st.sampled_from(REPLICAS))
def test_next_dot_is_fresh_and_minimal(dotset, replica):
    cc = CausalContext.from_dots(dotset)
    nxt = cc.next_dot(replica)
    assert nxt.replica == replica
    assert not cc.contains(nxt)
    counters = [d.counter for d in dotset if d.replica == replica]
    assert nxt.counter == (max(counters) + 1 if counters else 1)


def test_next_dot_skips_past_cloud():
    """A cloud dot above the vector still reserves its counter."""
    cc = CausalContext.from_dots([Dot("A", 1), Dot("A", 5)])
    assert cc.next_dot("A") == Dot("A", 6)


# ---------------------------------------------------------------------------
# Union, subtraction, and order.
# ---------------------------------------------------------------------------


@given(dot_sets, dot_sets)
def test_union_is_set_union(left, right):
    merged = CausalContext.from_dots(left).union(CausalContext.from_dots(right))
    assert frozenset(merged.dots()) == left | right


@given(dot_sets, dot_sets)
def test_subtract_is_set_difference(left, right):
    cc_left = CausalContext.from_dots(left)
    cc_right = CausalContext.from_dots(right)
    assert frozenset(cc_left.subtract(cc_right)) == left - right


@given(dot_sets, dot_sets)
def test_leq_is_subset(left, right):
    cc_left = CausalContext.from_dots(left)
    cc_right = CausalContext.from_dots(right)
    assert cc_left.leq(cc_right) == (left <= right)


@given(contexts, contexts, contexts)
def test_union_laws(x, y, z):
    assert x.union(x) == x
    assert x.union(y) == y.union(x)
    assert x.union(y.union(z)) == x.union(y).union(z)
    assert x.leq(x.union(y))


# ---------------------------------------------------------------------------
# Size accounting.
# ---------------------------------------------------------------------------


def test_size_counts_vector_entries_and_cloud_dots():
    model = SizeModel()
    cc = CausalContext.from_dots([Dot("A", 1), Dot("A", 2), Dot("B", 3)])
    # A compacts to one vector entry; B3 stays in the cloud.
    assert cc.size_units() == 2
    assert cc.size_bytes(model) == 2 * model.vector_entry_bytes()


def test_empty_context_is_free():
    assert CausalContext().size_units() == 0
    assert CausalContext().is_empty
