"""Unit tests for the baseline protocols: state-based, Scuttlebutt (±GC),
and operation-based synchronization."""

import pytest

from repro.lattice import MapLattice, MaxInt, SetLattice
from repro.sizes import SizeModel
from repro.sync.opbased import OpBased, OpEnvelope
from repro.sync.protocol import Message
from repro.sync.scuttlebutt import Scuttlebutt, ScuttlebuttGC
from repro.sync.statebased import StateBased

MODEL = SizeModel()


def gset_add(element):
    def mutator(state):
        if element in state:
            return state.bottom_like()
        return SetLattice((element,))

    return mutator


class TestStateBased:
    def test_sends_full_state_to_every_neighbor(self):
        node = StateBased(0, [1, 2], SetLattice(), 3, MODEL)
        node.local_update(gset_add("x"))
        node.local_update(gset_add("y"))
        sends = node.sync_messages()
        assert len(sends) == 2
        for send in sends:
            assert send.message.payload == SetLattice({"x", "y"})
            assert send.message.payload_units == 2
            assert send.message.metadata_bytes == 0

    def test_does_not_send_bottom(self):
        node = StateBased(0, [1], SetLattice(), 2, MODEL)
        assert node.sync_messages() == []

    def test_receive_joins(self):
        node = StateBased(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        node.handle_message(
            1, Message("state", SetLattice({"y"}), 1, 1, 0)
        )
        assert node.state == SetLattice({"x", "y"})

    def test_no_memory_overhead(self):
        node = StateBased(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        assert node.buffer_units() == 0
        assert node.metadata_bytes() == 0
        assert node.memory_units() == node.state_units()

    def test_retransmits_every_round(self):
        """Full state goes out even with nothing new — the cost the
        delta approach was invented to remove."""
        node = StateBased(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        first = node.sync_messages()
        second = node.sync_messages()
        assert first[0].message.payload == second[0].message.payload


class TestScuttlebutt:
    def wire(self, initiator, responder):
        """One full digest→deltas round trip between two replicas."""
        for send in initiator.sync_messages():
            if send.dst == responder.replica:
                for reply in responder.handle_message(initiator.replica, send.message):
                    if reply.dst == initiator.replica:
                        initiator.handle_message(responder.replica, reply.message)

    def test_versions_assigned_per_origin(self):
        node = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        node.local_update(gset_add("y"))
        assert node.vector == {0: 2}
        assert set(node.store) == {(0, 1), (0, 2)}

    def test_bottom_delta_not_versioned(self):
        node = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        node.local_update(gset_add("x"))  # duplicate
        assert node.vector == {0: 1}

    def test_digest_reply_contains_only_missing(self):
        a = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        b = Scuttlebutt(1, [0], SetLattice(), 2, MODEL)
        a.local_update(gset_add("x"))
        self.wire(b, a)  # b's digest → a replies with x
        assert b.state == SetLattice({"x"})
        a.local_update(gset_add("y"))
        [digest] = b.sync_messages()
        [reply] = a.handle_message(1, digest.message)
        assert reply.message.payload_units == 1  # only y, not x again

    def test_digest_carries_metadata_only(self):
        node = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        [digest] = node.sync_messages()
        assert digest.message.payload_units == 0
        assert digest.message.metadata_bytes == MODEL.vector_entry_bytes()

    def test_store_never_pruned_without_gc(self):
        a = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        b = Scuttlebutt(1, [0], SetLattice(), 2, MODEL)
        for i in range(5):
            a.local_update(gset_add(f"x{i}"))
            self.wire(b, a)
            self.wire(a, b)
        assert len(a.store) == 5  # memory grows forever
        assert len(b.store) == 5

    def test_convergence_two_nodes(self):
        a = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        b = Scuttlebutt(1, [0], SetLattice(), 2, MODEL)
        a.local_update(gset_add("x"))
        b.local_update(gset_add("y"))
        self.wire(a, b)
        self.wire(b, a)
        assert a.state == b.state == SetLattice({"x", "y"})


class TestScuttlebuttGC:
    def full_round(self, nodes):
        """Every node digests every neighbour; replies flow back."""
        for node in nodes:
            for send in node.sync_messages():
                receiver = nodes[send.dst]
                for reply in receiver.handle_message(node.replica, send.message):
                    nodes[reply.dst].handle_message(receiver.replica, reply.message)

    def test_prunes_once_everyone_has_seen(self):
        nodes = [ScuttlebuttGC(i, [1 - i], SetLattice(), 2, MODEL) for i in range(2)]
        nodes[0].local_update(gset_add("x"))
        for _ in range(4):
            self.full_round(nodes)
        assert nodes[0].state == nodes[1].state == SetLattice({"x"})
        assert len(nodes[0].store) == 0
        assert len(nodes[1].store) == 0

    def test_keeps_deltas_while_some_node_lags(self):
        # Line topology 0–1–2: node 2 only hears via node 1.
        nodes = [
            ScuttlebuttGC(0, [1], SetLattice(), 3, MODEL),
            ScuttlebuttGC(1, [0, 2], SetLattice(), 3, MODEL),
            ScuttlebuttGC(2, [1], SetLattice(), 3, MODEL),
        ]
        nodes[0].local_update(gset_add("x"))
        # One exchange between 0 and 1 only.
        for send in nodes[1].sync_messages():
            if send.dst == 0:
                for reply in nodes[0].handle_message(1, send.message):
                    nodes[1].handle_message(0, reply.message)
        # Node 1 has the delta but node 2 hasn't seen it: no pruning.
        assert len(nodes[1].store) == 1

    def test_matrix_metadata_grows_quadratically(self):
        """The GC digest carries a knowledge matrix: N² vector entries."""
        small = ScuttlebuttGC(0, [1], SetLattice(), 2, MODEL)
        big = ScuttlebuttGC(0, [1], SetLattice(), 8, MODEL)
        for node in (small, big):
            node.local_update(gset_add("x"))
        # Fake full knowledge so matrix entries are materialized.
        for node, n in ((small, 2), (big, 8)):
            for member in range(n):
                node.knowledge[member] = {origin: 1 for origin in range(n)}
        [digest_small] = small.sync_messages()
        [digest_big] = big.sync_messages()
        ratio = digest_big.message.metadata_bytes / digest_small.message.metadata_bytes
        assert ratio > 8  # super-linear growth in cluster size


class TestOpBased:
    def test_local_update_buffers_op(self):
        node = OpBased(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        assert node.delivered == {0: 1}
        assert len(node.buffer) == 1

    def test_ops_carry_vector_clock_metadata(self):
        node = OpBased(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        [send] = node.sync_messages()
        assert send.message.metadata_bytes >= MODEL.vector_entry_bytes()
        assert send.message.payload_units == 1

    def test_not_resent_to_same_neighbor(self):
        node = OpBased(0, [1, 2], SetLattice(), 3, MODEL)
        node.local_update(gset_add("x"))
        first = node.sync_messages()
        assert {send.dst for send in first} == {1, 2}
        assert node.sync_messages() == []  # everyone marked as having it

    def test_causal_delivery_holds_out_of_order_op(self):
        receiver = OpBased(1, [0], SetLattice(), 2, MODEL)
        op1 = OpEnvelope(0, 1, {0: 1}, SetLattice({"a"}))
        op2 = OpEnvelope(0, 2, {0: 2}, SetLattice({"b"}))
        receiver.handle_message(0, _ops_message([op2]))
        assert receiver.state.is_bottom  # held: op1 missing
        assert receiver.pending
        receiver.handle_message(0, _ops_message([op1]))
        assert receiver.state == SetLattice({"a", "b"})
        assert not receiver.pending

    def test_cross_origin_causality(self):
        """An op that causally depends on another origin's op waits."""
        receiver = OpBased(2, [0, 1], SetLattice(), 3, MODEL)
        op_a = OpEnvelope(0, 1, {0: 1}, SetLattice({"a"}))
        op_b = OpEnvelope(1, 1, {0: 1, 1: 1}, SetLattice({"b"}))  # saw op_a
        receiver.handle_message(1, _ops_message([op_b]))
        assert receiver.state.is_bottom
        receiver.handle_message(0, _ops_message([op_a]))
        assert receiver.state == SetLattice({"a", "b"})

    def test_duplicate_marks_seen_by(self):
        receiver = OpBased(2, [0, 1], SetLattice(), 3, MODEL)
        op = OpEnvelope(0, 1, {0: 1}, SetLattice({"a"}))
        receiver.handle_message(0, _ops_message([op]))
        assert 0 in receiver.buffer[(0, 1)].seen_by
        assert 1 not in receiver.buffer[(0, 1)].seen_by
        receiver.handle_message(1, _ops_message([op]))
        # Both neighbours now have it, so the entry is pruned outright —
        # and the duplicate was not applied a second time.
        assert (0, 1) not in receiver.buffer
        assert receiver.state == SetLattice({"a"})

    def test_buffer_pruned_when_all_neighbors_have_seen(self):
        receiver = OpBased(2, [0, 1], SetLattice(), 3, MODEL)
        op = OpEnvelope(0, 1, {0: 1}, SetLattice({"a"}))
        receiver.handle_message(0, _ops_message([op]))
        receiver.handle_message(1, _ops_message([op]))
        assert not receiver.buffer

    def test_exactly_once_no_reapplication(self):
        """A pruned-then-re-received op is not applied twice."""
        receiver = OpBased(2, [0, 1], SetLattice(), 3, MODEL)
        op = OpEnvelope(0, 1, {0: 1}, SetLattice({"a"}))
        receiver.handle_message(0, _ops_message([op]))
        receiver.handle_message(1, _ops_message([op]))  # prunes
        receiver.handle_message(1, _ops_message([op]))  # late duplicate
        assert receiver.delivered == {0: 1}
        assert receiver.state == SetLattice({"a"})


def _ops_message(envelopes):
    units = sum(e.payload.size_units() for e in envelopes)
    payload_bytes = sum(e.payload.size_bytes(MODEL) for e in envelopes)
    return Message("ops", list(envelopes), units, payload_bytes, 0)
