"""Units for the repro.net seam: runtime, transport contract, facade."""

import pytest

from repro.lattice.set_lattice import SetLattice
from repro.net import AsyncTcpTransport, ReplicaRuntime, SimTransport
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import line, full_mesh
from repro.sync import StateBased, delta_bp_rr
from repro.workloads import GSetWorkload


def make_sync(replica=0, neighbors=(1,), n=2):
    return StateBased(
        replica=replica,
        neighbors=neighbors,
        bottom=SetLattice(),
        n_nodes=n,
    )


class TestReplicaRuntime:
    def test_records_processing_costs(self):
        metrics = MetricsCollector(2)
        runtime = ReplicaRuntime(make_sync(), metrics)
        runtime.local_update(lambda state: SetLattice({"a"}))
        assert metrics.per_node[0].processing_units == 1
        assert metrics.per_node[0].processing_seconds > 0

    def test_tick_without_transport_is_an_error(self):
        runtime = ReplicaRuntime(make_sync())
        runtime.local_update(lambda state: SetLattice({"a"}))
        with pytest.raises(RuntimeError):
            runtime.tick()

    def test_replace_rejects_identity_change(self):
        runtime = ReplicaRuntime(make_sync(replica=0))
        with pytest.raises(ValueError):
            runtime.replace(make_sync(replica=1, neighbors=(0,)))

    def test_fault_hooks_reach_the_synchronizer(self):
        calls = []

        class Hooked(StateBased):
            def note_send_blocked(self, dst):
                calls.append(("blocked", dst))

            def restore_clock(self, ticks):
                calls.append(("clock", ticks))

        runtime = ReplicaRuntime(
            Hooked(replica=0, neighbors=(1,), bottom=SetLattice(), n_nodes=2)
        )
        runtime.note_send_blocked(1)
        runtime.restore_clock(7)
        assert calls == [("blocked", 1), ("clock", 7)]

    def test_hooks_are_optional(self):
        runtime = ReplicaRuntime(make_sync())
        runtime.note_send_blocked(1)  # StateBased has no hook: no-op
        runtime.restore_clock(3)


class TestClusterFacade:
    def test_unknown_transport_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            Cluster(ClusterConfig(line(2)), StateBased, SetLattice(), "telegraph")

    def test_explicit_transport_instance_shares_metrics(self):
        config = ClusterConfig(line(2))
        transport = SimTransport(config, MetricsCollector(2))
        cluster = Cluster(config, StateBased, SetLattice(), transport)
        assert cluster.metrics is transport.metrics
        workload = GSetWorkload(2, rounds=2)
        cluster.run_rounds(2, workload.updates_for)
        cluster.drain()
        assert cluster.converged()
        assert transport.metrics.message_count > 0

    def test_transport_rejects_wrong_runtime_count(self):
        config = ClusterConfig(line(3))
        transport = SimTransport(config, MetricsCollector(3))
        with pytest.raises(ValueError, match="3-node topology"):
            transport.bind([ReplicaRuntime(make_sync())])

    def test_lose_state_rebuilds_through_the_runtime(self):
        config = ClusterConfig(line(2))
        cluster = Cluster(config, delta_bp_rr, SetLattice())
        cluster.apply_update(0, lambda state: SetLattice({"a"}))
        before = cluster.runtimes[0].synchronizer
        cluster.crash(0, lose_state=True)
        after = cluster.runtimes[0].synchronizer
        assert after is not before
        assert after.state.is_bottom
        assert cluster.nodes[0] is after  # the facade view tracks it


class TestTcpTransport:
    def test_blocked_sends_notify_the_sender(self):
        notified = []

        class Watchful(StateBased):
            def note_send_blocked(self, dst):
                notified.append((self.replica, dst))

        cluster = Cluster(ClusterConfig(line(2)), Watchful, SetLattice(), "tcp")
        try:
            cluster.apply_update(0, lambda state: SetLattice({"a"}))
            cluster.crash(1)
            cluster.run_round(updates=None)
            assert cluster.messages_blocked > 0
            assert (0, 1) in notified
        finally:
            cluster.close()

    def test_partition_blocks_and_heal_restores(self):
        cluster = Cluster(ClusterConfig(full_mesh(4)), StateBased, SetLattice(), "tcp")
        try:
            cluster.partition([0, 1])
            assert cluster.partitioned
            assert not cluster.link_up(0, 2)
            assert cluster.link_up(0, 1)
            workload = GSetWorkload(4, rounds=2)
            cluster.run_rounds(2, workload.updates_for)
            assert not cluster.converged()
            cluster.heal()
            cluster.drain()
            assert cluster.converged()
        finally:
            cluster.close()

    def test_updates_on_down_nodes_are_skipped(self):
        cluster = Cluster(ClusterConfig(line(2)), StateBased, SetLattice(), "tcp")
        try:
            cluster.crash(0)
            cluster.run_round(lambda node: [lambda s: SetLattice({"x"})])
            assert cluster.updates_skipped == 1
        finally:
            cluster.close()

    def test_loss_rate_drops_frames(self):
        config = ClusterConfig(line(2), loss_rate=0.5, loss_seed=3)
        cluster = Cluster(config, StateBased, SetLattice(), "tcp")
        try:
            workload = GSetWorkload(2, rounds=6)
            cluster.run_rounds(6, workload.updates_for)
            assert cluster.messages_dropped > 0
            assert cluster.messages_severed == 0
        finally:
            cluster.close()

    def test_close_is_idempotent(self):
        cluster = Cluster(ClusterConfig(line(2)), StateBased, SetLattice(), "tcp")
        cluster.close()
        cluster.close()

    def test_close_reentered_from_the_running_loop(self):
        """close() from inside the event loop (cleanup after a stall
        escaping _settle, __del__ from a callback) must not raise
        RuntimeError from run_until_complete; it schedules the shutdown
        and a later outside-the-loop close() finishes the teardown."""
        cluster = Cluster(ClusterConfig(line(2)), StateBased, SetLattice(), "tcp")
        transport = cluster.transport
        cluster.run_round(lambda node: [lambda s: SetLattice({f"n{node}"})])

        async def reenter():
            transport.close()  # would previously raise RuntimeError

        transport._loop.run_until_complete(reenter())
        assert not transport._closed  # teardown deferred, not abandoned
        assert transport._deferred_shutdown is not None
        cluster.close()
        assert transport._closed
        assert transport._loop.is_closed()
        cluster.close()  # still idempotent afterwards

    def test_failed_deferred_shutdown_is_retried_by_the_final_close(self):
        """A deferred shutdown that dies must not leave sockets open:
        the outer close() retrieves the failure and runs a fresh one."""
        cluster = Cluster(ClusterConfig(line(2)), StateBased, SetLattice(), "tcp")
        transport = cluster.transport
        original_shutdown = transport._shutdown
        calls = []

        async def failing_shutdown():
            calls.append("failed")
            raise OSError("teardown died")

        transport._shutdown = failing_shutdown

        async def reenter():
            transport.close()

        transport._loop.run_until_complete(reenter())
        import asyncio

        transport._loop.run_until_complete(asyncio.sleep(0))  # let it fail
        deferred = transport._deferred_shutdown
        assert deferred is not None and deferred.done()
        transport._shutdown = original_shutdown
        cluster.close()  # retrieves the exception, reruns the shutdown
        assert calls == ["failed"]
        assert transport._loop.is_closed()

    def test_teardown_raising_mid_close_still_closes_the_loop(self):
        """If the awaited shutdown itself raises, the exception surfaces
        to the caller but the loop must not leak — close() is
        idempotent, so no later call would ever retry."""
        cluster = Cluster(ClusterConfig(line(2)), StateBased, SetLattice(), "tcp")
        transport = cluster.transport
        real_shutdown = transport._shutdown

        async def exploding_shutdown():
            await real_shutdown()  # release the sockets, then fail late
            raise OSError("teardown died")

        transport._shutdown = exploding_shutdown
        with pytest.raises(OSError, match="teardown died"):
            transport.close()
        assert transport._closed
        assert transport._loop.is_closed()
        transport.close()  # idempotent, no second raise

    def test_queue_is_a_sim_only_surface(self):
        transport = AsyncTcpTransport(ClusterConfig(line(2)), MetricsCollector(2))
        assert not hasattr(transport, "queue")
        transport.close()
