"""Integration tests for the simulated cluster and the experiment runner."""

import pytest

from repro.sim.metrics import MemorySample, MessageRecord, MetricsCollector
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.runner import ratio_table, run_experiment, run_suite
from repro.sim.topology import line, partial_mesh, tree
from repro.sizes import SizeModel
from repro.sync import (
    OpBased,
    Scuttlebutt,
    ScuttlebuttGC,
    StateBased,
    classic,
    delta_bp,
    delta_bp_rr,
    delta_rr,
)
from repro.workloads import GCounterWorkload, GSetWorkload

ALL = {
    "state-based": StateBased,
    "delta-based": classic,
    "delta-based-bp": delta_bp,
    "delta-based-rr": delta_rr,
    "delta-based-bp-rr": delta_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "scuttlebutt-gc": ScuttlebuttGC,
    "op-based": OpBased,
}


class TestMetricsCollector:
    def test_message_aggregation(self):
        metrics = MetricsCollector(3)
        metrics.record_message(MessageRecord(10.0, 0, 1, "delta", 5, 50, 8))
        metrics.record_message(MessageRecord(20.0, 1, 2, "delta", 3, 30, 8))
        assert metrics.total_payload_units() == 8
        assert metrics.total_payload_bytes() == 80
        assert metrics.total_metadata_bytes() == 16
        assert metrics.total_bytes() == 96
        assert metrics.per_node[0].messages_sent == 1
        assert metrics.per_node[2].messages_received == 1

    def test_metadata_fraction(self):
        metrics = MetricsCollector(2)
        metrics.record_message(MessageRecord(0.0, 0, 1, "digest", 0, 0, 75))
        metrics.record_message(MessageRecord(0.0, 1, 0, "deltas", 5, 25, 0))
        assert metrics.metadata_fraction() == 0.75

    def test_units_series_buckets(self):
        metrics = MetricsCollector(2)
        metrics.record_message(MessageRecord(100.0, 0, 1, "d", 2, 2, 0))
        metrics.record_message(MessageRecord(900.0, 0, 1, "d", 3, 3, 0))
        metrics.record_message(MessageRecord(1500.0, 1, 0, "d", 4, 4, 0))
        series = metrics.units_series(window_ms=1000.0)
        assert series == [(0.0, 5), (1000.0, 4)]
        cumulative = metrics.cumulative_units_series(window_ms=1000.0)
        assert cumulative == [(0.0, 5), (1000.0, 9)]

    def test_split_at(self):
        metrics = MetricsCollector(2)
        metrics.record_message(MessageRecord(100.0, 0, 1, "d", 2, 2, 0))
        metrics.record_message(MessageRecord(5000.0, 0, 1, "d", 3, 3, 0))
        first, second = metrics.split_at(1000.0)
        assert first.total_payload_units() == 2
        assert second.total_payload_units() == 3

    def test_memory_averages(self):
        metrics = MetricsCollector(1)
        metrics.record_memory(MemorySample(0.0, 0, 10, 5, 100, 50, 7))
        metrics.record_memory(MemorySample(1.0, 0, 20, 5, 200, 50, 7))
        assert metrics.average_memory_units() == 20.0
        assert metrics.average_memory_bytes() == (157 + 257) / 2
        assert metrics.peak_memory_bytes() == 257
        assert metrics.final_memory_units() == 25.0

    def test_empty_collector(self):
        metrics = MetricsCollector(1)
        assert metrics.metadata_fraction() == 0.0
        assert metrics.average_memory_units() == 0.0
        assert metrics.units_series(1000.0) == []


class TestClusterConfig:
    def test_latency_must_fit_in_interval(self):
        with pytest.raises(ValueError):
            ClusterConfig(line(2), sync_interval_ms=100.0, latency_ms=60.0)


class TestClusterBasics:
    def test_two_nodes_converge(self):
        config = ClusterConfig(line(2))
        cluster = Cluster(config, delta_bp_rr, GSetWorkload(2, 1).bottom())
        workload = GSetWorkload(2, rounds=3)
        cluster.run_rounds(3, workload.updates_for)
        cluster.drain()
        assert cluster.converged()
        assert cluster.nodes[0].state.size_units() == 6

    def test_messaging_respects_topology(self):
        """A synchronizer addressing a non-neighbour is a hard error."""
        from repro.sync.protocol import Message, Send

        class Rogue(StateBased):
            def sync_messages(self):
                return [Send(dst=2, message=Message("state", self.state, 0, 0, 0))]

        config = ClusterConfig(line(3))
        cluster = Cluster(config, Rogue, GSetWorkload(3, 1).bottom())
        cluster.apply_update(0, GSetWorkload(3, 1).updates_for(0, 0)[0])
        with pytest.raises(ValueError):
            cluster.run_round(updates=None)

    def test_determinism(self):
        """Two identical runs produce byte-identical metrics."""

        def run_once():
            result = run_experiment(
                delta_bp_rr, GSetWorkload(5, rounds=5), partial_mesh(5, 2)
            )
            return (
                result.transmission_units(),
                result.transmission_bytes(),
                result.metrics.message_count,
                result.duration_ms,
            )

        assert run_once() == run_once()

    def test_memory_sampled_every_round(self):
        result = run_experiment(classic, GSetWorkload(3, rounds=4), line(3))
        rounds_total = 4 + result.drain_rounds
        assert len(result.metrics.memory) == rounds_total * 3


class TestFaultCounters:
    """Loss drops, fault kills, and refused sends are distinct events."""

    def test_loss_counts_as_dropped_not_severed(self):
        config = ClusterConfig(line(2), loss_rate=0.5, loss_seed=3)
        cluster = Cluster(config, StateBased, GSetWorkload(2, 1).bottom())
        workload = GSetWorkload(2, rounds=6)
        cluster.run_rounds(6, workload.updates_for)
        assert cluster.messages_dropped > 0
        assert cluster.messages_severed == 0

    def test_in_flight_kill_counts_as_severed_not_dropped(self):
        cluster = Cluster(ClusterConfig(line(2)), StateBased, GSetWorkload(2, 1).bottom())
        cluster.apply_update(0, GSetWorkload(2, 1).updates_for(0, 0)[0])
        # Dispatch while the link is up, crash before delivery: the
        # in-flight message dies to the fault, not to network loss.
        cluster._dispatch(0, cluster.nodes[0].sync_messages())
        cluster.crash(1)
        cluster.queue.run(until=cluster.queue.now + 1000.0)
        assert cluster.messages_severed == 1
        assert cluster.messages_dropped == 0

    def test_refused_send_notifies_the_sender(self):
        notified = []

        class Watchful(StateBased):
            def note_send_blocked(self, dst):
                notified.append((self.replica, dst))

        cluster = Cluster(ClusterConfig(line(2)), Watchful, GSetWorkload(2, 1).bottom())
        cluster.apply_update(0, GSetWorkload(2, 1).updates_for(0, 0)[0])
        cluster.crash(1)
        cluster.run_round(updates=None)
        assert cluster.messages_blocked > 0
        assert (0, 1) in notified


class TestRunnerSuite:
    def test_all_algorithms_converge_to_same_state(self):
        topo = partial_mesh(6, 2)
        results = run_suite(ALL, lambda: GSetWorkload(6, rounds=6), topo)
        assert all(r.converged for r in results.values())
        assert len({r.final_state_units for r in results.values()}) == 1
        assert all(r.final_state_units == 36 for r in results.values())

    def test_gcounter_workload_converges_everywhere(self):
        topo = tree(7, 2)
        results = run_suite(ALL, lambda: GCounterWorkload(7, rounds=5), topo)
        assert all(r.converged for r in results.values())
        assert all(r.final_state_units == 7 for r in results.values())

    def test_ratio_table(self):
        topo = partial_mesh(6, 2)
        results = run_suite(
            {"delta-based": classic, "delta-based-bp-rr": delta_bp_rr},
            lambda: GSetWorkload(6, rounds=6),
            topo,
        )
        ratios = ratio_table(
            results, "delta-based-bp-rr", lambda r: r.transmission_units()
        )
        assert ratios["delta-based-bp-rr"] == 1.0
        assert ratios["delta-based"] > 1.0

    def test_classic_no_better_than_state_based_on_mesh(self):
        """The Figure 1 anomaly, at miniature scale."""
        topo = partial_mesh(8, 4)
        results = run_suite(
            {"state-based": StateBased, "delta-based": classic},
            lambda: GSetWorkload(8, rounds=10),
            topo,
        )
        classic_units = results["delta-based"].transmission_units()
        state_units = results["state-based"].transmission_units()
        assert classic_units > 0.5 * state_units  # no real improvement

    def test_bp_suffices_on_tree(self):
        topo = tree(7, 2)
        results = run_suite(
            {"delta-based-bp": delta_bp, "delta-based-bp-rr": delta_bp_rr},
            lambda: GSetWorkload(7, rounds=8),
            topo,
        )
        bp = results["delta-based-bp"].transmission_units()
        bprr = results["delta-based-bp-rr"].transmission_units()
        assert bp == bprr  # RR adds nothing without cycles

    def test_rr_dominates_on_mesh(self):
        topo = partial_mesh(8, 4)
        results = run_suite(
            {
                "delta-based-bp": delta_bp,
                "delta-based-rr": delta_rr,
                "delta-based-bp-rr": delta_bp_rr,
            },
            lambda: GSetWorkload(8, rounds=10),
            topo,
        )
        assert (
            results["delta-based-rr"].transmission_units()
            < results["delta-based-bp"].transmission_units()
        )
        assert (
            results["delta-based-bp-rr"].transmission_units()
            <= results["delta-based-rr"].transmission_units()
        )

    def test_result_metadata_fields(self):
        result = run_experiment(classic, GSetWorkload(3, rounds=2), line(3))
        assert result.algorithm == "delta-based"
        assert result.workload == "gset"
        assert result.topology == "line(3)"
        assert result.rounds == 2
        assert result.duration_ms > 0
        assert result.processing_seconds() > 0
        assert result.processing_units() > 0
