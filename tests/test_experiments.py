"""Integration tests for the figure/table drivers at reduced scale.

Each test runs the driver at a size small enough for CI and asserts the
*shape* claims of the corresponding paper artifact — who wins, in which
direction the curves move — not absolute magnitudes.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_figure1,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_table1,
    run_table2,
)
from repro.experiments.retwis_sweep import RetwisConfig


@pytest.fixture(scope="module")
def figure1():
    return run_figure1(nodes=15, rounds=15)


@pytest.fixture(scope="module")
def figure7():
    return run_figure7(nodes=15, rounds=12)


@pytest.fixture(scope="module")
def figure9():
    return run_figure9(sizes=(8, 16), rounds=10)


@pytest.fixture(scope="module")
def figure10():
    return run_figure10(nodes=15, rounds=12)


@pytest.fixture(scope="module")
def retwis_results():
    config = RetwisConfig(nodes=8, users=120, rounds=10, ops_per_node=4)
    coefficients = (0.5, 1.5)
    return (
        run_figure11(coefficients=coefficients, config=config),
        run_figure12(coefficients=coefficients, config=config),
    )


class TestFigure1:
    def test_classic_delta_no_better_than_state_based(self, figure1):
        assert figure1.transmission_ratio() > 0.9

    def test_delta_has_cpu_overhead(self, figure1):
        assert figure1.cpu_ratio_wall() > 1.0

    def test_series_monotone(self, figure1):
        series = figure1.cumulative_series("state-based")
        totals = [units for _, units in series]
        assert totals == sorted(totals)

    def test_render(self, figure1):
        text = figure1.render()
        assert "Figure 1" in text
        assert "state-based" in text


class TestTable1:
    def test_all_rows_verified(self):
        result = run_table1()
        assert result.all_verified()
        assert "GMap 100%" in result.render()


class TestFigure7:
    def test_bp_rr_is_the_baseline(self, figure7):
        for workload in ("gset", "gcounter"):
            for topology in ("tree", "mesh"):
                assert figure7.ratio(workload, topology, "delta-based-bp-rr") == 1.0

    def test_classic_close_to_state_based_on_mesh(self, figure7):
        classic = figure7.ratio("gset", "mesh", "delta-based")
        state = figure7.ratio("gset", "mesh", "state-based")
        assert classic > 0.9 * state

    def test_bp_suffices_on_tree(self, figure7):
        assert figure7.ratio("gset", "tree", "delta-based-bp") == 1.0

    def test_bp_has_little_effect_on_mesh(self, figure7):
        bp = figure7.ratio("gset", "mesh", "delta-based-bp")
        classic = figure7.ratio("gset", "mesh", "delta-based")
        assert bp > 0.8 * classic

    def test_rr_contributes_most_on_mesh(self, figure7):
        rr = figure7.ratio("gset", "mesh", "delta-based-rr")
        bp = figure7.ratio("gset", "mesh", "delta-based-bp")
        assert rr < 0.3 * bp

    def test_scuttlebutt_beats_classic_on_gset(self, figure7):
        assert figure7.ratio("gset", "mesh", "scuttlebutt") < figure7.ratio(
            "gset", "mesh", "delta-based"
        )

    def test_scuttlebutt_loses_on_gcounter(self, figure7):
        """Opaque values cannot compress under joins (paper §V-B.1)."""
        assert figure7.ratio("gcounter", "mesh", "scuttlebutt") > figure7.ratio(
            "gcounter", "mesh", "state-based"
        )

    def test_op_based_loses_on_gcounter(self, figure7):
        assert figure7.ratio("gcounter", "mesh", "op-based") > figure7.ratio(
            "gcounter", "mesh", "state-based"
        )

    def test_gcounter_bp_rr_gain_is_modest(self, figure7):
        """BP+RR cannot do much when ~every entry changes every round."""
        assert figure7.ratio("gcounter", "mesh", "state-based") < 2.0


class TestFigure8:
    @pytest.fixture(scope="class")
    def figure8(self):
        return run_figure8(nodes=15, rounds=12)

    def test_rr_crucial_on_mesh_for_every_contention(self, figure8):
        for workload in ("gmap-10", "gmap-30", "gmap-60", "gmap-100"):
            rr = figure8.ratio(workload, "mesh", "delta-based-rr")
            bp = figure8.ratio(workload, "mesh", "delta-based-bp")
            assert rr < bp

    def test_bp_rr_reduction_shrinks_with_contention(self, figure8):
        """GMap 10% benefits more than GMap 100% (Fig. 8 trend)."""
        low = figure8.reduction_vs_state_based("gmap-10", "mesh", "delta-based-bp-rr")
        high = figure8.reduction_vs_state_based("gmap-100", "mesh", "delta-based-bp-rr")
        assert low > high

    def test_gmap100_modest_improvement(self, figure8):
        reduction = figure8.reduction_vs_state_based(
            "gmap-100", "mesh", "delta-based-bp-rr"
        )
        assert 0.0 < reduction < 0.6


class TestFigure9:
    def test_delta_metadata_share_is_small(self, figure9):
        assert figure9.metadata_fraction(16, "delta-based-bp-rr") < 0.15

    def test_vector_protocols_metadata_dominates(self, figure9):
        for label in ("scuttlebutt", "scuttlebutt-gc", "op-based"):
            assert figure9.metadata_fraction(16, label) > 0.6

    def test_growth_shapes(self, figure9):
        assert 0.7 < figure9.growth_exponent("scuttlebutt") < 1.5
        assert figure9.growth_exponent("scuttlebutt-gc") > 1.5
        assert figure9.growth_exponent("delta-based-bp-rr") < 0.5

    def test_gc_metadata_heavier_than_plain(self, figure9):
        assert figure9.metadata_per_node(16, "scuttlebutt-gc") > figure9.metadata_per_node(
            16, "scuttlebutt"
        )


class TestFigure10:
    def test_state_based_is_memory_optimal(self, figure10):
        for workload in ("gcounter", "gset", "gmap-10", "gmap-100"):
            assert figure10.memory_ratio(workload, "state-based") <= 1.0

    def test_classic_overhead_over_bp_rr(self, figure10):
        for workload in ("gset", "gmap-10"):
            assert figure10.memory_ratio(workload, "delta-based") > 1.0

    def test_scuttlebutt_memory_only_deteriorates_without_gc(self, figure10):
        """"As long as new updates exist, the memory consumption for
        Scuttlebutt can only deteriorate" — its store is never pruned,
        so its footprint must grow faster than the GC variant's."""
        assert figure10.memory_ratio("gcounter", "scuttlebutt") > 1.0
        assert figure10.memory_ratio("gcounter", "scuttlebutt-gc") > 1.0
        cell = figure10.grid.cell("gcounter", "mesh")
        for label in ("scuttlebutt", "scuttlebutt-gc"):
            metrics = cell.results[label].metrics
            halves = metrics.split_at(metrics.last_time() / 2)
            growth = (
                halves[1].average_memory_units()
                / max(halves[0].average_memory_units(), 1e-9)
            )
            if label == "scuttlebutt":
                plain_growth = growth
            else:
                gc_growth = growth
        assert plain_growth > gc_growth

    def test_vector_protocols_highest_on_gcounter(self, figure10):
        vector = min(
            figure10.memory_ratio("gcounter", label)
            for label in ("scuttlebutt", "scuttlebutt-gc", "op-based")
        )
        delta = max(
            figure10.memory_ratio("gcounter", label)
            for label in ("delta-based", "delta-based-bp", "delta-based-bp-rr")
        )
        assert vector > delta


class TestTable2:
    def test_mix_and_rules(self):
        result = run_table2(ops=5000)
        assert result.mix_close_to_paper()
        assert result.update_rules_hold()


class TestFigures11And12:
    def test_gap_widens_with_contention(self, retwis_results):
        figure11, _ = retwis_results
        assert figure11.bandwidth_gap(1.5) > figure11.bandwidth_gap(0.5)

    def test_classic_near_optimal_at_low_contention(self, retwis_results):
        figure11, _ = retwis_results
        assert figure11.bandwidth_gap(0.5) < 2.5

    def test_memory_gap_widens(self, retwis_results):
        figure11, _ = retwis_results
        low = figure11.memory(0.5, "delta-based") / figure11.memory(
            0.5, "delta-based-bp-rr"
        )
        high = figure11.memory(1.5, "delta-based") / figure11.memory(
            1.5, "delta-based-bp-rr"
        )
        assert high > low

    def test_cpu_overhead_grows_with_contention(self, retwis_results):
        _, figure12 = retwis_results
        assert figure12.cpu_ratio_proxy(1.5) > figure12.cpu_ratio_proxy(0.5)
        assert figure12.overhead_proxy(1.5) > 0.5

    def test_renders(self, retwis_results):
        figure11, figure12 = retwis_results
        assert "Figure 11" in figure11.render()
        assert "Figure 12" in figure12.render()


class TestRegistry:
    def test_every_paper_artifact_has_a_driver(self):
        paper_artifacts = {
            "figure1",
            "table1",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "table2",
            "figure11",
            "figure12",
        }
        assert paper_artifacts <= set(EXPERIMENTS)
        # Extensions beyond the paper's evaluation section.
        assert set(EXPERIMENTS) - paper_artifacts == {"appendixb"}
