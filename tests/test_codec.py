"""Wire codec: round-trips, canonical bytes, and malformed-input safety.

Three layers of guarantee:

* **round-trip** — ``decode(encode(x)) == x`` for every lattice family
  in the library, hypothesis-driven (grow-only constructs from the
  shared strategies, causal states from random executions);
* **canonical form** — equal values encode to identical bytes, however
  they were constructed (collections are sorted before encoding);
* **robustness** — truncated or corrupted inputs raise
  :class:`~repro.codec.CodecError`, never return garbage values.
"""

import io

import pytest
from hypothesis import given, strategies as st

from repro.causal import Atom, AWSet, CausalMVRegister, CCounter, Dot, CausalContext
from repro.codec import (
    CodecError,
    UnsupportedType,
    decode,
    encode,
    read_atom,
    read_svarint,
    read_uvarint,
    write_atom,
    write_svarint,
    write_uvarint,
)
from repro.lattice import LexPair, LinearSum, MapLattice, MaxElements, MaxInt, SetLattice

from conftest import ALL_LATTICE_STRATEGIES

SERIALIZABLE_FAMILIES = sorted(set(ALL_LATTICE_STRATEGIES) - {"MaxElements"})

serializable_values = st.sampled_from(SERIALIZABLE_FAMILIES).flatmap(
    lambda family: ALL_LATTICE_STRATEGIES[family]
)


# ---------------------------------------------------------------------------
# Varints and atoms.
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**80))
def test_uvarint_roundtrip(value):
    out = io.BytesIO()
    write_uvarint(out, value)
    assert read_uvarint(io.BytesIO(out.getvalue())) == value


@given(st.integers(min_value=-(2**70), max_value=2**70))
def test_svarint_roundtrip(value):
    out = io.BytesIO()
    write_svarint(out, value)
    assert read_svarint(io.BytesIO(out.getvalue())) == value


def test_uvarint_rejects_negative():
    with pytest.raises(CodecError):
        write_uvarint(io.BytesIO(), -1)


atoms = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)


@given(atoms)
def test_atom_roundtrip(value):
    out = io.BytesIO()
    write_atom(out, value)
    assert read_atom(io.BytesIO(out.getvalue())) == value


def test_atom_rejects_unsupported_payloads():
    with pytest.raises(UnsupportedType):
        write_atom(io.BytesIO(), object())


# ---------------------------------------------------------------------------
# Lattice round-trips.
# ---------------------------------------------------------------------------


@given(serializable_values)
def test_lattice_roundtrip(value):
    recovered = decode(encode(value))
    assert recovered == value
    assert type(recovered) is type(value)


@given(serializable_values)
def test_equal_values_encode_identically(value):
    """Canonical bytes: re-encoding a decoded value is a fixed point."""
    first = encode(value)
    assert encode(decode(first)) == first


def test_map_encoding_is_order_independent():
    forward = MapLattice({"a": MaxInt(1), "b": MaxInt(2)})
    backward = MapLattice({"b": MaxInt(2), "a": MaxInt(1)})
    assert encode(forward) == encode(backward)


def test_lex_and_pair_encodings_differ():
    from repro.lattice import PairLattice

    pair = PairLattice(MaxInt(1), MaxInt(2))
    lex = LexPair(MaxInt(1), MaxInt(2))
    assert encode(pair) != encode(lex)
    assert decode(encode(lex)) == lex


def test_linear_sum_roundtrip_both_sides():
    left = LinearSum.left(MaxInt(3))
    right = LinearSum.right(SetLattice({"x"}), left_bottom=MaxInt(0))
    assert decode(encode(left)) == left
    assert decode(encode(right)) == right


def test_max_elements_is_rejected():
    antichain = MaxElements({2, 3}, dominates=lambda x, y: x % y == 0)
    with pytest.raises(UnsupportedType):
        encode(antichain)


# ---------------------------------------------------------------------------
# Causal round-trips.
# ---------------------------------------------------------------------------


def _churned_awset():
    a, b = AWSet("A"), AWSet("B")
    for i in range(6):
        a.add(f"e{i}")
        b.add(f"e{i + 3}")
    b.merge(a)
    for i in range(0, 6, 2):
        b.remove(f"e{i}")
    a.merge(b)
    return a.state


def test_awset_state_roundtrip():
    state = _churned_awset()
    recovered = decode(encode(state))
    assert recovered == state
    assert recovered.store == state.store
    assert recovered.context == state.context


def test_awset_delta_roundtrip():
    a = AWSet("A")
    a.add("x")
    delta = a.remove("x")  # context-only payload
    assert decode(encode(delta)) == delta


def test_mvregister_roundtrip_preserves_payloads():
    r = CausalMVRegister("A")
    r.write(("tuple", 1, None))
    assert decode(encode(r.state)) == r.state


def test_ccounter_roundtrip():
    c = CCounter("A")
    c.increment(41)
    c.increment()
    assert decode(encode(c.state)) == c.state


def test_atom_lattice_roundtrip():
    assert decode(encode(Atom("payload"))) == Atom("payload")
    assert decode(encode(Atom())).is_bottom


def test_context_cloud_survives():
    from repro.causal import Causal, DotSet

    context = CausalContext.from_dots([Dot("A", 1), Dot("A", 5), Dot("B", 2)])
    state = Causal(DotSet([Dot("A", 5)]), context)
    recovered = decode(encode(state))
    assert recovered == state
    assert recovered.context.cloud == context.cloud


def test_join_of_decoded_equals_decoded_join():
    """The codec commutes with the lattice structure."""
    a, b = AWSet("A"), AWSet("B")
    a.add("x")
    b.add("y")
    direct = a.state.join(b.state)
    via_wire = decode(encode(a.state)).join(decode(encode(b.state)))
    assert via_wire == direct


# ---------------------------------------------------------------------------
# Robustness.
# ---------------------------------------------------------------------------


def test_empty_input_is_rejected():
    with pytest.raises(CodecError):
        decode(b"")


def test_unknown_tag_is_rejected():
    with pytest.raises(CodecError):
        decode(b"\xff")


def test_trailing_bytes_are_rejected():
    payload = encode(MaxInt(7)) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode(payload)


@given(st.sampled_from(SERIALIZABLE_FAMILIES).flatmap(
    lambda family: ALL_LATTICE_STRATEGIES[family]
), st.integers(min_value=1, max_value=8))
def test_truncation_never_returns_a_value(value, cut):
    payload = encode(value)
    if len(payload) <= cut:
        return
    with pytest.raises(CodecError):
        decode(payload[:-cut])


def test_overlong_varint_is_rejected():
    with pytest.raises(CodecError, match="too long"):
        read_uvarint(io.BytesIO(b"\x80" * 30))


@given(st.binary(max_size=64))
def test_random_bytes_never_crash_the_decoder(junk):
    """Arbitrary input either decodes or raises a ValueError family error.

    (CodecError is a ValueError; a malformed string payload surfaces as
    UnicodeDecodeError, also a ValueError.  Recursion is bounded by the
    input length, so no junk can take the decoder down.)
    """
    try:
        decode(junk)
    except (CodecError, ValueError):
        pass


@given(serializable_values, st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=10**6))
def test_single_byte_corruption_never_crashes(value, replacement, position):
    payload = bytearray(encode(value))
    if not payload:
        return
    index = position % len(payload)
    payload[index] = replacement
    try:
        recovered = decode(bytes(payload))
    except CodecError:
        return
    # A lucky corruption may still parse — it must yield a lattice value
    # (possibly a semantically different one; integrity beyond parsing
    # is the transport's concern, e.g. a checksum).
    from repro.lattice.base import Lattice

    assert isinstance(recovered, Lattice)
