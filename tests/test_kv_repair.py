"""Repair-path correctness across every inner protocol and both modes.

The store's recovery path — blanket full-state pushes or
divergence-driven digest repair — must reconcile a replica group after
the two faults Algorithm 1's cleared δ-buffers cannot survive: a
partition with writes on both sides, and a crash that loses the disk.
Beyond per-shard convergence, repair must leave every inner protocol's
*bookkeeping* truthful: absorbed content flows through
``Synchronizer.absorb_state``, so a Scuttlebutt replica versions
repaired deltas (its summary vector keeps covering what it holds) and a
delta-based replica buffers them for onward propagation, instead of the
old silent ``inner.state = inner.state.join(...)`` bypass.
"""

import pytest

from repro.kv import (
    AntiEntropyConfig,
    AntiEntropyScheduler,
    HashRing,
    KVCluster,
    KVStore,
    KVUpdate,
)
from repro.lattice import MapLattice
from repro.sync import (
    MerkleSync,
    Scuttlebutt,
    ScuttlebuttGC,
    StateBased,
    classic,
    delta_bp_rr,
    keyed_bp_rr,
)

#: Every inner protocol the store supports, including both Scuttlebutt
#: variants — each must survive the fault schedule under repair.
INNER = {
    "state-based": StateBased,
    "delta-based": classic,
    "delta-based-bp-rr": delta_bp_rr,
    "keyed-delta-bp-rr": keyed_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "scuttlebutt-gc": ScuttlebuttGC,
    "merkle": MerkleSync,
}

REPAIR = dict(repair_interval=2, repair_fanout=8)


def scuttlebutt_bookkeeping_consistent(cluster: KVCluster) -> None:
    """The vector covers the store, and the store reconstructs the state.

    ``state == ⊔ store`` is what makes a Scuttlebutt digest answer
    complete: a fresh peer (empty vector) asking this replica must be
    able to learn everything the replica holds.  GC may prune deltas
    whose versions every replica covers, so it only guarantees
    ``state ⊒ ⊔ store``.
    """
    for node in cluster.nodes:
        assert isinstance(node, KVStore)
        for shard, sync in node.shards.items():
            if not isinstance(sync, Scuttlebutt):
                continue
            for (origin, seq) in sync.store:
                assert seq <= sync.vector.get(origin, 0), (
                    f"replica {node.replica} shard {shard}: stored version "
                    f"({origin}, {seq}) not covered by vector {sync.vector}"
                )
            rebuilt = sync.bottom
            for delta in sync.store.values():
                rebuilt = rebuilt.join(delta)
            if isinstance(sync, ScuttlebuttGC):
                assert rebuilt.leq(sync.state)
            else:
                assert rebuilt == sync.state, (
                    f"replica {node.replica} shard {shard}: state holds "
                    "content its delta store cannot serve"
                )


@pytest.mark.parametrize("mode", ["blanket", "digest"])
@pytest.mark.parametrize("algorithm", sorted(INNER))
def test_faults_reconcile_under_repair(algorithm, mode):
    """partition + heal + crash(lose_state) converges for every protocol."""
    ring = HashRing(range(4), n_shards=8, replication=3)
    cluster = KVCluster(
        ring,
        INNER[algorithm],
        antientropy=AntiEntropyConfig(repair_mode=mode, **REPAIR),
    )
    for i in range(12):
        cluster.update(f"aws:{i}", "add", f"e{i}")
    cluster.run_round(updates=None)
    cluster.drain()

    # Partition: writes keep landing on both sides of the cut; the
    # flushed δ-groups crossing it are refused and gone.
    cluster.partition([0, 1])
    cluster.update("set:px", "add", "west")
    for owner in ring.owners("set:px"):
        cluster.apply_update(owner, KVUpdate("set:px", "add", (f"from-{owner}",)))
    for _ in range(2):
        cluster.run_round(updates=None)
    cluster.heal()
    cluster.drain()
    assert cluster.converged(), f"{algorithm}/{mode} diverged after partition"

    # Crash with disk loss: the rebuilt replica holds nothing and must
    # be refilled through the repair path.
    cluster.crash(1, lose_state=True)
    cluster.update("aws:0", "add", "while-down")
    cluster.run_round(updates=None)
    cluster.recover(1)
    cluster.drain()
    assert cluster.converged(), f"{algorithm}/{mode} diverged after crash"
    assert cluster.value("aws:0") >= {"e0", "while-down"}
    for i in range(1, 12):
        assert cluster.value(f"aws:{i}") == frozenset({f"e{i}"})

    scuttlebutt_bookkeeping_consistent(cluster)


class TestAbsorbState:
    """The protocol-aware repair hook, per synchronizer."""

    def keyspace(self, *keys):
        from repro.lattice import SetLattice

        return MapLattice({k: SetLattice({f"v-{k}"}) for k in keys})

    def test_default_returns_the_inflating_delta(self):
        node = StateBased(0, [1], MapLattice(), 2)
        first = node.absorb_state(self.keyspace("a", "b"))
        assert first == self.keyspace("a", "b")
        again = node.absorb_state(self.keyspace("a"))
        assert again.is_bottom
        assert node.state == self.keyspace("a", "b")

    def test_delta_based_buffers_the_novelty(self):
        node = delta_bp_rr(0, [1, 2], MapLattice(), 3)
        node.absorb_state(self.keyspace("a"), src=1)
        assert node.state == self.keyspace("a")
        # The repaired content propagates: BP skips only the source.
        sends = node.sync_messages()
        assert [send.dst for send in sends] == [2]
        assert sends[0].message.payload == self.keyspace("a")

    def test_keyed_buffers_per_object_novelty(self):
        node = keyed_bp_rr(0, [1, 2], MapLattice(), 3)
        node.local_update(lambda state: self.keyspace("a"))
        node.sync_messages()  # flush
        absorbed = node.absorb_state(self.keyspace("a", "b"), src=1)
        assert absorbed == self.keyspace("b")  # only the novelty
        sends = node.sync_messages()
        assert [send.dst for send in sends] == [2]

    def test_scuttlebutt_versions_repaired_content(self):
        node = Scuttlebutt(0, [1], MapLattice(), 2)
        absorbed = node.absorb_state(self.keyspace("a"))
        assert absorbed == self.keyspace("a")
        # The bug this hook fixes: the vector must cover the content.
        assert node.vector == {0: 1}
        assert node.store[(0, 1)] == self.keyspace("a")
        # A fresh peer's empty digest now learns the repaired content.
        replies = node.handle_message(1, node.sync_messages()[0].message.__class__(
            kind="digest", payload={}, payload_units=0, payload_bytes=0,
            metadata_bytes=0, metadata_units=0,
        ))
        assert replies and replies[0].message.payload == [((0, 1), self.keyspace("a"))]

    def test_scuttlebutt_absorbing_known_content_is_free(self):
        node = Scuttlebutt(0, [1], MapLattice(), 2)
        node.absorb_state(self.keyspace("a"))
        again = node.absorb_state(self.keyspace("a"))
        assert again.is_bottom
        assert node.vector == {0: 1}
        assert len(node.store) == 1


class TestSchedulerPhase:
    @pytest.mark.parametrize("lose_state", [False, True])
    def test_recovered_store_rejoins_the_cluster_round(self, lose_state):
        """Downtime must not desynchronize the repair cadence.

        Down nodes do not tick, so a crashed replica — rebuilt from
        bottom or not — lags the cluster by its whole downtime until
        ``recover`` realigns it with the co-owners that kept running.
        """
        ring = HashRing(range(3), n_shards=4, replication=3)
        cluster = KVCluster(
            ring, keyed_bp_rr, antientropy=AntiEntropyConfig(repair_interval=5)
        )
        cluster.update("set:x", "add", "a")
        for _ in range(3):
            cluster.run_round(updates=None)
        cluster.crash(1, lose_state=lose_state)
        for _ in range(3):
            cluster.run_round(updates=None)  # the downtime: no ticks at 1
        cluster.recover(1)
        recovered = cluster.nodes[1]
        survivor = cluster.nodes[0]
        assert isinstance(recovered, KVStore) and isinstance(survivor, KVStore)
        assert recovered.scheduler.tick == cluster.rounds_run
        assert recovered.scheduler.tick == survivor.scheduler.tick

    def test_restore_clock_is_forwarded(self):
        ring = HashRing(range(2), n_shards=2, replication=2)
        from repro.kv import kv_store_factory
        store = kv_store_factory(ring, keyed_bp_rr)(0, [1], MapLattice(), 2)
        store.restore_clock(17)
        assert store.scheduler.tick == 17


class TestColdnessScheduling:
    def config(self, **kwargs):
        defaults = dict(repair_interval=3, repair_fanout=8, repair_mode="digest")
        defaults.update(kwargs)
        return AntiEntropyConfig(**defaults)

    def test_cold_paths_are_probed_once_per_interval(self):
        scheduler = AntiEntropyScheduler(self.config(), [0], {0: (1, 2)})
        probed = []
        for _ in range(7):
            _, blanket, probes = scheduler.plan({0: StateBased(0, [1, 2], MapLattice(), 3)})
            assert blanket == []
            probed.append(probes)
        # Cold from tick 3 on, re-probed every interval, never spammed.
        assert probed[:2] == [[], []]
        assert probed[2] == [(0, (1, 2))]
        assert probed[3] == probed[4] == []
        assert probed[5] == [(0, (1, 2))]

    def test_delta_activity_resets_the_clock(self):
        scheduler = AntiEntropyScheduler(self.config(), [0], {0: (1,)})
        inner = StateBased(0, [1], MapLattice(), 2)
        for _ in range(2):
            scheduler.plan({0: inner})
            scheduler.note_delta_activity(0, 1)
        for _ in range(2):
            _, _, probes = scheduler.plan({0: inner})
            assert probes == []
        # Activity stopped two ticks ago; one more cold tick trips it.
        _, _, probes = scheduler.plan({0: inner})
        assert probes == [(0, (1,))]

    def test_suspicion_marks_shared_shards(self):
        scheduler = AntiEntropyScheduler(
            self.config(), [0, 1], {0: (1, 2), 1: (2,)}
        )
        inner = {0: StateBased(0, [1, 2], MapLattice(), 3),
                 1: StateBased(0, [2], MapLattice(), 3)}
        scheduler.plan(inner)
        scheduler.note_delta_activity(0, 1)
        scheduler.note_delta_activity(0, 2)
        scheduler.note_delta_activity(1, 2)
        scheduler.note_peer_unreachable(2)
        # Peer 2's δ-paths are suspect and probed on the very next tick
        # even though they were just active; peer 1's path is not.
        _, _, probes = scheduler.plan(inner)
        assert probes == [(0, (2,)), (1, (2,))]
        # A probe is in flight: the rate limiter holds further probes.
        _, _, probes = scheduler.plan(inner)
        assert probes == []

    def test_cold_probes_respect_the_pair_tiebreak(self):
        """Only the lower-id side of a pair initiates coldness probes."""
        low = AntiEntropyScheduler(self.config(), [0], {0: (5,)}, replica=2)
        high = AntiEntropyScheduler(self.config(), [0], {0: (2,)}, replica=5)
        inner_low = {0: StateBased(2, [5], MapLattice(), 6)}
        inner_high = {0: StateBased(5, [2], MapLattice(), 6)}
        low_fired = []
        for _ in range(4):
            low_fired.append(low.plan(inner_low)[2])
            assert high.plan(inner_high)[2] == []
        assert [(0, (5,))] in low_fired

    def test_suspicion_overrides_the_tiebreak(self):
        """A blocked send is evidence only its observer holds: the
        higher-id replica must probe a suspect lower-id peer, or lost
        δ-groups could stay unrepaired while ongoing traffic keeps the
        other side's coldness clock warm."""
        scheduler = AntiEntropyScheduler(self.config(), [0], {0: (2,)}, replica=5)
        inner = {0: StateBased(5, [2], MapLattice(), 6)}
        scheduler.plan(inner)
        scheduler.note_peer_unreachable(2)
        _, _, probes = scheduler.plan(inner)
        assert probes == [(0, (2,))]

    def test_blanket_mode_never_probes(self):
        scheduler = AntiEntropyScheduler(
            self.config(repair_mode="blanket", repair_interval=2), [0], {0: (1,)}
        )
        inner = {0: StateBased(0, [1], MapLattice(), 2)}
        for tick in range(1, 5):
            _, blanket, probes = scheduler.plan(inner)
            assert probes == []
            assert blanket == ([0] if tick % 2 == 0 else [])

    def test_repair_mode_validated(self):
        with pytest.raises(ValueError, match="repair_mode"):
            AntiEntropyConfig(repair_mode="psychic")


class TestRepairByteAccounting:
    def test_digest_repair_is_counted_and_cheaper(self):
        def run(mode):
            ring = HashRing(range(4), n_shards=8, replication=3)
            cluster = KVCluster(
                ring,
                keyed_bp_rr,
                antientropy=AntiEntropyConfig(repair_mode=mode, **REPAIR),
            )
            for i in range(12):
                cluster.update(f"set:{i}", "add", f"e{i}")
            cluster.run_round(updates=None)
            cluster.drain()
            cluster.crash(3, lose_state=True)
            cluster.run_round(updates=None)
            cluster.recover(3)
            cluster.drain()
            assert cluster.converged()
            return cluster.scheduler_stats()

        blanket, digest = run("blanket"), run("digest")
        assert blanket["repairs"] > 0 and blanket["probes"] == 0
        assert digest["probes"] > 0
        assert 0 < digest["repair_payload_bytes"] < blanket["repair_payload_bytes"]

    def test_blocked_repair_pushes_are_not_counted(self):
        """Repair traffic is accounted on arrival: pushes refused by a
        down peer never crossed the wire and must not count."""
        ring = HashRing(range(2), n_shards=2, replication=2)
        cluster = KVCluster(
            ring,
            keyed_bp_rr,
            antientropy=AntiEntropyConfig(
                repair_mode="blanket", repair_interval=1, repair_fanout=4
            ),
        )
        cluster.update("set:a", "add", "x")
        for _ in range(2):
            cluster.run_round(updates=None)
        base = cluster.scheduler_stats()["repair_payload_bytes"]
        assert base > 0
        cluster.crash(1)
        for _ in range(3):
            cluster.run_round(updates=None)
        assert cluster.messages_blocked > 0
        assert cluster.scheduler_stats()["repair_payload_bytes"] == base

    def test_rebuild_keeps_cluster_wide_repair_accounting(self):
        """crash(lose_state=True) must not erase the victim's counters."""
        ring = HashRing(range(3), n_shards=4, replication=3)
        cluster = KVCluster(
            ring,
            keyed_bp_rr,
            antientropy=AntiEntropyConfig(
                repair_mode="blanket", repair_interval=1, repair_fanout=4
            ),
        )
        cluster.update("set:a", "add", "x")
        for _ in range(2):
            cluster.run_round(updates=None)
        before = cluster.scheduler_stats()
        assert before["repair_payload_bytes"] > 0
        cluster.crash(2, lose_state=True)
        after = cluster.scheduler_stats()
        assert after["repair_payload_bytes"] == before["repair_payload_bytes"]
        assert after["repairs"] == before["repairs"]
