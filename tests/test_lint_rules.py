"""Golden corpus for every lint rule: triggers and near-misses.

Each rule gets at least one snippet that *must* produce a finding and
one near-miss that *must* stay clean — the near-misses are the actual
specification, since they pin where the rule stops.  Snippets are
linted in-memory through :func:`load_module`, with virtual paths chosen
to exercise path-scoped rules (``repro/sim/...`` is deterministic core,
``repro/serve/...`` is not).
"""

import ast

from repro.lint import ALL_RULES, run_rules
from repro.lint.engine import Project, load_module
from repro.lint.rules.determinism import in_deterministic_core


def lint_sources(sources):
    """Lint a {virtual path: source} mapping with the full rule set."""
    project = Project(
        modules=[load_module(path, text) for path, text in sources.items()]
    )
    return run_rules(project, ALL_RULES())


def rules_hit(sources):
    return sorted({f.rule for f in lint_sources(sources).findings})


class TestDetRng:
    def test_global_rng_call_triggers(self):
        assert rules_hit(
            {"anywhere.py": "import random\nx = random.choice([1, 2])\n"}
        ) == ["det-rng"]

    def test_from_import_alias_resolved(self):
        assert rules_hit(
            {"anywhere.py": "from random import shuffle as mix\nmix([1])\n"}
        ) == ["det-rng"]

    def test_unseeded_random_instance_triggers(self):
        assert rules_hit(
            {"anywhere.py": "import random\nrng = random.Random()\n"}
        ) == ["det-rng"]

    def test_seeded_stream_is_clean(self):
        source = (
            "import random\n"
            "rng = random.Random(1234)\n"
            "x = rng.choice([1, 2])\n"
            "y = random.Random(seed=7)\n"
        )
        assert rules_hit({"anywhere.py": source}) == []


class TestDetClock:
    CLOCK = "import time\nnow = time.time()\n"

    def test_wall_clock_in_core_triggers(self):
        assert rules_hit({"src/repro/sim/runner.py": self.CLOCK}) == [
            "det-clock"
        ]

    def test_same_code_outside_core_is_clean(self):
        # The serving stack and hot-path timers are real-time by design.
        assert rules_hit({"src/repro/serve/replica.py": self.CLOCK}) == []
        assert rules_hit({"src/repro/net/tcp.py": self.CLOCK}) == []

    def test_environ_read_in_core_triggers(self):
        source = "import os\nmode = os.environ['MODE']\n"
        assert rules_hit({"src/repro/kv/store.py": source}) == ["det-clock"]

    def test_os_path_attribute_is_not_environ(self):
        source = "import os\np = os.path.join('a', 'b')\n"
        assert rules_hit({"src/repro/kv/store.py": source}) == []

    def test_core_boundary_matches_the_documented_split(self):
        assert in_deterministic_core("src/repro/net/sim.py")
        assert in_deterministic_core("src/repro/net/transport.py")
        assert not in_deterministic_core("src/repro/net/tcp.py")
        assert not in_deterministic_core("src/repro/net/runtime.py")
        assert not in_deterministic_core("src/repro/serve/cluster.py")


class TestWireRegistry:
    def test_kind_without_codec_entry_triggers(self):
        source = (
            'WIRE_KINDS = ("alpha", "beta")\n'
            "_WIRE_CODECS = {\n"
            '    "alpha": (1, 2),\n'
            "}\n"
        )
        result = lint_sources({"codec.py": source})
        (finding,) = result.findings
        assert finding.rule == "wire-registry"
        assert "'beta'" in finding.message

    def test_codec_entry_without_kind_triggers(self):
        source = (
            'WIRE_KINDS = ("alpha",)\n'
            '_WIRE_CODECS = {"alpha": (1, 2), "ghost": (3, 4)}\n'
        )
        result = lint_sources({"codec.py": source})
        (finding,) = result.findings
        assert "'ghost'" in finding.message

    def test_non_pair_value_triggers(self):
        source = (
            'WIRE_KINDS = ("alpha",)\n_WIRE_CODECS = {"alpha": (1,)}\n'
        )
        assert rules_hit({"codec.py": source}) == ["wire-registry"]

    def test_complete_table_is_clean(self):
        source = (
            'WIRE_KINDS = ("alpha", "beta")\n'
            '_WIRE_CODECS = {"alpha": (1, 2), "beta": (3, 4)}\n'
        )
        assert rules_hit({"codec.py": source}) == []

    def test_kinds_without_any_table_triggers(self):
        assert rules_hit({"codec.py": 'WIRE_KINDS = ("alpha",)\n'}) == [
            "wire-registry"
        ]


class TestVerbRegistry:
    FRAMES = (
        "GET = 1\nPUT = 2\n"
        '_VERB_NAMES = {GET: "get", PUT: "put"}\n'
    )

    def test_undispatched_verb_triggers(self):
        handler = (
            "import frames\n"
            "def handle(verb):\n"
            "    if verb == frames.GET:\n"
            "        return 'get'\n"
        )
        result = lint_sources(
            {"frames.py": self.FRAMES, "replica.py": handler}
        )
        (finding,) = result.findings
        assert finding.rule == "verb-registry"
        assert "PUT" in finding.message

    def test_fully_dispatched_verbs_are_clean(self):
        handler = (
            "import frames\n"
            "def handle(verb):\n"
            "    if verb == frames.GET:\n"
            "        return 'get'\n"
            "    if verb == frames.PUT:\n"
            "        return 'put'\n"
        )
        assert (
            rules_hit({"frames.py": self.FRAMES, "replica.py": handler})
            == []
        )

    def test_rule_gated_off_without_any_dispatch_in_scan(self):
        # Linting frames.py alone must not claim every verb is dead.
        assert rules_hit({"frames.py": self.FRAMES}) == []


class TestEventRegistry:
    def test_uncatalogued_emit_triggers(self):
        catalogue = 'EVENT_TYPES = ("send",)\n'
        emitter = (
            "def go(tracer, n):\n"
            '    tracer.emit("send", bytes=n)\n'
            '    tracer.emit("sned", bytes=n)\n'
        )
        result = lint_sources({"trace.py": catalogue, "t.py": emitter})
        (finding,) = result.findings
        assert finding.rule == "event-registry"
        assert "'sned'" in finding.message

    def test_orphan_catalogue_entry_triggers(self):
        catalogue = 'EVENT_TYPES = ("send", "never-emitted")\n'
        emitter = 'def go(tracer):\n    tracer.emit("send")\n'
        result = lint_sources({"trace.py": catalogue, "t.py": emitter})
        (finding,) = result.findings
        assert "'never-emitted'" in finding.message

    def test_complete_catalogue_is_clean(self):
        catalogue = 'EVENT_TYPES = ("send", "deliver")\n'
        emitter = (
            "def go(tracer):\n"
            '    tracer.emit("send")\n'
            '    tracer.emit("deliver")\n'
        )
        assert rules_hit({"trace.py": catalogue, "t.py": emitter}) == []

    def test_dynamic_emit_is_skipped(self):
        # The WAL relay forwards emit(event_type, ...) — a variable
        # first argument proves nothing and must not be flagged.
        catalogue = 'EVENT_TYPES = ("send",)\n'
        emitter = (
            "def relay(tracer, event_type):\n"
            '    tracer.emit("send")\n'
            "    tracer.emit(event_type)\n"
        )
        assert rules_hit({"trace.py": catalogue, "t.py": emitter}) == []

    def test_orphan_check_gated_without_emitting_side(self):
        # Linting the catalogue module alone proves nothing about use.
        assert (
            rules_hit({"trace.py": 'EVENT_TYPES = ("send", "deliver")\n'})
            == []
        )

    def test_entry_used_as_call_argument_is_not_orphan(self):
        # wal-commit is never a literal .emit() but is passed to the
        # observer callable; that counts as a reference.
        catalogue = 'EVENT_TYPES = ("send", "wal-commit")\n'
        emitter = (
            "def go(tracer, observer):\n"
            '    tracer.emit("send")\n'
            '    observer("wal-commit", 3)\n'
        )
        assert rules_hit({"trace.py": catalogue, "t.py": emitter}) == []


class TestTracePairing:
    def test_unpaired_record_message_triggers(self):
        source = (
            "def transmit(self, message, payload, metadata):\n"
            "    self.metrics.record_message(MessageRecord(\n"
            "        payload_bytes=payload,\n"
            "        metadata_bytes=metadata,\n"
            "        payload_units=1,\n"
            "        metadata_units=2,\n"
            "    ))\n"
        )
        result = lint_sources({"transport.py": source})
        (finding,) = result.findings
        assert finding.rule == "trace-pairing"
        assert "no" in finding.message

    def test_mismatched_byte_expression_triggers(self):
        source = (
            "def transmit(self, message, payload, metadata):\n"
            "    self.metrics.record_message(MessageRecord(\n"
            "        payload_bytes=payload,\n"
            "        metadata_bytes=metadata,\n"
            "        payload_units=1,\n"
            "        metadata_units=2,\n"
            "    ))\n"
            '    self.tracer.emit("send",\n'
            "        payload_bytes=payload + 1,\n"
            "        metadata_bytes=metadata,\n"
            "        payload_units=1,\n"
            "        metadata_units=2,\n"
            "    )\n"
        )
        result = lint_sources({"transport.py": source})
        (finding,) = result.findings
        assert "payload_bytes" in finding.message

    def test_identical_expressions_are_clean(self):
        source = (
            "def transmit(self, message, payload, metadata):\n"
            "    self.metrics.record_message(MessageRecord(\n"
            "        payload_bytes=payload,\n"
            "        metadata_bytes=metadata,\n"
            "        payload_units=size_units(message),\n"
            "        metadata_units=2,\n"
            "    ))\n"
            '    self.tracer.emit("send",\n'
            "        payload_bytes=payload,\n"
            "        metadata_bytes=metadata,\n"
            "        payload_units=size_units(message),\n"
            "        metadata_units=2,\n"
            "    )\n"
        )
        assert rules_hit({"transport.py": source}) == []

    def test_forwarding_an_existing_record_is_out_of_scope(self):
        # TeeCollector passes the record object along; it constructs
        # nothing, so there is nothing to pair.
        source = (
            "def record_message(self, record):\n"
            "    for sink in self.sinks:\n"
            "        sink.record_message(record)\n"
        )
        assert rules_hit({"obs.py": source}) == []


class TestFrozenMutation:
    def test_mutation_outside_constructor_triggers(self):
        source = (
            "def poke(obj):\n"
            "    object.__setattr__(obj, 'value', 3)\n"
        )
        assert rules_hit({"mod.py": source}) == ["frozen-mutation"]

    def test_constructor_self_write_is_clean(self):
        source = (
            "class Frozen:\n"
            "    def __init__(self, value):\n"
            "        object.__setattr__(self, 'value', value)\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'extra', 1)\n"
        )
        assert rules_hit({"mod.py": source}) == []

    def test_self_write_outside_constructor_triggers(self):
        source = (
            "class Frozen:\n"
            "    def poke(self):\n"
            "        object.__setattr__(self, 'value', 3)\n"
        )
        assert rules_hit({"mod.py": source}) == ["frozen-mutation"]

    def test_fresh_new_instance_is_clean(self):
        # The allocation idiom of MapLattice.join.
        source = (
            "class Lat:\n"
            "    def join(self, other):\n"
            "        merged = Lat.__new__(Lat)\n"
            "        object.__setattr__(merged, 'entries', {})\n"
            "        return merged\n"
        )
        assert rules_hit({"mod.py": source}) == []

    def test_sanctioned_memo_needs_suppression(self):
        source = (
            "class Frozen:\n"
            "    def size(self):\n"
            "        # repro: lint-ok[frozen-mutation] memo of a pure function\n"
            "        object.__setattr__(self, '_cache', 1)\n"
            "        return 1\n"
        )
        result = lint_sources({"mod.py": source})
        assert result.clean
        assert [f.rule for f in result.suppressed] == ["frozen-mutation"]


class TestAsyncBlocking:
    """Direct-call corpus for the transitive rule's base case.

    ``async-blocking`` grew into ``async-blocking-transitive`` in PR 10;
    a blocking call written directly inside an ``async def`` is the
    chain of length one, so the original golden corpus carries over
    under the canonical id.  The multi-hop chains live in
    ``test_lint_interproc.py``.
    """

    def test_time_sleep_in_async_def_triggers(self):
        source = (
            "import time\n"
            "async def pump(self):\n"
            "    time.sleep(0.1)\n"
        )
        assert rules_hit({"tcp.py": source}) == ["async-blocking-transitive"]

    def test_send_frame_in_async_def_triggers(self):
        source = (
            "async def answer(self, sock, frame):\n"
            "    send_frame(sock, frame)\n"
        )
        assert rules_hit({"serve.py": source}) == ["async-blocking-transitive"]

    def test_flock_in_nested_async_triggers(self):
        source = (
            "import fcntl\n"
            "class T:\n"
            "    async def lock(self, fh):\n"
            "        fcntl.flock(fh, 2)\n"
        )
        assert rules_hit({"tcp.py": source}) == ["async-blocking-transitive"]

    def test_await_asyncio_sleep_is_clean(self):
        source = (
            "import asyncio\n"
            "async def pump(self):\n"
            "    await asyncio.sleep(0.1)\n"
        )
        assert rules_hit({"tcp.py": source}) == []

    def test_blocking_call_in_sync_def_is_clean(self):
        # The controller-side frame protocol is synchronous on purpose.
        source = (
            "import time\n"
            "def settle(self):\n"
            "    time.sleep(0.1)\n"
            "    send_frame(self.sock, b'x')\n"
        )
        assert rules_hit({"cluster.py": source}) == []


class TestBroadExcept:
    def test_silent_swallow_triggers(self):
        source = (
            "def close(self):\n"
            "    try:\n"
            "        self.sock.close()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_hit({"mod.py": source}) == ["broad-except"]

    def test_bare_except_triggers(self):
        source = (
            "def close(self):\n"
            "    try:\n"
            "        self.sock.close()\n"
            "    except:\n"
            "        self.count = 0\n"
        )
        assert rules_hit({"mod.py": source}) == ["broad-except"]

    def test_broad_member_of_tuple_triggers(self):
        source = (
            "def close(self):\n"
            "    try:\n"
            "        self.sock.close()\n"
            "    except (ValueError, Exception):\n"
            "        pass\n"
        )
        assert rules_hit({"mod.py": source}) == ["broad-except"]

    def test_narrow_handler_is_clean(self):
        source = (
            "def close(self):\n"
            "    try:\n"
            "        self.sock.close()\n"
            "    except OSError:\n"
            "        pass\n"
        )
        assert rules_hit({"mod.py": source}) == []

    def test_reraise_is_clean(self):
        source = (
            "def run(self):\n"
            "    try:\n"
            "        self.step()\n"
            "    except Exception:\n"
            "        self.failed = True\n"
            "        raise\n"
        )
        assert rules_hit({"mod.py": source}) == []

    def test_using_the_bound_exception_is_clean(self):
        source = (
            "def run(self):\n"
            "    try:\n"
            "        self.step()\n"
            "    except Exception as exc:\n"
            "        self.last_error = repr(exc)\n"
        )
        assert rules_hit({"mod.py": source}) == []

    def test_recording_via_trace_or_warnings_is_clean(self):
        source = (
            "import warnings\n"
            "def run(self):\n"
            "    try:\n"
            "        self.step()\n"
            "    except Exception:\n"
            "        self.tracer.emit('error')\n"
            "    try:\n"
            "        self.step()\n"
            "    except Exception:\n"
            "        warnings.warn('step failed', ResourceWarning)\n"
        )
        assert rules_hit({"mod.py": source}) == []


class TestCorpusSanity:
    def test_every_rule_has_trigger_and_near_miss_coverage(self):
        # The corpus above must exercise the full registered rule set;
        # a new rule without golden tests fails here by construction.
        covered = {
            "det-rng",
            "det-clock",
            "det-taint",
            "wire-registry",
            "verb-registry",
            "event-registry",
            "trace-pairing",
            "frozen-mutation",
            "async-blocking-transitive",
            "resource-typestate",
            "broad-except",
        }
        assert {rule.id for rule in ALL_RULES()} == covered

    def test_rule_messages_parse_as_single_findings(self):
        # Triggers must not cascade: one seeded defect, one finding.
        result = lint_sources(
            {"anywhere.py": "import random\nx = random.random()\n"}
        )
        assert len(result.findings) == 1
