"""The causal churn workload and the Appendix B experiment driver.

The workload must satisfy the determinism contract every comparison
sweep relies on — two instances with equal parameters replay the
identical schedule — and the driver must reproduce the paper's
transmission ordering on causal data at CI scale.
"""

import pytest

from repro.experiments.appendixb import run_appendixb
from repro.experiments.grid import ALL_ALGORITHMS
from repro.sim.runner import run_experiment
from repro.sim.topology import partial_mesh
from repro.sync import ALGORITHMS
from repro.workloads import AWSetChurnWorkload


class TestAWSetChurnWorkload:
    def test_schedule_is_deterministic(self):
        one = AWSetChurnWorkload(6, rounds=12, seed=5)
        two = AWSetChurnWorkload(6, rounds=12, seed=5)
        assert one.schedule == two.schedule

    def test_different_seeds_differ(self):
        one = AWSetChurnWorkload(6, rounds=12, seed=5)
        two = AWSetChurnWorkload(6, rounds=12, seed=6)
        assert one.schedule != two.schedule

    def test_add_ratio_shapes_the_mix(self):
        heavy = AWSetChurnWorkload(4, rounds=50, add_ratio=1.0)
        kinds = {
            kind
            for round_ops in heavy.schedule
            for kind, _ in round_ops
        }
        assert kinds == {"add"}

    def test_one_update_per_node_per_round(self):
        workload = AWSetChurnWorkload(5, rounds=7)
        assert workload.total_updates() == 35

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="pool_size"):
            AWSetChurnWorkload(4, rounds=5, pool_size=0)
        with pytest.raises(ValueError, match="add_ratio"):
            AWSetChurnWorkload(4, rounds=5, add_ratio=0.0)

    def test_runs_to_convergence_under_every_protocol(self):
        topology = partial_mesh(6, 4)
        finals = set()
        for label, factory in ALGORITHMS.items():
            result = run_experiment(
                factory, AWSetChurnWorkload(6, rounds=5), topology
            )
            assert result.converged, label
            finals.add(result.final_state_units)
        assert len(finals) == 1  # identical replay → identical final state


class TestAppendixBDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_appendixb(nodes=8, rounds=8)

    def test_covers_the_full_grid(self, result):
        assert set(result.results) == {
            (topology, algorithm)
            for topology in ("tree", "mesh")
            for algorithm in ALL_ALGORITHMS
        }

    def test_paper_ordering_holds_on_causal_data(self, result):
        # Classic delta tracks state-based on the mesh.
        assert result.units("mesh", "delta-based") > 0.8 * result.units(
            "mesh", "state-based"
        )
        # RR beats BP under cycles; BP+RR is the best delta variant.
        assert result.units("mesh", "delta-based-rr") < result.units(
            "mesh", "delta-based-bp"
        )
        for variant in ("delta-based", "delta-based-bp", "delta-based-rr"):
            assert result.ratio("mesh", variant) >= 1.0

    def test_render_mentions_every_algorithm(self, result):
        text = result.render()
        for algorithm in ALL_ALGORITHMS:
            assert algorithm in text
