"""The command-line experiment runner.

Drives :func:`repro.cli.main` in-process (no subprocess) at CI scale,
checking argument plumbing, report emission, file output, and the
preset/override precedence rules.
"""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    stream = io.StringIO()
    code = main(list(argv), stream=stream)
    return code, stream.getvalue()


class TestList:
    def test_lists_every_experiment(self):
        code, output = run_cli("list")
        assert code == 0
        for artifact in (
            "figure1",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "table1",
            "table2",
        ):
            assert artifact in output


class TestRun:
    def test_figure7_ci_scale_prints_ratio_table(self):
        code, output = run_cli("run", "figure7", "--scale", "ci")
        assert code == 0
        assert "Figure 7" in output
        assert "delta-based-bp-rr" in output
        assert "state-based" in output
        assert "completed in" in output

    def test_table1_renders_workload_registry(self):
        code, output = run_cli("run", "table1", "--scale", "ci")
        assert code == 0
        lowered = output.lower()
        assert "gcounter" in lowered and "gset" in lowered

    def test_table2_respects_ops_override(self):
        code, output = run_cli("run", "table2", "--ops", "2000")
        assert code == 0
        assert "Table II" in output

    def test_figure9_accepts_size_list(self):
        code, output = run_cli(
            "run", "figure9", "--sizes", "6,8", "--rounds", "4"
        )
        assert code == 0
        assert "Figure 9" in output

    def test_figure12_accepts_coefficients(self):
        code, output = run_cli(
            "run",
            "figure12",
            "--scale",
            "ci",
            "--coefficients",
            "0.5,1.5",
            "--nodes",
            "8",
            "--users",
            "60",
            "--rounds",
            "5",
        )
        assert code == 0
        assert "Figure 12" in output

    def test_appendixb_runs_the_causal_grid(self):
        code, output = run_cli(
            "run", "appendixb", "--scale", "ci", "--nodes", "6", "--rounds", "4"
        )
        assert code == 0
        assert "Appendix B" in output
        assert "delta-based-bp-rr" in output

    def test_node_override_beats_preset(self):
        code, output = run_cli(
            "run", "figure1", "--scale", "ci", "--nodes", "6", "--rounds", "5"
        )
        assert code == 0
        assert "Figure 1" in output

    def test_out_file_receives_report(self, tmp_path):
        target = tmp_path / "report.txt"
        code, output = run_cli(
            "run", "figure1", "--scale", "ci", "--rounds", "5", "--out", str(target)
        )
        assert code == 0
        written = target.read_text()
        assert "Figure 1" in written
        assert written.strip().splitlines()[0] in output

    def test_kv_faults_recovery_wal_grows_the_table(self):
        code, output = run_cli(
            "kv",
            "--replicas", "4", "--keys", "48", "--rounds", "6", "--ops", "3",
            "--shards", "8", "--replication", "2",
            "--repair", "2", "--repair-fanout", "8",
            "--faults", "--recovery", "wal",
        )
        assert code == 0
        # The WAL strategy row rides next to the baselines it must beat.
        for row in ("blanket", "digest", "wal"):
            assert f"\n{row} " in output or f"\n{row}+" in output
        assert "wal+repair" not in output  # only with --recovery wal+repair
        assert "wal replay" in output  # the grown column

    def test_kv_faults_default_compares_all_strategies(self):
        code, output = run_cli(
            "kv",
            "--replicas", "4", "--keys", "48", "--rounds", "6", "--ops", "3",
            "--shards", "8", "--replication", "2",
            "--repair", "2", "--repair-fanout", "8", "--faults",
        )
        assert code == 0
        assert "wal+repair" in output

    def test_kv_rebalance_reports_handoff_vs_naive(self):
        code, output = run_cli(
            "kv",
            "--replicas", "6", "--keys", "48", "--rounds", "6", "--ops", "3",
            "--shards", "8", "--replication", "2",
            "--repair", "2", "--repair-fanout", "8",
            "--rebalance",
        )
        assert code == 0
        assert "live rebalancing" in output
        assert "add 5" in output
        assert "decommission 0" in output
        assert "vs naive" in output
        assert "converged=True" in output

    def test_kv_rebalance_excludes_faults(self):
        code, _ = run_cli("kv", "--rebalance", "--faults")
        assert code == 2

    def test_kv_rebalance_rejects_disabled_repair(self):
        code, _ = run_cli("kv", "--rebalance", "--repair", "0")
        assert code == 2

    def test_kv_rebalance_rejects_blanket_repair_mode(self):
        code, _ = run_cli("kv", "--rebalance", "--repair-mode", "blanket")
        assert code == 2

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_missing_command_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
