"""Unit tests for SetLattice, MapLattice, and MaxElements."""

import pytest

from repro.lattice import MapLattice, MaxElements, MaxInt, SetLattice
from repro.sizes import SizeModel


class TestSetLattice:
    def test_join_is_union(self):
        assert SetLattice({"a"}).join(SetLattice({"b"})) == SetLattice({"a", "b"})

    def test_join_with_bottom_returns_other_side(self):
        full = SetLattice({"a"})
        assert full.join(SetLattice()) == full
        assert SetLattice().join(full) == full

    def test_leq_is_subset(self):
        assert SetLattice({"a"}).leq(SetLattice({"a", "b"}))
        assert not SetLattice({"c"}).leq(SetLattice({"a", "b"}))

    def test_bottom(self):
        assert SetLattice().is_bottom
        assert SetLattice({"a"}).bottom_like() == SetLattice()

    def test_decompose_into_singletons(self):
        parts = list(SetLattice({"a", "b", "c"}).decompose())
        assert len(parts) == 3
        assert all(len(p) == 1 for p in parts)
        joined = SetLattice()
        for p in parts:
            joined = joined.join(p)
        assert joined == SetLattice({"a", "b", "c"})

    def test_delta_is_set_difference(self):
        d = SetLattice({"a", "b"}).delta(SetLattice({"b", "c"}))
        assert d == SetLattice({"a"})

    def test_add_returns_same_object_when_present(self):
        s = SetLattice({"a"})
        assert s.add("a") is s
        assert s.add("b") == SetLattice({"a", "b"})

    def test_container_protocol(self):
        s = SetLattice({"a", "b"})
        assert "a" in s
        assert len(s) == 2
        assert sorted(s) == ["a", "b"]

    def test_size_units_counts_elements(self):
        assert SetLattice({"a", "b"}).size_units() == 2

    def test_size_bytes_sums_elements(self, size_model):
        assert SetLattice({"ab", "cde"}).size_bytes(size_model) == 5

    def test_value_query(self):
        assert SetLattice({"a"}).value() == frozenset({"a"})

    def test_immutability(self):
        with pytest.raises(AttributeError):
            SetLattice().elements = frozenset()


class TestMapLattice:
    def test_join_is_pointwise(self):
        a = MapLattice({"x": MaxInt(2), "y": MaxInt(1)})
        b = MapLattice({"y": MaxInt(5), "z": MaxInt(3)})
        joined = a.join(b)
        assert joined == MapLattice({"x": MaxInt(2), "y": MaxInt(5), "z": MaxInt(3)})

    def test_absent_key_is_bottom(self):
        a = MapLattice({"x": MaxInt(1)})
        assert MapLattice().leq(a)
        assert a.get("missing") is None

    def test_constructor_drops_bottom_bindings(self):
        m = MapLattice({"x": MaxInt(0), "y": MaxInt(1)})
        assert "x" not in m
        assert len(m) == 1

    def test_leq(self):
        small = MapLattice({"x": MaxInt(1)})
        big = MapLattice({"x": MaxInt(2), "y": MaxInt(1)})
        assert small.leq(big)
        assert not big.leq(small)

    def test_leq_fails_on_missing_key(self):
        assert not MapLattice({"x": MaxInt(1)}).leq(MapLattice({"y": MaxInt(9)}))

    def test_decompose_recurses_into_values(self):
        m = MapLattice({"x": MaxInt(2), "y": MaxInt(7)})
        parts = sorted(repr(p) for p in m.decompose())
        assert parts == [
            "MapLattice({'x': MaxInt(2)})",
            "MapLattice({'y': MaxInt(7)})",
        ]

    def test_delta_recurses_per_key(self):
        mine = MapLattice({"x": MaxInt(5), "y": MaxInt(1), "z": MaxInt(2)})
        theirs = MapLattice({"x": MaxInt(3), "y": MaxInt(4)})
        d = mine.delta(theirs)
        assert d == MapLattice({"x": MaxInt(5), "z": MaxInt(2)})

    def test_delta_bottom_when_dominated(self):
        small = MapLattice({"x": MaxInt(1)})
        big = MapLattice({"x": MaxInt(2)})
        assert small.delta(big).is_bottom

    def test_with_entry(self):
        m = MapLattice({"x": MaxInt(1)})
        m2 = m.with_entry("y", MaxInt(2))
        assert m2.get("y") == MaxInt(2)
        assert m.get("y") is None  # original untouched

    def test_with_entry_bottom_removes(self):
        m = MapLattice({"x": MaxInt(1)})
        assert m.with_entry("x", MaxInt(0)) == MapLattice()
        assert m.with_entry("absent", MaxInt(0)) is m

    def test_size_units_counts_leaf_entries(self):
        m = MapLattice({"x": MaxInt(1), "y": MaxInt(2)})
        assert m.size_units() == 2

    def test_size_units_nested(self):
        m = MapLattice({"x": SetLattice({"a", "b"}), "y": SetLattice({"c"})})
        assert m.size_units() == 3

    def test_size_bytes_counts_keys_and_values(self, size_model):
        m = MapLattice({"ab": MaxInt(1)})
        assert m.size_bytes(size_model) == 2 + size_model.int_bytes

    def test_container_protocol(self):
        m = MapLattice({"x": MaxInt(1)})
        assert "x" in m
        assert len(m) == 1
        assert list(m.keys()) == ["x"]
        assert list(m.items()) == [("x", MaxInt(1))]

    def test_hash_equal_maps(self):
        a = MapLattice({"x": MaxInt(1), "y": MaxInt(2)})
        b = MapLattice({"y": MaxInt(2), "x": MaxInt(1)})
        assert a == b
        assert hash(a) == hash(b)


def _divides(x: int, y: int) -> bool:
    return x % y == 0


class TestMaxElements:
    def test_join_keeps_maximals_only(self):
        a = MaxElements({4}, dominates=_divides)
        b = MaxElements({2, 3}, dominates=_divides)
        assert sorted(a.join(b).elements) == [3, 4]  # 2 absorbed by 4

    def test_constructor_normalizes(self):
        m = MaxElements({2, 4, 8}, dominates=_divides)
        assert sorted(m.elements) == [8]

    def test_leq_by_domination(self):
        small = MaxElements({2}, dominates=_divides)
        big = MaxElements({4}, dominates=_divides)
        assert small.leq(big)
        assert not big.leq(small)

    def test_incomparable_elements_coexist(self):
        m = MaxElements({3, 4}, dominates=_divides)
        assert sorted(m.elements) == [3, 4]

    def test_bottom(self):
        assert MaxElements((), dominates=_divides).is_bottom
        m = MaxElements({4}, dominates=_divides)
        assert m.bottom_like().is_bottom

    def test_decompose_into_singletons(self):
        m = MaxElements({3, 4}, dominates=_divides)
        parts = list(m.decompose())
        assert len(parts) == 2
        assert all(len(p) == 1 for p in parts)

    def test_delta_drops_dominated(self):
        mine = MaxElements({2, 3}, dominates=_divides)
        theirs = MaxElements({4}, dominates=_divides)
        assert sorted(mine.delta(theirs).elements) == [3]

    def test_size_accounting(self, size_model):
        m = MaxElements({3, 4}, dominates=_divides)
        assert m.size_units() == 2
        assert m.size_bytes(size_model) == 2 * size_model.int_bytes
