"""The store on the simulated cluster: convergence under faults.

Property tests mirror ``test_sync_convergence_properties`` at store
granularity: whatever the ring shape, inner protocol, and interleaved
typed-update schedule, once updates stop and anti-entropy keeps
running, every replica group agrees on its shard — and the store's
query API returns the semantically expected values (counter totals,
set unions, last writes).  Fault tests exercise the partition/recovery
harness: crashes (with and without disk loss) and partitions heal
through the scheduler's repair pushes.
"""

from collections import defaultdict

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kv import AntiEntropyConfig, HashRing, KVCluster, KVUpdate
from repro.sync import Scuttlebutt, StateBased, keyed_bp_rr, keyed_classic
from repro.sync.merkle import MerkleSync

INNER = {
    "state-based": StateBased,
    "delta-based": keyed_classic,
    "delta-based-bp-rr": keyed_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "merkle": MerkleSync,
}

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def kv_scenarios(draw):
    """A ring plus a random typed schedule routed to owners."""
    replicas = draw(st.integers(min_value=2, max_value=6))
    replication = draw(st.integers(min_value=1, max_value=min(3, replicas)))
    ring = HashRing(range(replicas), n_shards=8, replication=replication)
    rounds = draw(st.integers(min_value=1, max_value=4))
    keys = [f"gct:{i}" for i in range(4)] + [f"set:{i}" for i in range(4)]
    schedule = defaultdict(list)
    for round_index in range(rounds):
        for op_index in range(draw(st.integers(min_value=0, max_value=6))):
            key = draw(st.sampled_from(keys))
            owners = ring.owners(key)
            node = owners[draw(st.integers(min_value=0, max_value=10)) % len(owners)]
            if key.startswith("gct:"):
                op = KVUpdate(key, "increment", (draw(st.integers(1, 3)),))
            else:
                op = KVUpdate(key, "add", (f"e{round_index}-{op_index}",))
            schedule[(round_index, node)].append(op)
    return ring, rounds, dict(schedule)


def run_schedule(cluster, rounds, schedule):
    cluster.run_rounds(
        rounds, lambda r, node: tuple(schedule.get((r, node), ()))
    )
    cluster.drain()


def expected_views(schedule):
    """Per-key ground truth: counter totals and set unions."""
    totals = defaultdict(int)
    unions = defaultdict(set)
    for ops in schedule.values():
        for op in ops:
            if op.op == "increment":
                totals[op.key] += op.args[0]
            else:
                unions[op.key].add(op.args[0])
    return totals, unions


@given(kv_scenarios(), st.sampled_from(sorted(INNER)))
@SLOW
def test_every_protocol_converges_per_key(scenario, algorithm):
    ring, rounds, schedule = scenario
    cluster = KVCluster(ring, INNER[algorithm])
    run_schedule(cluster, rounds, schedule)
    assert cluster.converged()
    totals, unions = expected_views(schedule)
    for key, total in totals.items():
        assert cluster.value(key) == total
    for key, union in unions.items():
        assert cluster.value(key) == union


@given(kv_scenarios())
@SLOW
def test_crash_and_recover_converges(scenario):
    """A replica that crashes mid-run resumes and reconverges."""
    ring, rounds, schedule = scenario
    cluster = KVCluster(
        ring,
        keyed_bp_rr,
        antientropy=AntiEntropyConfig(repair_interval=1, repair_fanout=8),
    )
    run_schedule(cluster, rounds, schedule)
    # Crash someone who is not the coordinator of the probe key, so the
    # smart client can still reach a live owner.
    victim = next(
        r for r in reversed(ring.replicas) if r != ring.coordinator("set:9")
    )
    cluster.crash(victim)
    cluster.update("set:9", "add", "while-down")
    cluster.run_round(updates=None)
    assert cluster.converged()  # judged over live replicas only
    cluster.recover(victim)
    cluster.drain()
    assert cluster.converged()
    assert cluster.value("set:9") == {"while-down"}


@given(kv_scenarios())
@SLOW
def test_partition_heals_through_repair(scenario):
    """Divergent writes on both sides of a partition reconcile."""
    ring, rounds, schedule = scenario
    n = len(ring.replicas)
    cluster = KVCluster(
        ring,
        keyed_bp_rr,
        antientropy=AntiEntropyConfig(repair_interval=1, repair_fanout=8),
    )
    run_schedule(cluster, rounds, schedule)
    cluster.partition(range(n // 2))
    # Write at every owner still standing, on both sides of the cut.
    for owner in ring.owners("set:px"):
        cluster.apply_update(owner, KVUpdate("set:px", "add", (f"from-{owner}",)))
    for _ in range(2):
        cluster.run_round(updates=None)
    cluster.heal()
    cluster.drain()
    assert cluster.converged()
    assert cluster.value("set:px") == {
        f"from-{owner}" for owner in ring.owners("set:px")
    }


class TestDiskLossRecovery:
    def test_reset_replica_is_refilled_by_repair(self):
        ring = HashRing(range(4), n_shards=8, replication=3)
        cluster = KVCluster(
            ring,
            keyed_bp_rr,
            antientropy=AntiEntropyConfig(repair_interval=2, repair_fanout=8),
        )
        for i in range(12):
            cluster.update(f"aws:{i}", "add", f"e{i}")
        cluster.run_round(updates=None)
        cluster.drain()
        cluster.crash(1, lose_state=True)
        cluster.run_round(updates=None)
        cluster.recover(1)
        cluster.drain()
        assert cluster.converged()
        for i in range(12):
            assert cluster.value(f"aws:{i}") == frozenset({f"e{i}"})

    def test_removals_survive_a_crash_elsewhere(self):
        ring = HashRing(range(4), n_shards=4, replication=3)
        cluster = KVCluster(
            ring,
            keyed_bp_rr,
            antientropy=AntiEntropyConfig(repair_interval=2, repair_fanout=8),
        )
        cluster.update("aws:cart", "add", "milk")
        cluster.update("aws:cart", "add", "bread")
        cluster.run_round(updates=None)
        cluster.drain()
        victim = ring.owners("aws:cart")[1]
        cluster.crash(victim, lose_state=True)
        cluster.remove("aws:cart")
        cluster.update("aws:cart", "add", "eggs")
        cluster.run_round(updates=None)
        cluster.recover(victim)
        cluster.drain()
        assert cluster.converged()
        # The reset replica must not resurrect the removed elements.
        assert cluster.value("aws:cart") == frozenset({"eggs"})


class TestFaultBookkeeping:
    def test_updates_to_a_crashed_node_are_counted(self):
        ring = HashRing(range(4), n_shards=4, replication=2)
        cluster = KVCluster(ring, keyed_bp_rr)
        owner = ring.coordinator("set:x")
        cluster.crash(owner)
        cluster.run_round(
            lambda node: (KVUpdate("set:x", "add", ("lost",)),)
            if node == owner
            else ()
        )
        assert cluster.updates_skipped == 1

    def test_partition_rejects_unknown_nodes(self):
        import pytest

        ring = HashRing(range(4), n_shards=4, replication=2)
        cluster = KVCluster(ring, keyed_bp_rr)
        with pytest.raises(ValueError, match="no such nodes"):
            cluster.partition([0, 99])


class TestRouting:
    def test_updates_route_to_live_owners(self):
        ring = HashRing(range(4), n_shards=8, replication=2)
        cluster = KVCluster(ring, keyed_bp_rr)
        first, second = ring.owners("cnt:x")
        cluster.crash(first)
        cluster.update("cnt:x", "increment", 4)
        assert cluster.value("cnt:x") == 4  # served by the second owner

    def test_unavailable_when_all_owners_down(self):
        import pytest
        from repro.kv import Unavailable

        ring = HashRing(range(3), n_shards=4, replication=1)
        cluster = KVCluster(ring, keyed_bp_rr)
        [only_owner] = ring.owners("cnt:x")
        cluster.crash(only_owner)
        with pytest.raises(Unavailable):
            cluster.update("cnt:x", "increment")

    def test_ring_must_fit_the_topology(self):
        import pytest
        from repro.sim.topology import full_mesh
        from repro.sim.network import ClusterConfig

        # A ring over an index the topology does not have is rejected...
        ring = HashRing([0, 1, 2, 9], n_shards=4, replication=2)
        with pytest.raises(ValueError, match="node indices"):
            KVCluster(
                ring,
                keyed_bp_rr,
                config=ClusterConfig(topology=full_mesh(6)),
            )

    def test_ring_may_cover_a_topology_subset(self):
        from repro.sim.topology import full_mesh
        from repro.sim.network import ClusterConfig

        # ...but a subset ring is valid: the post-decommission state,
        # and the starting point for a later add_replica.
        ring = HashRing(range(4), n_shards=8, replication=2)
        cluster = KVCluster(
            ring,
            keyed_bp_rr,
            config=ClusterConfig(topology=full_mesh(6)),
        )
        cluster.update("set:s", "add", "x")
        cluster.run_round(updates=None)
        cluster.drain()
        assert cluster.converged()
        assert not cluster.nodes[5].shards  # spare nodes hold nothing


class TestReadReplica:
    """``value(key, read_replica=...)``: pinned single-replica reads."""

    def make(self):
        import pytest

        ring = HashRing(range(4), n_shards=8, replication=2)
        cluster = KVCluster(ring, keyed_bp_rr)
        cluster.update("set:pin", "add", "v")
        cluster.run_round(updates=None)
        cluster.drain()
        return pytest, ring, cluster

    def test_every_owner_serves_the_converged_value(self):
        pytest, ring, cluster = self.make()
        for owner in ring.owners("set:pin"):
            assert cluster.value("set:pin", read_replica=owner) == {"v"}

    def test_default_read_goes_to_the_coordinator(self):
        pytest, ring, cluster = self.make()
        coordinator = ring.coordinator("set:pin")
        assert cluster.value("set:pin") == cluster.value(
            "set:pin", read_replica=coordinator
        )

    def test_non_owner_is_a_routing_error(self):
        pytest, ring, cluster = self.make()
        from repro.kv import KVRoutingError

        outsider = next(
            r for r in ring.replicas if r not in ring.owners("set:pin")
        )
        with pytest.raises(KVRoutingError):
            cluster.value("set:pin", read_replica=outsider)

    def test_down_owner_is_unavailable_not_rerouted(self):
        pytest, ring, cluster = self.make()
        from repro.kv import Unavailable

        owner = ring.owners("set:pin")[0]
        cluster.crash(owner)
        with pytest.raises(Unavailable):
            cluster.value("set:pin", read_replica=owner)
        # The unpinned read still finds a live owner.
        assert cluster.value("set:pin") == {"v"}
