"""Tests for pairwise state-driven and digest-driven synchronization."""

from repro.crdt import GCounter, GSet
from repro.lattice import MapLattice, MaxInt, SetLattice
from repro.sizes import SizeModel
from repro.sync.digest import (
    delta_against_digest,
    digest_driven_sync,
    digest_of,
    fingerprint,
    full_state_sync,
    state_driven_sync,
)

MODEL = SizeModel()


def big_states(overlap=500, each=20):
    """Two large GSet states sharing most elements."""
    common = {f"shared-{i:05d}-padding-padding" for i in range(overlap)}
    a = SetLattice(common | {f"only-a-{i:05d}-padding-pad" for i in range(each)})
    b = SetLattice(common | {f"only-b-{i:05d}-padding-pad" for i in range(each)})
    return a, b


class TestFingerprints:
    def test_deterministic(self):
        assert fingerprint(SetLattice({"a"})) == fingerprint(SetLattice({"a"}))

    def test_distinct_values_distinct_prints(self):
        assert fingerprint(SetLattice({"a"})) != fingerprint(SetLattice({"b"}))

    def test_digest_size_tracks_decomposition(self):
        state = SetLattice({"a", "b", "c"})
        assert len(digest_of(state)) == 3

    def test_delta_against_digest_exact(self):
        a = SetLattice({"a", "b"})
        b = SetLattice({"b", "c"})
        assert delta_against_digest(b, digest_of(a)) == SetLattice({"c"})

    def test_map_states_fingerprint_consistently(self):
        x = MapLattice({"k": MaxInt(3)})
        y = MapLattice({"k": MaxInt(3)})
        assert fingerprint(x) == fingerprint(y)


class TestPairwiseSync:
    def test_all_strategies_converge_identically(self):
        a, b = big_states()
        expected = a.join(b)
        for strategy in (full_state_sync, state_driven_sync, digest_driven_sync):
            outcome = strategy(a, b, MODEL)
            assert outcome.converged_state == expected

    def test_state_driven_cheaper_than_full(self):
        a, b = big_states()
        assert state_driven_sync(a, b, MODEL).bytes_sent < full_state_sync(a, b, MODEL).bytes_sent

    def test_digest_driven_cheapest_on_large_overlap(self):
        a, b = big_states()
        digest = digest_driven_sync(a, b, MODEL)
        state = state_driven_sync(a, b, MODEL)
        assert digest.bytes_sent < state.bytes_sent

    def test_message_counts_match_paper(self):
        """2 messages state-driven, 3 digest-driven (Section VI)."""
        a, b = big_states(overlap=5, each=2)
        assert state_driven_sync(a, b, MODEL).messages == 2
        assert digest_driven_sync(a, b, MODEL).messages == 3

    def test_disjoint_states(self):
        a = SetLattice({"a"})
        b = SetLattice({"b"})
        outcome = digest_driven_sync(a, b, MODEL)
        assert outcome.converged_state == SetLattice({"a", "b"})

    def test_identical_states_ship_no_payload(self):
        a = SetLattice({"x", "y"})
        outcome = digest_driven_sync(a, a, MODEL)
        # Only the two digests travel; payload contributions are zero.
        assert outcome.bytes_sent == 2 * len(digest_of(a)) * 8

    def test_empty_states(self):
        a = SetLattice()
        outcome = digest_driven_sync(a, a, MODEL)
        assert outcome.converged_state.is_bottom
        assert outcome.bytes_sent == 0

    def test_works_on_gcounter_states(self):
        a, b = GCounter("A"), GCounter("B")
        a.increment(3)
        b.increment(5)
        outcome = digest_driven_sync(a.state, b.state, MODEL)
        merged = GCounter("X", state=outcome.converged_state)
        assert merged.value == 8

    def test_partition_recovery_scenario(self):
        """Two replicas diverge during a partition, then reconcile."""
        a, b = GSet("A"), GSet("B")
        for i in range(50):
            a.add(f"a-{i}")
            b.add(f"b-{i}")
        outcome = digest_driven_sync(a.state, b.state, MODEL)
        assert len(outcome.converged_state.elements) == 100
