"""The trace stream: event schema round-trips, sinks, the tracer."""

import json

import pytest

from repro.obs.trace import (
    EVENT_TYPES,
    FileTraceSink,
    MemoryTraceSink,
    TraceEvent,
    Tracer,
    TraceSink,
    decode_event,
    encode_event,
    read_trace,
)


class TestEventRoundTrip:
    @pytest.mark.parametrize("event_type", EVENT_TYPES)
    def test_every_type_round_trips_fully_populated(self, event_type):
        event = TraceEvent(
            type=event_type,
            time=123.5,
            round=7,
            replica=2,
            shard=11,
            peer=4,
            kind="kv-batch",
            payload_bytes=321,
            metadata_bytes=45,
            payload_units=6,
            metadata_units=3,
            label="digest",
            extra={"match": False, "groups": [[0, 1], [2]]},
        )
        assert decode_event(encode_event(event)) == event

    @pytest.mark.parametrize("event_type", EVENT_TYPES)
    def test_every_type_round_trips_defaults(self, event_type):
        event = TraceEvent(type=event_type)
        assert decode_event(encode_event(event)) == event

    def test_defaults_are_omitted_from_the_line(self):
        line = encode_event(TraceEvent(type="round", round=3))
        record = json.loads(line)
        assert record == {"round": 3, "type": "round"}

    def test_encoding_is_deterministic(self):
        event = TraceEvent(type="send", replica=1, peer=2, payload_bytes=9)
        assert encode_event(event) == encode_event(event)
        # Compact separators and sorted keys: no whitespace, stable order.
        line = encode_event(event)
        assert " " not in line
        assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))

    def test_decode_ignores_unknown_keys(self):
        event = decode_event('{"type":"send","replica":1,"future_field":true}')
        assert event.replica == 1

    def test_decode_rejects_non_events(self):
        with pytest.raises(ValueError):
            decode_event("[1, 2, 3]")
        with pytest.raises(ValueError):
            decode_event('{"replica": 1}')


class TestSinks:
    def test_memory_sink_accumulates_lines(self):
        sink = MemoryTraceSink()
        sink.write("a")
        sink.write("b")
        assert sink.lines == ["a", "b"]
        assert len(sink) == 2

    def test_file_sink_writes_readable_jsonl(self, tmp_path):
        path = str(tmp_path / "sub" / "trace.jsonl")
        sink = FileTraceSink(path)
        sink.write(encode_event(TraceEvent(type="crash", replica=3)))
        sink.close()
        events = read_trace(path)
        assert events == [TraceEvent(type="crash", replica=3)]

    def test_file_sink_truncates_on_construction(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        first = FileTraceSink(path)
        first.write(encode_event(TraceEvent(type="crash")))
        first.close()
        second = FileTraceSink(path)
        second.close()
        assert read_trace(path) == []


class TestTracer:
    def test_emit_fills_bound_clock_and_round(self):
        sink = MemoryTraceSink()
        tracer = Tracer(sink)
        tracer.bind(lambda: 250.0, lambda: 4)
        event = tracer.emit("deliver", replica=1, peer=0, kind="kv-batch")
        assert event.time == 250.0
        assert event.round == 4
        assert read_trace(sink) == [event]
        assert tracer.events_written == 1

    def test_explicit_time_and_round_win_over_bound(self):
        tracer = Tracer(MemoryTraceSink())
        tracer.bind(lambda: 999.0, lambda: 99)
        event = tracer.emit("round", time=10.0, round=1)
        assert (event.time, event.round) == (10.0, 1)

    def test_emit_rejects_unknown_types(self):
        tracer = Tracer(MemoryTraceSink())
        with pytest.raises(ValueError, match="unknown trace event type"):
            tracer.emit("no-such-event")


class TestReadTrace:
    def test_reads_iterable_of_lines_and_skips_blanks(self):
        lines = [encode_event(TraceEvent(type="heal")), "", "   "]
        assert read_trace(lines) == [TraceEvent(type="heal")]

    def test_rejects_unreadable_sinks(self):
        class NullSink(TraceSink):
            def write(self, line):
                pass

        with pytest.raises(TypeError):
            read_trace(NullSink())
