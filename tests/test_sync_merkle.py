"""Merkle-trie anti-entropy: convergence and overhead profile.

Beyond converging on every topology and data type (including causal
states, where trie leaves are dot fragments and tombstones), the tests
pin down the *profile* the paper's related-work section attributes to
hash-based reconciliation: silence costs one digest per neighbour per
tick, localizing divergence costs round trips, and hashing work scales
with the whole state rather than with the change.
"""

import random

import pytest

from repro.causal import AWSet, Causal
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt
from repro.lattice.set_lattice import SetLattice
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import line, partial_mesh, tree
from repro.sync import ALGORITHMS
from repro.sync.merkle import MerkleSync


def merkle_cluster(topology, bottom):
    return Cluster(ClusterConfig(topology=topology), MerkleSync, bottom)


def unique_add(node, round_index):
    element = f"n{node}r{round_index}"

    def add(state, e=element):
        if e in state:
            return state.bottom_like()
        return SetLattice((e,))

    return add


# ---------------------------------------------------------------------------
# Convergence.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "topology", [partial_mesh(8, 4), tree(8, 3), line(5)], ids=["mesh", "tree", "line"]
)
def test_gset_converges(topology):
    cluster = merkle_cluster(topology, SetLattice())
    cluster.run_rounds(4, lambda r, node: (unique_add(node, r),))
    cluster.drain()
    assert cluster.converged()
    assert cluster.nodes[0].state.size_units() == 4 * topology.n


def test_gcounter_converges():
    topology = partial_mesh(8, 4)
    cluster = merkle_cluster(topology, MapLattice())

    def bump(state, node):
        current = state.get(node)
        base = current.value if isinstance(current, MaxInt) else 0
        return MapLattice({node: MaxInt(base + 1)})

    cluster.run_rounds(5, lambda r, node: (lambda s, n=node: bump(s, n),))
    cluster.drain()
    assert cluster.converged()
    total = sum(entry.value for _, entry in cluster.nodes[0].state.items())
    assert total == 5 * topology.n


def test_awset_with_removals_converges():
    topology = partial_mesh(8, 4)
    cluster = merkle_cluster(topology, Causal.map_bottom())
    handles = [AWSet(node) for node in range(topology.n)]
    rng = random.Random(17)
    pool = [f"e{i}" for i in range(8)]

    def updates_for(round_index, node):
        handle = handles[node]
        element = rng.choice(pool)
        if rng.random() < 0.6:
            return (lambda state, e=element, h=handle: h.add_delta(state, e),)
        return (lambda state, e=element, h=handle: h.remove_delta(state, e),)

    cluster.run_rounds(5, updates_for)
    cluster.drain()
    assert cluster.converged()


def test_matches_delta_based_final_state():
    topology = tree(8, 3)

    def run(factory):
        cluster = Cluster(ClusterConfig(topology=topology), factory, SetLattice())
        cluster.run_rounds(4, lambda r, node: (unique_add(node, r),))
        cluster.drain()
        return cluster.nodes[0].state

    assert run(MerkleSync) == run(ALGORITHMS["delta-based-bp-rr"])


# ---------------------------------------------------------------------------
# Overhead profile (the Section VI critique, quantified).
# ---------------------------------------------------------------------------


def test_quiescent_cost_is_one_digest_per_neighbor():
    """Converged replicas exchange root digests and nothing else."""
    topology = partial_mesh(6, 4)
    cluster = merkle_cluster(topology, SetLattice())
    cluster.run_round(lambda node: (unique_add(node, 0),))
    cluster.drain()
    before = len(cluster.metrics.messages)
    cluster.run_round(updates=None)  # a tick with nothing to reconcile
    idle_messages = cluster.metrics.messages[before:]
    assert all(m.kind == "mt-node" for m in idle_messages)
    assert all(m.payload_units == 0 for m in idle_messages)
    # One root digest per directed neighbour link, no replies.
    links = sum(len(cluster.nodes[i].neighbors) for i in range(topology.n))
    assert len(idle_messages) == links


def test_divergence_localization_costs_round_trips():
    """Reconciling one new element takes digest descent, not one message."""
    pair = line(2)
    cluster = merkle_cluster(pair, SetLattice())
    # Seed a large shared state so the trie has depth.
    cluster.run_round(
        lambda node: tuple(unique_add(node, r) for r in range(100))
    )
    cluster.drain()
    before = len(cluster.metrics.messages)
    cluster.run_round(
        lambda node: (unique_add(node, 999),) if node == 0 else ()
    )
    cluster.drain()
    exchange = [m for m in cluster.metrics.messages[before:]]
    kinds = {m.kind for m in exchange}
    assert "mt-node" in kinds and "mt-leaves" in kinds
    digests = sum(m.metadata_units for m in exchange)
    assert digests > 2  # more than a root exchange: the descent is real

def test_hashing_scales_with_state_not_change():
    """The CPU critique: every tick re-hashes the whole decomposition."""
    pair = line(2)
    cluster = merkle_cluster(pair, SetLattice())
    cluster.run_round(lambda node: tuple(unique_add(node, r) for r in range(50)))
    cluster.drain()
    node = cluster.nodes[0]
    state_size = node.state.size_units()
    baseline = node.hash_operations
    cluster.run_round(updates=None)
    assert node.hash_operations - baseline >= state_size


def test_no_resident_buffers_or_metadata():
    cluster = merkle_cluster(line(2), SetLattice())
    cluster.run_round(lambda node: (unique_add(node, 0),))
    cluster.drain()
    for node in cluster.nodes:
        assert node.buffer_units() == 0
        assert node.metadata_bytes() == 0
