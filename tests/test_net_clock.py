"""Units for the step-policy seam: clocks, free-running, model gating.

The clock seam must keep two promises at once: the round-stepped clock
reproduces the pre-seam timer arithmetic bit for bit (the byte-record
fingerprints downstream depend on those float timestamps), and the
drift clock gives every replica a genuinely private, deterministic,
precessing timeline.  The free-running transport built on the latter
must converge without ever settling a barrier, and the execution-model
knob must refuse the one combination that silently reintroduces the
barrier (free-running over the settling TCP loop).
"""

import asyncio

import pytest

from repro.experiments.kv_sweep import KVConfig
from repro.lattice import SetLattice
from repro.net import (
    AsyncTcpTransport,
    DriftClock,
    FreeRunTransport,
    RoundStepClock,
)
from repro.net.clock import STAGGER_MS
from repro.net.transport import TransportStalled
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import full_mesh, line
from repro.sync import delta_bp_rr


class TestRoundStepClock:
    def test_reproduces_the_pre_seam_arithmetic(self):
        """Expression-for-expression identity with the old run_round
        formulas — equality of floats, not approximation."""
        clock = RoundStepClock(1000.0)
        for rnd in (0, 1, 7, 123):
            for node in (0, 1, 5):
                assert clock.update_at(rnd, node) == rnd * 1000.0 + node * STAGGER_MS
                assert (
                    clock.sync_at(rnd, node)
                    == rnd * 1000.0 + 1000.0 / 2 + node * STAGGER_MS
                )
            assert clock.interval_end(rnd) == rnd * 1000.0 + 1000.0 - STAGGER_MS

    def test_is_the_barrier_model(self):
        assert RoundStepClock(1000.0).barrier is True


class TestDriftClock:
    def test_deterministic_per_seed(self):
        a = DriftClock(1000.0, jitter=0.05, seed=3)
        b = DriftClock(1000.0, jitter=0.05, seed=3)
        assert [a.sync_at(k, 2) for k in range(5)] == [
            b.sync_at(k, 2) for k in range(5)
        ]

    def test_nodes_have_private_timelines(self):
        clock = DriftClock(1000.0, jitter=0.05, seed=0)
        phases = {clock.sync_at(0, node) for node in range(8)}
        assert len(phases) == 8  # no two replicas tick together

    def test_period_stays_within_jitter_bounds(self):
        clock = DriftClock(1000.0, jitter=0.1, seed=1)
        for node in range(8):
            period = clock.sync_at(1, node) - clock.sync_at(0, node)
            assert 900.0 <= period <= 1100.0
            # Drift means the period differs from nominal (probability-1
            # for a continuous draw, deterministic under the fixed seed).
            assert period != 1000.0

    def test_zero_jitter_means_nominal_period_with_phase_only(self):
        clock = DriftClock(1000.0, jitter=0.0, seed=5)
        for node in range(4):
            assert clock.sync_at(3, node) - clock.sync_at(2, node) == 1000.0

    def test_timers_precess_through_relative_alignments(self):
        """Two drifting timers change their relative offset every tick —
        the property that distinguishes free-running from a fixed
        stagger of the same lockstep grid."""
        clock = DriftClock(1000.0, jitter=0.05, seed=0)
        offsets = {
            round(clock.sync_at(k, 0) - clock.sync_at(k, 1), 6) for k in range(10)
        }
        assert len(offsets) == 10

    def test_rejects_silly_jitter(self):
        with pytest.raises(ValueError):
            DriftClock(1000.0, jitter=1.0)
        with pytest.raises(ValueError):
            DriftClock(1000.0, jitter=-0.1)

    def test_is_not_the_barrier_model(self):
        assert DriftClock(1000.0).barrier is False


class TestFreeRunTransport:
    def test_converges_without_a_barrier(self):
        config = ClusterConfig(full_mesh(4))
        cluster = Cluster(config, delta_bp_rr, SetLattice(), "free")

        def updates_for(round_index, node):
            return [lambda state, n=node, r=round_index: SetLattice({f"e{n}-{r}"})]

        cluster.run_rounds(6, updates_for)
        drain = cluster.drain()
        assert cluster.converged()
        state = cluster.runtimes[0].synchronizer.state
        assert state == SetLattice({f"e{n}-{r}" for n in range(4) for r in range(6)})
        # Ticks kept firing during the drain, so it terminates quickly.
        assert drain < config.max_drain_rounds

    def test_rounds_are_not_quiescent(self):
        """A single free-running interval may end with work still queued
        — the defining difference from the barrier-stepped engine."""
        config = ClusterConfig(full_mesh(3))
        cluster = Cluster(config, delta_bp_rr, SetLattice(), "free")
        transport = cluster.transport
        assert isinstance(transport, FreeRunTransport)
        cluster.run_round(lambda node: [lambda state: SetLattice({"x"})])
        # The perpetual timers alone guarantee a non-empty queue: every
        # replica's next tick is already scheduled past the horizon.
        assert len(transport.queue) > 0

    def test_replays_exactly(self):
        def run():
            config = ClusterConfig(full_mesh(3), tick_jitter=0.05, tick_seed=9)
            cluster = Cluster(config, delta_bp_rr, SetLattice(), "free")
            cluster.run_rounds(
                4,
                lambda r, n: [lambda state: SetLattice({f"{n}:{r}"})],
            )
            cluster.drain()
            return [
                (m.time, m.src, m.dst, m.kind, m.payload_bytes)
                for m in cluster.metrics.messages
            ]

        assert run() == run()

    def test_crashed_replica_keeps_its_own_timeline(self):
        config = ClusterConfig(full_mesh(3))
        cluster = Cluster(config, delta_bp_rr, SetLattice(), "free")
        transport = cluster.transport
        cluster.run_round(lambda node: [lambda state: SetLattice({"a"})])
        transport.crash(2)
        before = transport._ticks.get(2, 0)
        cluster.run_round()
        cluster.run_round()
        # The timer kept firing silently while the node was down...
        assert transport._ticks.get(2, 0) > before
        transport.recover(2)
        cluster.drain()
        assert cluster.converged()


class TestExecutionModelGating:
    def test_free_over_tcp_is_a_usage_error(self):
        with pytest.raises(ValueError, match="cannot run over"):
            KVConfig(replicas=4, keys=16, rounds=2, execution="free", transport="tcp")

    def test_unknown_execution_model_is_rejected(self):
        with pytest.raises(ValueError, match="unknown execution model"):
            KVConfig(replicas=4, keys=16, rounds=2, execution="fast")

    def test_free_resolves_to_the_freerun_transport(self):
        config = KVConfig(replicas=4, keys=16, rounds=2, execution="free")
        assert config.resolved_transport() == "free"
        assert config.cluster_config() is not None
        assert config.cluster_config().tick_jitter == config.tick_jitter

    def test_rounds_keeps_the_default_cluster_config(self):
        """No ClusterConfig override in round mode: the sweep keeps the
        exact defaults the byte-identity fingerprints were pinned on."""
        config = KVConfig(replicas=4, keys=16, rounds=2)
        assert config.resolved_transport() == "sim"
        assert config.cluster_config() is None


class TestTransportStalledDiagnostics:
    def test_stall_names_the_round_and_the_stalled_replicas(self):
        transport = AsyncTcpTransport(
            ClusterConfig(line(2)), MetricsCollector(2), settle_timeout_s=0.05
        )
        try:
            transport._round = 7
            transport._pending = 3
            transport._pending_by_dst = {1: 2, 0: 1}
            transport._progress = asyncio.Event()
            with pytest.raises(TransportStalled) as excinfo:
                transport._loop.run_until_complete(transport._settle())
            message = str(excinfo.value)
            assert "round 7" in message
            assert "replica 0 (1 frame)" in message
            assert "replica 1 (2 frames)" in message
        finally:
            transport._loop.close()
