"""Unit tests for GCounter and PNCounter."""

import pytest

from repro.crdt import GCounter, PNCounter
from repro.lattice import MapLattice, MaxInt, PairLattice


class TestGCounter:
    def test_initial_value_is_zero(self):
        assert GCounter("A").value == 0

    def test_increment(self):
        counter = GCounter("A")
        counter.increment()
        counter.increment()
        assert counter.value == 2
        assert counter.entry("A") == 2

    def test_increment_by(self):
        counter = GCounter("A")
        counter.increment(by=5)
        assert counter.value == 5

    def test_increment_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GCounter("A").increment(0)
        with pytest.raises(ValueError):
            GCounter("A").increment(-3)

    def test_delta_is_single_entry(self):
        """incδ returns only the updated entry (Figure 2a)."""
        counter = GCounter("A")
        counter.increment()
        counter.increment()
        delta = counter.increment()
        assert delta == MapLattice({"A": MaxInt(3)})
        assert delta.size_units() == 1

    def test_merge_concurrent_increments(self):
        a, b = GCounter("A"), GCounter("B")
        a.increment(); a.increment()
        b.increment(); b.increment(); b.increment()
        a.merge(b)
        b.merge(a)
        assert a.value == b.value == 5
        assert a.state == b.state

    def test_merge_is_idempotent(self):
        a, b = GCounter("A"), GCounter("B")
        a.increment(); b.increment()
        a.merge(b); a.merge(b); a.merge(b)
        assert a.value == 2

    def test_join_takes_entrywise_max(self):
        """Merging stale copies never double counts."""
        a = GCounter("A")
        a.increment(); a.increment()
        stale = GCounter("B", state=a.state)  # copy of A's state
        a.increment()
        a.merge(stale)
        assert a.value == 3

    def test_diff_between_replicas(self):
        a, b = GCounter("A"), GCounter("B")
        a.increment(by=4)
        b.increment(by=2)
        missing = a.diff(b.state)
        assert missing == MapLattice({"A": MaxInt(4)})
        b.merge(missing)
        assert b.value == 6

    def test_mutator_delta_duality(self):
        """m(x) = x ⊔ mδ(x) — the delta-CRDT defining equation."""
        counter = GCounter("A")
        counter.increment(); counter.increment()
        before = counter.state
        delta = counter.increment_delta(before)
        assert before.join(delta) == MapLattice({"A": MaxInt(3)})

    def test_bottom(self):
        assert GCounter.bottom().is_bottom


class TestPNCounter:
    def test_increment_and_decrement(self):
        c = PNCounter("A")
        c.increment(5)
        c.decrement(2)
        assert c.value == 3

    def test_value_can_go_negative(self):
        c = PNCounter("A")
        c.decrement(4)
        assert c.value == -4

    def test_rejects_non_positive_amounts(self):
        with pytest.raises(ValueError):
            PNCounter("A").increment(0)
        with pytest.raises(ValueError):
            PNCounter("A").decrement(-1)

    def test_concurrent_inc_dec_converge(self):
        a, b = PNCounter("A"), PNCounter("B")
        a.increment(10)
        b.decrement(3)
        a.merge(b); b.merge(a)
        assert a.value == b.value == 7
        assert a.state == b.state

    def test_delta_isolates_inc_or_dec(self):
        c = PNCounter("A")
        c.increment(2)
        delta = c.decrement(3)
        assert delta == MapLattice({"A": PairLattice(MaxInt(0), MaxInt(3))})

    def test_tallies(self):
        c = PNCounter("A")
        c.increment(2); c.decrement(1)
        assert c.tallies("A") == (2, 1)
        assert c.tallies("ghost") == (0, 0)

    def test_appendix_c_decomposition_shape(self):
        """The PNCounter state decomposes per Appendix C."""
        a = PNCounter("A")
        a.increment(2); a.decrement(3)
        b = PNCounter("B", state=a.state)
        b.increment(5); b.decrement(5)
        parts = list(b.state.decompose())
        assert len(parts) == 4

    def test_merge_idempotent_commutative(self):
        a, b = PNCounter("A"), PNCounter("B")
        a.increment(1)
        b.decrement(2)
        ab = PNCounter("X", state=a.state)
        ab.merge(b)
        ba = PNCounter("Y", state=b.state)
        ba.merge(a)
        assert ab.state == ba.state
