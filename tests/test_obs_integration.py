"""Tracing threaded through the stack: exactness, no-op, CLI.

The load-bearing invariant: the transport emits the ``send`` trace
event at the exact point it records a :class:`MessageRecord` — before
the loss coin flip, with the same byte arguments — so byte totals
re-derived from the trace file alone equal the live collector's totals,
on the simulated and the real TCP transport alike.
"""

import io
import os

import pytest

from repro.cli import main
from repro.experiments.kv_sweep import KVConfig, run_kv_repair_cell
from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.cluster import KVCluster
from repro.kv.ring import HashRing
from repro.obs import (
    MemoryTraceSink,
    Tracer,
    read_trace,
    render_report,
    segment_phases,
    split_cells,
    trace_totals,
)
from repro.sync import ALGORITHMS

SMALL = KVConfig(
    replicas=6,
    keys=80,
    rounds=6,
    ops_per_node=3,
    shards=12,
    replication=2,
    repair_interval=3,
    repair_fanout=8,
)


def traced_fault_cell(tmp_path, transport):
    path = str(tmp_path / f"trace_{transport}.jsonl")
    config = KVConfig(
        **{**SMALL.__dict__, "transport": transport, "trace": path}
    )
    cell = run_kv_repair_cell(config, "delta-based-bp-rr", "wal")
    return cell, read_trace(path)


class TestTraceTotalsMatchCollector:
    @pytest.mark.parametrize("transport", ["sim", "tcp"])
    def test_fault_replay_totals_rederive_exactly(self, tmp_path, transport):
        cell, events = traced_fault_cell(tmp_path, transport)
        totals = trace_totals(events)
        assert totals["messages"] == cell.messages
        assert totals["payload_bytes"] == cell.payload_bytes
        assert totals["metadata_bytes"] == cell.metadata_bytes
        # The replay exercises the machinery the trace exists to explain.
        assert cell.converged
        types = {event.type for event in events}
        assert {"round", "send", "deliver", "crash", "recover",
                "partition", "heal", "wal-commit", "wal-replay",
                "cell-start", "cell-end", "timing"} <= types

    def test_phases_cover_the_fault_schedule(self, tmp_path):
        _, events = traced_fault_cell(tmp_path, "sim")
        (label, cell_events), = split_cells(events)
        assert label == "wal"
        phase_labels = [phase for phase, _ in segment_phases(cell_events)]
        assert phase_labels[0] == "traffic"
        for expected in ("partition", "healed", "crash", "recovery"):
            assert expected in phase_labels

    def test_seeded_trace_is_deterministic(self, tmp_path):
        # Wall-clock seconds inside the timing snapshot are the only part
        # of a trace that may vary between seeded runs; everything else —
        # event order included — must be byte-for-byte stable.
        def stable_lines(path):
            with open(path, "r", encoding="utf-8") as handle:
                return [
                    line
                    for line in handle
                    if '"type":"timing"' not in line
                ]

        first_path = str(tmp_path / "a.jsonl")
        second_path = str(tmp_path / "b.jsonl")
        for path in (first_path, second_path):
            config = KVConfig(**{**SMALL.__dict__, "trace": path})
            run_kv_repair_cell(config, "delta-based-bp-rr", "wal")
        assert stable_lines(first_path) == stable_lines(second_path)


class TestDisabledTracingIsANoOp:
    def test_no_tracer_and_no_timers_anywhere(self):
        ring = HashRing(replicas=(0, 1, 2), n_shards=8)
        cluster = KVCluster(
            ring,
            ALGORITHMS["delta-based"],
            antientropy=AntiEntropyConfig(repair_interval=3, repair_mode="digest"),
        )
        try:
            assert cluster.tracer is None
            assert cluster.timers is None
            assert cluster.transport.tracer is None
            assert cluster.transport.timers is None
            assert cluster._lag_probe is None
            for runtime in cluster.runtimes:
                assert runtime.timers is None
            for node in cluster.nodes:
                assert node.tracer is None
            cluster.update("cnt:x", "increment", 1)
            cluster.run_round()
            cluster.drain()
        finally:
            cluster.close()

    def test_untraced_run_writes_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        config = KVConfig(**SMALL.__dict__)
        run_kv_repair_cell(config, "delta-based-bp-rr", "wal")
        assert os.listdir(tmp_path) == []

    def test_traced_and_untraced_runs_measure_identically(self, tmp_path):
        untraced = run_kv_repair_cell(
            KVConfig(**SMALL.__dict__), "delta-based-bp-rr", "wal"
        )
        traced, _ = traced_fault_cell(tmp_path, "sim")
        assert traced == untraced


class TestLagProbe:
    def test_partition_produces_lag_events(self):
        sink = MemoryTraceSink()
        ring = HashRing(replicas=(0, 1, 2, 3), n_shards=8)
        cluster = KVCluster(
            ring,
            ALGORITHMS["delta-based"],
            antientropy=AntiEntropyConfig(repair_interval=3, repair_mode="digest"),
            trace=Tracer(sink),
        )
        try:
            cluster.partition([0, 1])
            for index in range(3):
                cluster.update(f"cnt:k{index}", "increment", 1)
                cluster.run_round()
            cluster.heal()
            cluster.drain()
        finally:
            cluster.close()
        lags = [event for event in read_trace(sink) if event.type == "lag"]
        assert lags, "divergence windows never closed into lag events"
        for event in lags:
            assert event.shard is not None
            assert event.extra["rounds"] >= 1


class TestTraceCli:
    def test_report_renders_phases(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        config = KVConfig(**{**SMALL.__dict__, "trace": path})
        run_kv_repair_cell(config, "delta-based-bp-rr", "wal")
        stream = io.StringIO()
        assert main(["trace", "report", path], stream=stream) == 0
        report = stream.getvalue()
        assert "cell: wal" in report
        assert "recovery" in report
        assert "hot path" in report

    def test_report_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_kv_flag_writes_the_trace(self, tmp_path):
        path = str(tmp_path / "kv.jsonl")
        stream = io.StringIO()
        code = main(
            [
                "kv", "--replicas", "6", "--keys", "60", "--rounds", "4",
                "--ops", "2", "--shards", "8", "--replication", "2",
                "--trace", path,
            ],
            stream=stream,
        )
        assert code == 0
        events = read_trace(path)
        assert trace_totals(events)["messages"] > 0
        # One cell per swept algorithm, all in the one file.
        assert len(split_cells(events)) == 4
        assert "empty trace" not in render_report(events)
