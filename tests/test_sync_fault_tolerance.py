"""Fault-injection tests: duplication, reordering, and message loss.

State-based CRDT synchronization tolerates duplicated and reordered
messages by construction (joins are idempotent and commutative), and
the paper presents Algorithm 1 under a no-loss assumption.  These tests
verify the tolerance claims and the boundary:

* every protocol converges under duplicated and reordered delivery;
* state-based and Scuttlebutt converge under heavy *loss* (they carry
  or re-derive everything on every exchange);
* classic clear-the-buffer delta-based genuinely loses updates under
  loss — and the paper's suggested fix (sequence numbers + acks,
  :class:`~repro.sync.reliable.DeltaBasedAcked`) restores convergence.
"""

import pytest

from repro.lattice import SetLattice
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.runner import run_experiment
from repro.sim.topology import line, partial_mesh, ring
from repro.sizes import SizeModel
from repro.sync import (
    DeltaBasedAcked,
    Scuttlebutt,
    StateBased,
    classic,
    delta_acked_factory,
    delta_bp_rr,
)
from repro.sync.protocol import Message
from repro.workloads import GSetWorkload

MODEL = SizeModel()


def gset_add(element):
    def mutator(state):
        if element in state:
            return state.bottom_like()
        return SetLattice((element,))

    return mutator


class TestDuplication:
    """Channels may duplicate; joins are idempotent."""

    def deliver_twice(self, factory):
        a = factory(0, [1], SetLattice(), 2, MODEL)
        b = factory(1, [0], SetLattice(), 2, MODEL)
        a.local_update(gset_add("x"))
        for send in a.sync_messages():
            replies = b.handle_message(0, send.message)
            replies += b.handle_message(0, send.message)  # duplicate
            for reply in replies:
                a.handle_message(1, reply.message)
        return a, b

    def test_state_based(self):
        a, b = self.deliver_twice(StateBased)
        assert b.state == SetLattice({"x"})

    def test_delta_classic_duplicate_group_dropped(self):
        a, b = self.deliver_twice(classic)
        assert b.state == SetLattice({"x"})
        # The duplicate failed the inflation check: buffered once only.
        assert len(b.buffer) == 1

    def test_delta_bp_rr(self):
        a, b = self.deliver_twice(delta_bp_rr)
        assert b.state == SetLattice({"x"})
        assert len(b.buffer) == 1

    def test_acked_variant(self):
        a, b = self.deliver_twice(delta_acked_factory)
        assert b.state == SetLattice({"x"})
        assert len(b.buffer) == 1

    def test_scuttlebutt_versions_deduplicate(self):
        a = Scuttlebutt(0, [1], SetLattice(), 2, MODEL)
        b = Scuttlebutt(1, [0], SetLattice(), 2, MODEL)
        a.local_update(gset_add("x"))
        [digest] = b.sync_messages()
        [reply] = a.handle_message(1, digest.message)
        b.handle_message(0, reply.message)
        b.handle_message(0, reply.message)  # duplicate delta delivery
        assert b.state == SetLattice({"x"})
        assert len(b.store) == 1


class TestReordering:
    def test_delta_groups_commute(self):
        """Joining δ-groups in any order yields the same state."""
        receiver_fwd = delta_bp_rr(1, [0], SetLattice(), 2, MODEL)
        receiver_rev = delta_bp_rr(1, [0], SetLattice(), 2, MODEL)
        first = Message("delta", SetLattice({"a"}), 1, 1, 8, 1)
        second = Message("delta", SetLattice({"b", "c"}), 2, 2, 8, 1)
        receiver_fwd.handle_message(0, first)
        receiver_fwd.handle_message(0, second)
        receiver_rev.handle_message(0, second)
        receiver_rev.handle_message(0, first)
        assert receiver_fwd.state == receiver_rev.state == SetLattice({"a", "b", "c"})

    def test_stale_full_state_is_harmless(self):
        node = StateBased(0, [1], SetLattice(), 2, MODEL)
        node.handle_message(1, Message("state", SetLattice({"a", "b"}), 2, 2, 0))
        node.handle_message(1, Message("state", SetLattice({"a"}), 1, 1, 0))  # stale
        assert node.state == SetLattice({"a", "b"})


class TestLoss:
    """Message loss: who survives it, who does not."""

    LOSS = 0.35

    def run_lossy(self, factory, n=6, rounds=8, max_drain=400):
        config = ClusterConfig(
            topology=ring(n),
            loss_rate=self.LOSS,
            loss_seed=7,
            max_drain_rounds=max_drain,
        )
        workload = GSetWorkload(n, rounds)
        cluster = Cluster(config, factory, workload.bottom())
        cluster.run_rounds(rounds, workload.updates_for)
        cluster.drain()
        return cluster

    def test_loss_actually_happens(self):
        cluster = self.run_lossy(StateBased)
        assert cluster.messages_dropped > 0

    def test_state_based_converges_under_loss(self):
        cluster = self.run_lossy(StateBased)
        assert cluster.converged()
        assert cluster.nodes[0].state.size_units() == 6 * 8

    def test_scuttlebutt_converges_under_loss(self):
        cluster = self.run_lossy(Scuttlebutt)
        assert cluster.converged()
        assert cluster.nodes[0].state.size_units() == 6 * 8

    def test_acked_delta_converges_under_loss(self):
        """The paper's sequence-number-and-ack extension at work."""
        cluster = self.run_lossy(delta_acked_factory)
        assert cluster.converged()
        assert cluster.nodes[0].state.size_units() == 6 * 8
        # Buffers fully drain once the (also lossy) acks get through.
        for _ in range(100):
            if all(not node.buffer for node in cluster.nodes):
                break
            cluster.run_round(updates=None)
        assert all(not node.buffer for node in cluster.nodes)

    def test_clear_buffer_delta_loses_updates_under_loss(self):
        """Algorithm 1 without acks genuinely needs reliable channels:
        a dropped δ-group is gone once the sender clears its buffer."""
        with pytest.raises(RuntimeError, match="no convergence"):
            self.run_lossy(delta_bp_rr, max_drain=60)

    def test_acked_without_loss_matches_bp_rr_payload(self):
        """With no loss, acking changes bookkeeping, not payloads."""
        topo = partial_mesh(6, 2)
        plain = run_experiment(delta_bp_rr, GSetWorkload(6, 6), topo)
        acked = run_experiment(delta_acked_factory, GSetWorkload(6, 6), topo)
        assert acked.converged and plain.converged
        assert acked.payload_units() <= plain.payload_units() * 1.6


class TestAckedMechanics:
    def test_buffer_retained_until_acked(self):
        node = DeltaBasedAcked(0, [1, 2], SetLattice(), 3, MODEL)
        node.local_update(gset_add("x"))
        node.sync_messages()
        assert node.buffer  # unlike Algorithm 1, not cleared by sending
        node.handle_message(1, Message("delta-ack", (0,), 0, 0, 8, 1))
        assert node.buffer  # neighbour 2 has not acked yet
        node.handle_message(2, Message("delta-ack", (0,), 0, 0, 8, 1))
        assert not node.buffer

    def test_bp_entries_skip_origin_ack(self):
        node = DeltaBasedAcked(0, [1, 2], SetLattice(), 3, MODEL)
        node.handle_message(
            1, Message("delta-seq", (SetLattice({"y"}), (41,)), 1, 1, 8, 1)
        )
        # The entry came from neighbour 1; only neighbour 2 must ack it.
        [seq] = list(node.buffer)
        node.handle_message(2, Message("delta-ack", (seq,), 0, 0, 8, 1))
        assert not node.buffer

    def test_receiver_acks_covered_seqs(self):
        node = DeltaBasedAcked(0, [1], SetLattice(), 2, MODEL)
        [ack] = node.handle_message(
            1, Message("delta-seq", (SetLattice({"y"}), (5, 6)), 1, 1, 16, 2)
        )
        assert ack.message.kind == "delta-ack"
        assert ack.message.payload == (5, 6)

    def test_resend_until_acked(self):
        node = DeltaBasedAcked(0, [1], SetLattice(), 2, MODEL)
        node.local_update(gset_add("x"))
        first = node.sync_messages()
        second = node.sync_messages()  # no ack arrived: resend
        assert first[0].message.payload[0] == second[0].message.payload[0]
