"""Units for the conservative call graph behind the interprocedural rules.

The graph trades soundness-in-the-large for precision-in-the-small: it
resolves what it can prove (module scope, import aliases, typed
receivers, class hierarchies) and collapses everything else to the
explicit ⊤ fallback instead of guessing.  These tests pin both halves —
what resolves, and what deliberately does not.
"""

from repro.lint.callgraph import (
    build_call_graph,
    module_dotted,
    project_analysis,
    propagate_effect,
    render_dot,
    summarize_module,
)
from repro.lint.engine import Project, load_module


def project_of(sources):
    return Project(
        modules=[load_module(path, text) for path, text in sources.items()]
    )


def graph_of(sources):
    return build_call_graph(project_of(sources))


def sites_of(graph, fn_id):
    return graph.calls[fn_id]


class TestModuleDotted:
    def test_src_prefix_is_stripped(self):
        assert module_dotted("src/repro/kv/store.py") == "repro.kv.store"

    def test_package_init_names_the_package(self):
        assert module_dotted("src/repro/wal/__init__.py") == "repro.wal"

    def test_fixture_paths_work_without_src(self):
        assert module_dotted("pkg/mod.py") == "pkg.mod"


class TestIntraModuleResolution:
    def test_toplevel_call_resolves(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def callee():\n    return 1\n"
                    "def caller():\n    return callee()\n"
                )
            }
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert site.targets == ("pkg.a.callee",)
        assert not site.unknown

    def test_module_scope_shadows_suffix_matches(self):
        # Both modules define ``helper``; each caller binds its own.
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def helper():\n    return 'a'\n"
                    "def caller():\n    return helper()\n"
                ),
                "pkg/b.py": "def helper():\n    return 'b'\n",
            }
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert site.targets == ("pkg.a.helper",)

    def test_self_method_call_resolves(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "class Box:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                    "    def peek(self):\n"
                    "        return self.get()\n"
                )
            }
        )
        (site,) = sites_of(graph, "pkg.a.Box.peek")
        assert site.targets == ("pkg.a.Box.get",)

    def test_unimported_bare_name_is_external(self):
        graph = graph_of(
            {"pkg/a.py": "def caller():\n    return len([1])\n"}
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert site.targets == ()
        assert site.external == "len"
        assert not site.unknown


class TestCrossModuleResolution:
    def test_from_import_call(self):
        graph = graph_of(
            {
                "pkg/b.py": "def helper():\n    return 1\n",
                "pkg/a.py": (
                    "from pkg.b import helper\n"
                    "def caller():\n    return helper()\n"
                ),
            }
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert site.targets == ("pkg.b.helper",)

    def test_module_attribute_call(self):
        graph = graph_of(
            {
                "pkg/b.py": "def helper():\n    return 1\n",
                "pkg/a.py": (
                    "import pkg.b as b\n"
                    "def caller():\n    return b.helper()\n"
                ),
            }
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert site.targets == ("pkg.b.helper",)

    def test_package_reexport_is_chased(self):
        # ``from pkg import helper`` where the package __init__ only
        # re-exports it from the implementation module.
        graph = graph_of(
            {
                "pkg/impl.py": "def helper():\n    return 1\n",
                "pkg/__init__.py": "from pkg.impl import helper\n",
                "app.py": (
                    "from pkg import helper\n"
                    "def caller():\n    return helper()\n"
                ),
            }
        )
        (site,) = sites_of(graph, "app.caller")
        assert site.targets == ("pkg.impl.helper",)

    def test_constructed_receiver_method_call(self):
        graph = graph_of(
            {
                "pkg/b.py": (
                    "class Store:\n"
                    "    def close(self):\n"
                    "        return None\n"
                ),
                "pkg/a.py": (
                    "from pkg.b import Store\n"
                    "def caller():\n"
                    "    store = Store()\n"
                    "    store.close()\n"
                ),
            }
        )
        close_sites = [
            s
            for s in sites_of(graph, "pkg.a.caller")
            if s.callee_name == "close"
        ]
        assert close_sites[0].targets == ("pkg.b.Store.close",)


class TestDynamicDispatch:
    def test_untyped_receiver_is_top(self):
        graph = graph_of(
            {"pkg/a.py": "def caller(x):\n    return x.frobnicate()\n"}
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert site.unknown
        assert site.targets == ()

    def test_override_widens_to_may_call(self):
        # Dispatch through a base-typed receiver may land on any
        # project subclass override.
        graph = graph_of(
            {
                "pkg/a.py": (
                    "class Base:\n"
                    "    def run(self):\n"
                    "        return 0\n"
                    "class Derived(Base):\n"
                    "    def run(self):\n"
                    "        return 1\n"
                    "def caller(obj: Base):\n"
                    "    return obj.run()\n"
                )
            }
        )
        (site,) = sites_of(graph, "pkg.a.caller")
        assert set(site.targets) == {"pkg.a.Base.run", "pkg.a.Derived.run"}

    def test_top_site_does_not_propagate_effects(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def seed():\n    return 1\n"
                    "def caller(x):\n    return x.anything()\n"
                )
            }
        )
        effected, _ = propagate_effect(graph, {"pkg.a.seed"})
        assert effected == {"pkg.a.seed"}


class TestCyclesAndPropagation:
    def test_mutual_recursion_is_one_scc(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def even(n):\n    return n == 0 or odd(n - 1)\n"
                    "def odd(n):\n    return n != 0 and even(n - 1)\n"
                )
            }
        )
        (scc,) = [s for s in graph.sccs if len(s) > 1]
        assert set(scc) == {"pkg.a.even", "pkg.a.odd"}

    def test_sccs_are_callees_first(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def c():\n    return 1\n"
                    "def b():\n    return c()\n"
                    "def a():\n    return b()\n"
                )
            }
        )
        order = [fn for scc in graph.sccs for fn in scc]
        assert order.index("pkg.a.c") < order.index("pkg.a.b")
        assert order.index("pkg.a.b") < order.index("pkg.a.a")

    def test_effect_crosses_a_cycle_and_terminates(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def sink():\n    return 1\n"
                    "def ping(n):\n    return pong(n) + sink()\n"
                    "def pong(n):\n    return ping(n)\n"
                    "def entry():\n    return ping(3)\n"
                )
            }
        )
        effected, witness = propagate_effect(graph, {"pkg.a.sink"})
        assert effected == {
            "pkg.a.sink",
            "pkg.a.ping",
            "pkg.a.pong",
            "pkg.a.entry",
        }
        # Witnesses let a rule rebuild the chain down to the seed.
        chain = ["pkg.a.entry"]
        while chain[-1] in witness:
            chain.append(witness[chain[-1]][1])
        assert chain[-1] == "pkg.a.sink"


class TestCachingAndExport:
    def test_module_summaries_are_content_cached(self):
        module = load_module("pkg/a.py", "def f():\n    return 1\n")
        assert summarize_module(module) is summarize_module(module)

    def test_project_analysis_is_memoized_per_project(self):
        project = project_of(
            {"pkg/a.py": "def f():\n    return 1\n"}
        )
        assert project_analysis(project) is project_analysis(project)

    def test_dot_export_lists_nodes_and_edges(self):
        graph = graph_of(
            {
                "pkg/a.py": (
                    "def callee():\n    return 1\n"
                    "def caller(x):\n"
                    "    x.unresolved()\n"
                    "    return callee()\n"
                )
            }
        )
        dot = render_dot(graph)
        assert dot.startswith("digraph")
        assert '"pkg.a.caller" -> "pkg.a.callee";' in dot
        # The ⊤ count is part of the artifact: blind spots stay visible.
        assert "⊤" in dot
