"""Property-based tests: lattice laws and decomposition theory.

Hypothesis drives every lattice construct in the library through the
join-semilattice axioms, the derived partial order, the decomposition
definitions of Section III (existence, uniqueness via canonical
reprs, irredundancy), and the two defining properties of the optimal
delta ``∆`` — the foundation the RR optimization rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.lattice import is_irredundant_decomposition, is_join_irreducible, join_all
from repro.sizes import SizeModel

from conftest import ALL_LATTICE_STRATEGIES

MODEL = SizeModel()


def pairs_from(family: str):
    strategy = ALL_LATTICE_STRATEGIES[family]
    return st.tuples(strategy, strategy)


def triples_from(family: str):
    strategy = ALL_LATTICE_STRATEGIES[family]
    return st.tuples(strategy, strategy, strategy)


family_and_pair = st.sampled_from(sorted(ALL_LATTICE_STRATEGIES)).flatmap(
    lambda fam: st.tuples(st.just(fam), pairs_from(fam))
)
family_and_triple = st.sampled_from(sorted(ALL_LATTICE_STRATEGIES)).flatmap(
    lambda fam: st.tuples(st.just(fam), triples_from(fam))
)
family_and_value = st.sampled_from(sorted(ALL_LATTICE_STRATEGIES)).flatmap(
    lambda fam: st.tuples(st.just(fam), ALL_LATTICE_STRATEGIES[fam])
)


# ---------------------------------------------------------------------------
# Join-semilattice laws.
# ---------------------------------------------------------------------------


@given(family_and_value)
def test_join_idempotent(case):
    _, x = case
    assert x.join(x) == x


@given(family_and_pair)
def test_join_commutative(case):
    _, (x, y) = case
    assert x.join(y) == y.join(x)


@given(family_and_triple)
def test_join_associative(case):
    _, (x, y, z) = case
    assert x.join(y).join(z) == x.join(y.join(z))


@given(family_and_value)
def test_bottom_is_identity(case):
    _, x = case
    bottom = x.bottom_like()
    assert bottom.join(x) == x
    assert x.join(bottom) == x
    assert bottom.is_bottom


@given(family_and_pair)
def test_join_is_upper_bound(case):
    _, (x, y) = case
    joined = x.join(y)
    assert x.leq(joined)
    assert y.leq(joined)


@given(family_and_pair)
def test_leq_agrees_with_join(case):
    """x ⊑ y ⇔ x ⊔ y = y — the paper's definition of the order."""
    _, (x, y) = case
    assert x.leq(y) == (x.join(y) == y)


@given(family_and_pair)
def test_leq_antisymmetric(case):
    _, (x, y) = case
    if x.leq(y) and y.leq(x):
        assert x == y


@given(family_and_triple)
def test_leq_transitive(case):
    _, (x, y, z) = case
    if x.leq(y) and y.leq(z):
        assert x.leq(z)


# ---------------------------------------------------------------------------
# Decomposition properties (Definitions 1-3, Proposition 2).
# ---------------------------------------------------------------------------


@given(family_and_value)
def test_decomposition_joins_back(case):
    """⊔⇓x = x (Definition 2)."""
    _, x = case
    assert join_all(x.decompose(), x.bottom_like()) == x


@given(family_and_value)
def test_decomposition_parts_are_join_irreducible(case):
    _, x = case
    for part in x.decompose():
        assert is_join_irreducible(part), f"{part!r} not join-irreducible"


@given(family_and_value)
@settings(max_examples=60)
def test_decomposition_is_irredundant(case):
    """No element of ⇓x may be dropped (Definition 3)."""
    _, x = case
    parts = list(x.decompose())
    assert is_irredundant_decomposition(parts, x)


@given(family_and_value)
def test_bottom_decomposes_to_nothing(case):
    _, x = case
    assert list(x.bottom_like().decompose()) == []


@given(family_and_value)
def test_decomposition_parts_below_state(case):
    """⇓x ⊆ {r | r ⊑ x} (Proposition 2)."""
    _, x = case
    for part in x.decompose():
        assert part.leq(x)


# ---------------------------------------------------------------------------
# Optimal delta properties (Section III-B).
# ---------------------------------------------------------------------------


@given(family_and_pair)
def test_delta_join_recovers_join(case):
    """∆(a, b) ⊔ b = a ⊔ b."""
    _, (a, b) = case
    assert a.delta(b).join(b) == a.join(b)


@given(family_and_pair)
def test_delta_below_a(case):
    _, (a, b) = case
    assert a.delta(b).leq(a)


@given(family_and_pair)
def test_delta_bottom_iff_leq(case):
    """∆(a, b) = ⊥ exactly when a ⊑ b."""
    _, (a, b) = case
    assert a.delta(b).is_bottom == a.leq(b)


@given(family_and_pair)
def test_delta_matches_decomposition_definition(case):
    """∆(a, b) = ⊔{y ∈ ⇓a | y ⋢ b} — fast paths equal the definition."""
    _, (a, b) = case
    by_definition = join_all(
        (y for y in a.decompose() if not y.leq(b)), a.bottom_like()
    )
    assert a.delta(b) == by_definition


@given(family_and_pair)
def test_delta_minimality_against_irreducibles(case):
    """Every irreducible of ∆(a,b) is an irreducible of a not below b.

    Together with the join property this is exactly the minimality
    claim: ∆ contains nothing that b already covers.
    """
    _, (a, b) = case
    d = a.delta(b)
    for part in d.decompose():
        assert not part.leq(b)


@given(family_and_value)
def test_delta_with_self_is_bottom(case):
    _, a = case
    assert a.delta(a).is_bottom


@given(family_and_value)
def test_delta_with_bottom_is_self(case):
    _, a = case
    assert a.delta(a.bottom_like()) == a


# ---------------------------------------------------------------------------
# Size accounting sanity.
# ---------------------------------------------------------------------------


@given(family_and_value)
def test_size_units_equals_decomposition_size_for_flat_types(case):
    """Units equal the irreducible count (the paper's element metric)."""
    family, x = case
    if family in ("LexPair", "LinearSum"):
        return  # phase markers legitimately diverge from irreducible count
    assert x.size_units() == len(list(x.decompose()))


@given(family_and_value)
def test_size_bytes_non_negative_and_bottom_free(case):
    _, x = case
    assert x.size_bytes(MODEL) >= 0
    assert x.bottom_like().size_bytes(MODEL) == 0


@given(family_and_pair)
def test_join_never_shrinks_units(case):
    family, (a, b) = case
    if family in ("LexPair", "LinearSum", "MaxElements"):
        # These joins legitimately discard dominated content outright.
        return
    assert a.join(b).size_units() >= max(a.size_units(), b.size_units())


@given(family_and_value)
def test_hash_equality_contract(case):
    _, x = case
    same = x.join(x.bottom_like())
    assert same == x
    assert hash(same) == hash(x)
