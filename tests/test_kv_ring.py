"""Consistent-hash ring: determinism, placement, and rebalancing."""

import pytest

from repro.kv.ring import HashRing, stable_hash


class TestDeterminism:
    def test_same_parameters_same_placement(self):
        a = HashRing(range(10), n_shards=64, replication=3)
        b = HashRing(range(10), n_shards=64, replication=3)
        assert a.assignment() == b.assignment()

    def test_replica_order_is_irrelevant(self):
        a = HashRing([3, 1, 4, 0, 2], n_shards=16, replication=2)
        b = HashRing(range(5), n_shards=16, replication=2)
        assert a.assignment() == b.assignment()

    def test_stable_hash_is_machine_independent(self):
        # A pinned value: Python's own hash() is salted per process,
        # stable_hash must not be.
        assert stable_hash("user:42") == stable_hash("user:42")
        assert stable_hash("user:42") != stable_hash("user:43")


class TestPlacement:
    def test_owner_groups_have_replication_distinct_members(self):
        ring = HashRing(range(12), n_shards=64, replication=3)
        for shard in range(ring.n_shards):
            owners = ring.shard_owners(shard)
            assert len(owners) == 3
            assert len(set(owners)) == 3
            assert all(o in ring.replicas for o in owners)

    def test_key_to_shard_ignores_membership(self):
        small = HashRing(range(4), n_shards=32, replication=2)
        large = HashRing(range(40), n_shards=32, replication=2)
        for key in (f"k:{i}" for i in range(100)):
            assert small.shard_of(key) == large.shard_of(key)

    def test_owners_matches_shard_owners(self):
        ring = HashRing(range(6), n_shards=16, replication=3)
        for key in (f"cnt:{i}" for i in range(50)):
            assert ring.owners(key) == ring.shard_owners(ring.shard_of(key))
            assert ring.coordinator(key) == ring.owners(key)[0]

    def test_shards_owned_by_inverts_assignment(self):
        ring = HashRing(range(8), n_shards=32, replication=3)
        for replica in ring.replicas:
            for shard in ring.shards_owned_by(replica):
                assert replica in ring.shard_owners(shard)
        total = sum(len(ring.shards_owned_by(r)) for r in ring.replicas)
        assert total == ring.n_shards * ring.replication

    def test_load_is_spread(self):
        """No replica owns a wildly disproportionate shard share."""
        ring = HashRing(range(8), n_shards=256, replication=3, vnodes=128)
        counts = [len(ring.shards_owned_by(r)) for r in ring.replicas]
        expected = 256 * 3 / 8
        assert max(counts) < 2.5 * expected
        assert min(counts) > 0


class TestRebalancing:
    def test_adding_a_replica_moves_a_bounded_fraction(self):
        ring = HashRing(range(16), n_shards=256, replication=3)
        grown = ring.with_replica(16)
        moved = ring.moved_shards(grown)
        # Walk membership changes only where the new replica's vnodes
        # land: ~replication/n of shards, far from a full reshuffle.
        assert 0 < len(moved) < 0.5 * ring.n_shards
        # Keys only move when their shard's owner group changed.
        moved_set = set(moved)
        for key in (f"set:{i:04d}" for i in range(200)):
            if ring.shard_of(key) not in moved_set:
                assert set(ring.owners(key)) == set(grown.owners(key))

    def test_removing_a_replica_reassigns_only_its_shards_and_walks(self):
        ring = HashRing(range(10), n_shards=128, replication=3)
        shrunk = ring.without_replica(9)
        for shard in range(ring.n_shards):
            if 9 not in ring.shard_owners(shard):
                # Groups that never contained the leaver mostly stay put.
                continue
            assert 9 not in shrunk.shard_owners(shard)
        # Every shard the leaver owned found a replacement.
        assert all(len(shrunk.shard_owners(s)) == 3 for s in range(128))

    def test_round_trip_membership(self):
        ring = HashRing(range(6), n_shards=64, replication=2)
        back = ring.with_replica(6).without_replica(6)
        assert back.assignment() == ring.assignment()


class TestMembershipValidation:
    def test_adding_an_existing_replica_raises(self):
        """The set() dedup used to swallow duplicates: an 'add' of an
        existing member silently returned an identical ring."""
        ring = HashRing(range(4), n_shards=16, replication=2)
        with pytest.raises(ValueError, match="replica 2 is already a member"):
            ring.with_replica(2)

    def test_removing_an_unknown_replica_raises(self):
        ring = HashRing(range(4), n_shards=16, replication=2)
        with pytest.raises(ValueError, match="replica 9 is not a member"):
            ring.without_replica(9)

    def test_removal_below_replication_is_diagnosed_at_the_call_site(self):
        """Not the constructor's generic 'replication 3 exceeds replica
        count 2' — the error names the removal that broke the invariant."""
        ring = HashRing(range(3), n_shards=8, replication=3)
        with pytest.raises(
            ValueError, match="removing replica 2 would leave 2 < replication 3"
        ):
            ring.without_replica(2)

    def test_moved_fraction_stays_bounded_across_seeds(self):
        """~replication/n of shards move, for any membership size —
        the consistent-hash promise live rebalancing depends on."""
        for n in (8, 12, 16, 24):
            ring = HashRing(range(n), n_shards=256, replication=3)
            grown = ring.with_replica(n)
            added_bound = 256 * 3 / (n + 1)
            assert 0 < len(ring.moved_shards(grown)) < 2.5 * added_bound
            shrunk = ring.without_replica(n - 1)
            removed_bound = 256 * 3 / n
            assert 0 < len(ring.moved_shards(shrunk)) < 2.5 * removed_bound

    def test_add_remove_round_trip_restores_placement(self):
        """Membership changes are pure functions of the member set: an
        add→remove round trip lands on the identical assignment."""
        ring = HashRing(range(10), n_shards=64, replication=3)
        back = ring.with_replica(10).without_replica(10)
        assert back.assignment() == ring.assignment()
        # And re-running the same change reproduces the same placement.
        assert (
            ring.with_replica(10).assignment()
            == ring.with_replica(10).assignment()
        )


class TestValidation:
    def test_replication_beyond_membership(self):
        with pytest.raises(ValueError, match="replication"):
            HashRing(range(2), replication=3)

    def test_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_incomparable_rings(self):
        a = HashRing(range(4), n_shards=16)
        b = HashRing(range(4), n_shards=32)
        with pytest.raises(ValueError):
            a.moved_shards(b)
