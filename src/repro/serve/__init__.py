"""repro.serve — the multi-process serving layer.

The jump from harness to system: each replica of the sharded CRDT
store runs as its own OS process (:mod:`~repro.serve.replica`) serving
two sockets — a peer plane speaking the in-process TCP transport's
exact wire format, and a client/control plane speaking
:mod:`~repro.serve.frames`.  A :class:`ProcessCluster` spawns, wires,
crashes (SIGKILL), and respawns those processes and drives the same
round/drain schedule as the in-process harnesses; a :class:`KVClient`
is the quorum-aware front end (``r``/``w`` knobs, read repair); the
:class:`LoadGenerator` measures what clients actually see — latency
percentiles and session staleness.
"""

from repro.serve import frames
from repro.serve.client import KVClient, join_replies, stale_repliers
from repro.serve.cluster import (
    ControlClient,
    ProcessCluster,
    ReplicaDied,
    raise_for_status,
)
from repro.serve.frames import FrameError, Request, Response
from repro.serve.loadgen import LoadGenerator, LoadReport, percentile
from repro.serve.replica import (
    HOST,
    ReplicaOptions,
    ReplicaProcess,
    portfile_path,
)

__all__ = [
    "frames",
    "FrameError",
    "Request",
    "Response",
    "HOST",
    "ReplicaOptions",
    "ReplicaProcess",
    "portfile_path",
    "ControlClient",
    "ProcessCluster",
    "ReplicaDied",
    "raise_for_status",
    "KVClient",
    "join_replies",
    "stale_repliers",
    "LoadGenerator",
    "LoadReport",
    "percentile",
]
