"""One OS process serving one replica of the sharded CRDT store.

This is the jump from "harness that converges" to "system that
serves": where :class:`~repro.net.tcp.AsyncTcpTransport` hosts every
replica inside one asyncio loop, a :class:`ReplicaProcess` is a real
process with its own event loop, its own WAL directory (advisory-locked
— see :class:`~repro.wal.storage.FileStorage`), and two listening
sockets:

* the **peer plane** speaks exactly the wire format of the in-process
  TCP transport — ``u32be(length)`` frames of :func:`repro.codec.
  frame_message` envelopes, one uvarint handshake naming the dialing
  replica — so the synchronizers, the repair escalation, and the
  handoff protocol run unmodified over genuinely separate processes;
* the **client/control plane** speaks :mod:`repro.serve.frames` — the
  get/put/remove/repair data verbs a :class:`~repro.serve.client.
  KVClient` uses and the wire/tick/counters/roots control verbs the
  :class:`~repro.serve.cluster.ProcessCluster` controller drives
  rounds with.

Startup is the WAL-first recovery story of PR 4 run for real: the
process opens (and locks) its ``FileStorage`` directory, replays every
owned shard locally, and joins the cluster with only the genuinely
divergent remainder left for digest repair.  On boot it binds both
listeners on ephemeral ports and writes a small JSON *portfile* into
the run directory; the controller collects these and distributes the
address map with a WIRE command — replicas never guess each other's
ports.

The process deliberately has **no timers of its own**: anti-entropy
runs when the controller says TICK, exactly like the round-stepped
transports, so experiment schedules stay deterministic and comparable.
Everything store-touching runs on the single event-loop thread, so
handler interleaving is the only concurrency and the store needs no
locks.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
import time
from dataclasses import dataclass
from io import BytesIO
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.codec import (
    decode,
    decode_message,
    encode,
    frame_message,
    read_uvarint,
    write_uvarint,
)
from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.ring import HashRing
from repro.kv.store import KVRoutingError, KVStore
from repro.kv.types import Schema
from repro.lattice.map_lattice import MapLattice
from repro.serve import frames
from repro.serve.frames import Request, Response
from repro.sync.protocol import Send
from repro.wal import FileStorage, ReplicaWal, WalConfig

HOST = "127.0.0.1"

#: Milliseconds the shutdown handler waits for the response frame to
#: flush before tearing the loop down.
_SHUTDOWN_GRACE_S = 0.2


@dataclass(frozen=True)
class ReplicaOptions:
    """Everything one replica process needs to build its store.

    Every process of a cluster is started with the same shape
    parameters (`replicas`, `shards`, `replication`), so each one
    reconstructs the *identical* :class:`~repro.kv.ring.HashRing`
    locally — placement is a pure function of those parameters, and
    never travels over the wire.
    """

    replica: int
    replicas: Tuple[int, ...]
    run_dir: str
    shards: int = 32
    replication: int = 3
    algorithm: str = "delta-based-bp-rr"
    #: ``None`` disables the WAL (the ``repair`` recovery policy);
    #: otherwise the directory this replica's logs live in.
    wal_dir: Optional[str] = None
    #: ``wal`` replays and trusts the log; ``wal+repair`` replays and
    #: marks every δ-path suspect (immediate verification probes).
    recovery: str = "wal"
    wal_compact_bytes: Optional[int] = 64 * 1024
    budget_bytes: Optional[int] = None
    repair_interval: int = 0
    repair_fanout: int = 1
    repair_mode: str = "blanket"
    batch: bool = True
    #: Directory for this process's trace file (``None`` = off); the
    #: file is named ``r{replica:03d}.jsonl`` and stamped with
    #: ``origin=replica`` so a directory of them merges offline.
    trace_dir: Optional[str] = None

    def antientropy(self) -> AntiEntropyConfig:
        return AntiEntropyConfig(
            budget_bytes=self.budget_bytes,
            repair_interval=self.repair_interval,
            repair_fanout=self.repair_fanout,
            repair_mode=self.repair_mode,
            batch=self.batch,
        )

    def ring(self) -> HashRing:
        return HashRing(
            self.replicas, n_shards=self.shards, replication=self.replication
        )


def portfile_path(run_dir: str, replica: int) -> str:
    """Where replica ``replica`` publishes its bound ports."""
    return os.path.join(run_dir, f"r{replica:03d}.ports.json")


class ReplicaProcess:
    """The serving loop: one store, one peer listener, one client listener."""

    def __init__(self, options: ReplicaOptions) -> None:
        self.options = options
        self.replica = options.replica
        self.round = 0
        self._epoch = time.monotonic()
        # Wiring state, updated by WIRE commands.
        self.peer_addrs: Dict[int, Tuple[str, int]] = {}
        self.down: set = set()
        self.blocked: set = set()
        # Counters the controller's termination detection polls.
        self.frames_sent = 0
        self.frames_delivered = 0
        self.sends_blocked = 0
        self.messages = 0
        self.payload_bytes = 0
        self.metadata_bytes = 0
        self.client_ops = 0
        # Event-loop plumbing.
        self._peer_writers: Dict[int, asyncio.StreamWriter] = {}
        self._servers: List[asyncio.base_events.Server] = []
        self._shutdown = asyncio.Event()

        self.tracer = None
        if options.trace_dir is not None:
            from repro.obs.trace import FileTraceSink, Tracer

            path = os.path.join(options.trace_dir, f"r{options.replica:03d}.jsonl")
            self.tracer = Tracer(FileTraceSink(path), origin=options.replica)
            self.tracer.bind(self._now, lambda: self.round)

        self.storage: Optional[FileStorage] = None
        wal: Optional[ReplicaWal] = None
        if options.wal_dir is not None:
            # The advisory lock is the whole point of serving from real
            # processes: a stale twin still holding this replica's
            # directory fails *here*, loudly, before any log is touched.
            self.storage = FileStorage(options.wal_dir, lock=True)
            wal = ReplicaWal(
                options.replica,
                storage=self.storage,
                config=WalConfig(compact_bytes=options.wal_compact_bytes),
                tracer=self.tracer,
            )

        from repro.experiments.kv_sweep import KV_ALGORITHMS

        ring = options.ring()
        neighbors = tuple(r for r in options.replicas if r != options.replica)
        self.store = KVStore(
            replica=options.replica,
            neighbors=neighbors,
            bottom=MapLattice(),
            n_nodes=max(options.replicas) + 1,
            ring=ring,
            inner_factory=KV_ALGORITHMS[options.algorithm],
            schema=Schema(),
            antientropy=options.antientropy(),
            wal=wal,
            tracer=self.tracer,
        )
        #: Shards restored by the boot-time WAL replay (recovery proof
        #: the smoke test asserts on via STAT).
        self.replayed_shards = 0
        if wal is not None:
            self.replayed_shards = self.store.replay_wal(
                verify=options.recovery == "wal+repair"
            )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def run(self) -> None:
        """Serve until SHUTDOWN (the ``repro serve-replica`` entrypoint)."""
        asyncio.run(self.serve())

    async def serve(self) -> None:
        peer_server = await asyncio.start_server(self._accept_peer, HOST, 0)
        client_server = await asyncio.start_server(self._accept_client, HOST, 0)
        self._servers = [peer_server, client_server]
        peer_port = peer_server.sockets[0].getsockname()[1]
        client_port = client_server.sockets[0].getsockname()[1]
        self._write_portfile(peer_port, client_port)
        try:
            await self._shutdown.wait()
        finally:
            for server in self._servers:
                server.close()
            for server in self._servers:
                await server.wait_closed()
            for writer in self._peer_writers.values():
                writer.close()
            if self.tracer is not None:
                self.tracer.close()
            if self.storage is not None:
                # repro: lint-ok[async-blocking-transitive] shutdown-only path after both servers closed; LOCK_UN on a lock we hold returns without waiting
                self.storage.release_lock()

    def _write_portfile(self, peer_port: int, client_port: int) -> None:
        os.makedirs(self.options.run_dir, exist_ok=True)
        path = portfile_path(self.options.run_dir, self.replica)
        payload = json.dumps(
            {
                "replica": self.replica,
                "pid": os.getpid(),
                "peer_port": peer_port,
                "client_port": client_port,
                "replayed_shards": self.replayed_shards,
            }
        )
        # Atomic publish: the controller polls for this file and must
        # never read a torn write.
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Peer plane: the AsyncTcpTransport wire format, process-to-process.
    # ------------------------------------------------------------------

    async def _accept_peer(self, reader, writer) -> None:
        try:
            handshake = await self._read_raw_frame(reader)
            if handshake is None:
                return
            src = read_uvarint(BytesIO(handshake))
            while True:
                data = await self._read_raw_frame(reader)
                if data is None:
                    return
                await self._deliver_peer_frame(src, data)
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_raw_frame(reader) -> Optional[bytes]:
        try:
            header = await reader.readexactly(frames.LENGTH_PREFIX_BYTES)
            (length,) = struct.unpack(">I", header)
            return await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None

    async def _deliver_peer_frame(self, src: int, data: bytes) -> None:
        message = decode_message(data)
        if self.tracer is not None:
            self.tracer.emit(
                "deliver",
                replica=src,
                peer=self.replica,
                kind=message.kind,
                payload_bytes=message.payload_bytes,
                metadata_bytes=message.metadata_bytes,
            )
        replies = self.store.handle_message(src, message)
        await self._dispatch_sends(replies)
        # Count delivery *after* replies are queued as sent: the
        # controller's quiescence check (sent == delivered, stable)
        # then never observes a state where this frame is consumed but
        # its consequences are invisible.
        self.frames_delivered += 1

    async def _dispatch_sends(self, sends: Sequence[Send]) -> None:
        for send in sends:
            dst = send.dst
            if dst in self.down or dst in self.blocked:
                self.sends_blocked += 1
                self.store.note_send_blocked(dst)
                if self.tracer is not None:
                    self.tracer.emit(
                        "send-blocked",
                        replica=self.replica,
                        peer=dst,
                        kind=send.message.kind,
                    )
                continue
            writer = await self._peer_writer(dst)
            if writer is None:
                self.sends_blocked += 1
                self.store.note_send_blocked(dst)
                if self.tracer is not None:
                    self.tracer.emit(
                        "send-blocked",
                        replica=self.replica,
                        peer=dst,
                        kind=send.message.kind,
                    )
                continue
            frame = frame_message(send.message)
            payload = frame.payload_bytes
            metadata = frame.metadata_bytes + frames.LENGTH_PREFIX_BYTES
            self.messages += 1
            self.payload_bytes += payload
            self.metadata_bytes += metadata
            if self.tracer is not None:
                self.tracer.emit(
                    "send",
                    replica=self.replica,
                    peer=dst,
                    kind=send.message.kind,
                    payload_bytes=payload,
                    metadata_bytes=metadata,
                    payload_units=send.message.payload_units,
                    metadata_units=send.message.metadata_units,
                )
            writer.write(struct.pack(">I", len(frame.data)) + frame.data)
            try:
                await writer.drain()
                self.frames_sent += 1
            except ConnectionError:
                # The peer died with the frame in flight: it was never
                # delivered, and counting it as sent would wedge the
                # controller's quiescence check.
                self._drop_peer_writer(dst)
                self.store.note_send_blocked(dst)

    async def _peer_writer(self, dst: int) -> Optional[asyncio.StreamWriter]:
        writer = self._peer_writers.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        addr = self.peer_addrs.get(dst)
        if addr is None:
            return None
        try:
            _, writer = await asyncio.open_connection(addr[0], addr[1])
        except OSError:
            return None
        hello = BytesIO()
        write_uvarint(hello, self.replica)
        writer.write(
            struct.pack(">I", len(hello.getvalue())) + hello.getvalue()
        )
        self._peer_writers[dst] = writer
        return writer

    def _drop_peer_writer(self, dst: int) -> None:
        writer = self._peer_writers.pop(dst, None)
        if writer is not None:
            writer.close()

    # ------------------------------------------------------------------
    # Client/control plane.
    # ------------------------------------------------------------------

    async def _accept_client(self, reader, writer) -> None:
        try:
            while True:
                data = await self._read_raw_frame(reader)
                if data is None:
                    return
                stop = await self._serve_request(data, writer)
                if stop:
                    return
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _serve_request(self, data: bytes, writer) -> bool:
        """Handle one framed request; returns True on SHUTDOWN."""
        try:
            request = frames.decode_request(data)
        except frames.FrameError as exc:
            body = frames.encode_response(
                Response(0, frames.ERR_BAD_REQUEST, error=str(exc))
            )
            writer.write(frames.frame(body))
            await writer.drain()
            return False
        try:
            response = await self._handle_request(request)
        except KVRoutingError as exc:
            response = Response(request.id, frames.ERR_ROUTING, error=str(exc))
        except (TypeError, ValueError, KeyError) as exc:
            response = Response(request.id, frames.ERR_TYPE, error=str(exc))
        except Exception as exc:  # anything else: report, keep serving
            response = Response(request.id, frames.ERR_INTERNAL, error=repr(exc))
        writer.write(frames.frame(frames.encode_response(response)))
        await writer.drain()
        if request.verb == frames.SHUTDOWN and response.ok:
            await asyncio.sleep(_SHUTDOWN_GRACE_S)
            self._shutdown.set()
            return True
        return False

    async def _handle_request(self, request: Request) -> Response:
        verb = request.verb
        if verb == frames.GET:
            return self._handle_get(request)
        if verb == frames.PUT:
            self.client_ops += 1
            self._trace_client_op("put", request.key)
            delta = self.store.update(request.key, request.op, *request.args)
            return Response(request.id, blob=encode(delta))
        if verb == frames.REMOVE:
            self.client_ops += 1
            self._trace_client_op("remove", request.key)
            delta = self.store.remove(request.key)
            return Response(request.id, blob=encode(delta))
        if verb == frames.REPAIR:
            fragment = decode(request.blob)
            if not isinstance(fragment, MapLattice):
                raise ValueError("repair fragment must be a keyspace MapLattice")
            absorbed = self.store.absorb_client_state(
                fragment, payload_bytes=len(request.blob)
            )
            return Response(
                request.id, body={"absorbed": not absorbed.is_bottom}
            )
        if verb == frames.PING:
            return Response(request.id, body={"replica": self.replica})
        if verb == frames.WIRE:
            return self._handle_wire(request)
        if verb == frames.TICK:
            sends = self.store.sync_messages()
            await self._dispatch_sends(sends)
            self.round += 1
            if self.tracer is not None:
                self.tracer.emit("round", round=self.round - 1)
            return Response(request.id, body={"round": self.round})
        if verb == frames.COUNTERS:
            return Response(
                request.id,
                body={
                    "sent": self.frames_sent,
                    "delivered": self.frames_delivered,
                    "blocked": self.sends_blocked,
                },
            )
        if verb == frames.ROOTS:
            roots = {
                str(shard): (
                    root.hex() if (root := self.store.shard_root(shard)) else None
                )
                for shard in sorted(self.store.shards)
            }
            return Response(request.id, body={"roots": roots})
        if verb == frames.STAT:
            return Response(request.id, body=self._stat())
        if verb == frames.APPLY_RING:
            return self._handle_apply_ring(request)
        if verb == frames.HANDOFF:
            self.store.begin_handoff(
                int(request.body["shard"]), int(request.body["dst"])
            )
            return Response(request.id)
        if verb == frames.SHUTDOWN:
            return Response(request.id, body={"replica": self.replica})
        return Response(
            request.id,
            frames.ERR_BAD_REQUEST,
            error=f"unhandled verb {frames.verb_name(verb)}",
        )

    def _handle_get(self, request: Request) -> Response:
        self.client_ops += 1
        self._trace_client_op("get", request.key)
        value = self.store.value_lattice(request.key)
        if value is None:
            # Owned but unwritten: OK with no blob (blob=None encodes
            # as "absent", distinct from an encoded bottom).
            self.store._route(request.key)  # raises KVRoutingError if unowned
            return Response(request.id)
        return Response(request.id, blob=encode(value))

    def _trace_client_op(self, kind: str, key: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "client-op",
                replica=self.replica,
                kind=kind,
                label=str(key),
            )

    def _handle_wire(self, request: Request) -> Response:
        body = request.body
        if "addresses" in body:
            self.peer_addrs = {
                int(replica): (str(host), int(port))
                for replica, (host, port) in body["addresses"].items()
                if int(replica) != self.replica
            }
            # Re-dial lazily: stale writers to respawned peers are
            # dropped here and reopened at the next send.
            for dst in list(self._peer_writers):
                if dst not in self.peer_addrs:
                    self._drop_peer_writer(dst)
        if "down" in body:
            self.down = {int(r) for r in body["down"]}
            for dst in self.down:
                self._drop_peer_writer(dst)
        if "blocked" in body:
            self.blocked = {int(r) for r in body["blocked"]}
        if "reconnect" in body:
            # A respawned peer has a fresh socket: drop cached writers
            # so the next send dials the published address.
            for dst in (int(r) for r in body["reconnect"]):
                self._drop_peer_writer(dst)
        round_value = int(body.get("round", 0))
        if round_value > self.round:
            # A respawned process joining mid-run: realign the repair
            # scheduler with the cluster round so replayed δ-paths are
            # warm and coldness thresholds keep their meaning.
            self.round = round_value
            self.store.restore_clock(round_value)
        return Response(request.id, body={"round": self.round})

    def _handle_apply_ring(self, request: Request) -> Response:
        body = request.body
        replicas = tuple(int(r) for r in body["replicas"])
        ring = HashRing(
            replicas,
            n_shards=self.options.shards,
            replication=self.options.replication,
        )
        # Membership grew or shrank: the overlay is always the full
        # replica set, so refresh the reachability view first.
        self.store.neighbors = tuple(r for r in replicas if r != self.replica)
        self.store.n_nodes = max(
            self.store.n_nodes, max(replicas) + 1 if replicas else 0
        )
        self.store.apply_ring(
            ring,
            retain=frozenset(int(s) for s in body.get("retain", ())),
            fence=bool(body.get("fence", True)),
        )
        return Response(request.id, body={"shards": sorted(self.store.shards)})

    def _stat(self) -> Dict[str, Any]:
        snapshot = {
            name: value
            for name, value in self.store.registry.snapshot().items()
            if isinstance(value, (int, float))
        }
        return {
            "replica": self.replica,
            "pid": os.getpid(),
            "round": self.round,
            "messages": self.messages,
            "payload_bytes": self.payload_bytes,
            "metadata_bytes": self.metadata_bytes,
            "blocked": self.sends_blocked,
            "client_ops": self.client_ops,
            "pending_handoffs": self.store.scheduler.pending_handoffs(),
            "replayed_shards": self.replayed_shards,
            "state_bytes": self.store.state_bytes(),
            "memory_bytes": self.store.state_bytes()
            + self.store.buffer_bytes()
            + self.store.metadata_bytes(),
            "shards": len(self.store.shards),
            "registry": snapshot,
        }
