"""The smart client: ring-aware routing, quorum knobs, read repair.

A :class:`KVClient` holds a copy of the consistent-hash ring (placement
is a pure function of the cluster's shape parameters, so the client
computes owners locally — requests never bounce through a proxy tier)
and one persistent connection per replica, speaking the data verbs of
:mod:`repro.serve.frames`.

**Write path** (``w``): the typed operation is applied at exactly *one*
owner — the coordinator — because CRDT ops are not idempotent (applying
``cnt.inc`` at two replicas counts twice).  The coordinator returns the
keyspace *delta* the op produced; for ``w > 1`` the client REPAIRs that
encoded delta to further owners until ``w`` replicas hold it — the join
is idempotent where the op is not, which is the whole reason the delta
travels instead of the op.  Fewer than ``w`` reachable owners raises
:class:`~repro.kv.cluster.Unavailable`; the coordinator's copy is not
rolled back (CRDT writes cannot be unapplied — the guarantee is "at
least the coordinator", never "exactly the quorum or nothing").

**Read path** (``r``): the client collects ``r`` owner replies and
returns the *join*, so any reply that saw a write makes the result see
it — with ``r + w > replication`` every read overlaps some write-quorum
member and reads become monotone across the session.  With ``r = 1``
the read is exactly one replica's local state and the staleness
contract of :meth:`repro.kv.cluster.KVCluster.value` applies verbatim.
Divergent replies (a replier strictly below the join) optionally
trigger **read repair**: the join is pushed back to the stale repliers,
so popular keys heal ahead of anti-entropy.

The client also keeps a per-key **session cache** of everything it has
observed; a read that fails to dominate the cache is a *stale session
read* (the client knew more than the replica it asked).  The quorum
experiment uses this counter to put a number on the ``r = 1`` vs
``r = quorum`` contract.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.codec import decode, encode
from repro.kv.cluster import Unavailable
from repro.kv.ring import HashRing
from repro.kv.types import Schema
from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.serve import frames
from repro.serve.cluster import ControlClient


def join_replies(replies: Sequence[Optional[Lattice]]) -> Optional[Lattice]:
    """The join of ``r`` read replies (``None`` replies = unwritten).

    This *is* the quorum read: the result dominates every reply, so one
    up-to-date replica in the read set is enough for the client to see
    a write.  ``None`` when every replier had nothing.
    """
    joined: Optional[Lattice] = None
    for reply in replies:
        if reply is None:
            continue
        joined = reply if joined is None else joined.join(reply)
    return joined


def stale_repliers(
    replies: Sequence[Tuple[int, Optional[Lattice]]],
    joined: Optional[Lattice],
) -> List[int]:
    """Repliers strictly below the join — the read-repair targets."""
    if joined is None:
        return []
    return [
        replica
        for replica, reply in replies
        if reply is None or not joined.leq(reply)
    ]


class KVClient:
    """A get/put/remove front end over a serving cluster.

    Args:
        addresses: replica → ``(host, port)`` of the client plane (take
            :meth:`~repro.serve.cluster.ProcessCluster.client_addresses`).
        replicas: Full ring membership; defaults to the address map's
            keys (pass explicitly when some members are currently down
            — placement must not change just because a replica died).
        shards / replication: The cluster's shape parameters; must
            match the replicas' own, or routing disagrees.
        r / w: Read and write quorum sizes (1 ≤ r, w ≤ replication).
        read_repair: Push the join back to divergent repliers.
        route: ``"primary"`` reads start at the coordinator (replies
            rarely diverge — the coordinator saw every coordinated
            write); ``"random"`` spreads reads over all owners, which
            is what makes ``r = 1`` staleness *observable*.
        seed: RNG seed for ``route="random"`` (determinism).
    """

    def __init__(
        self,
        addresses: Dict[int, Tuple[str, int]],
        *,
        replicas: Optional[Sequence[int]] = None,
        shards: int = 32,
        replication: int = 3,
        r: int = 1,
        w: int = 1,
        read_repair: bool = True,
        route: str = "primary",
        seed: int = 0,
        timeout_s: float = 30.0,
    ) -> None:
        members = sorted(addresses) if replicas is None else sorted(replicas)
        self.ring = HashRing(members, n_shards=shards, replication=replication)
        if not 1 <= r <= replication:
            raise ValueError(f"read quorum r={r} outside 1..{replication}")
        if not 1 <= w <= replication:
            raise ValueError(f"write quorum w={w} outside 1..{replication}")
        if route not in ("primary", "random"):
            raise ValueError(f"unknown read route {route!r} (primary | random)")
        self.r = r
        self.w = w
        self.read_repair = read_repair
        self.route = route
        self.schema = Schema()
        self._rng = random.Random(seed)
        self._addresses = dict(addresses)
        self._timeout_s = timeout_s
        self._connections: Dict[int, ControlClient] = {}
        #: key → join of every value this client has observed (written
        #: deltas and read replies) — the session-monotonicity baseline.
        self._session: Dict[Hashable, Lattice] = {}
        self.stats: Dict[str, int] = {
            "gets": 0,
            "puts": 0,
            "removes": 0,
            "retries": 0,
            "unavailable": 0,
            "divergent_reads": 0,
            "read_repairs": 0,
            "stale_session_reads": 0,
            "replica_puts": 0,
        }

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def update_addresses(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        """Adopt a new address map (respawns publish fresh ports)."""
        for replica, address in addresses.items():
            if self._addresses.get(replica) != address:
                stale = self._connections.pop(replica, None)
                if stale is not None:
                    stale.close()
            self._addresses[replica] = address

    def _connection(self, replica: int) -> ControlClient:
        client = self._connections.get(replica)
        if client is None:
            address = self._addresses.get(replica)
            if address is None:
                raise ConnectionError(f"no address for replica {replica}")
            client = ControlClient(
                address[0], address[1], timeout_s=self._timeout_s
            )
            self._connections[replica] = client
        return client

    def _request(self, replica: int, verb: int, **fields: Any):
        try:
            return self._connection(replica).request(verb, **fields)
        except (ConnectionError, OSError):
            # Dead socket: forget it so a respawned replica re-dials.
            stale = self._connections.pop(replica, None)
            if stale is not None:
                stale.close()
            raise

    def close(self) -> None:
        for client in self._connections.values():
            client.close()
        self._connections.clear()

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------

    def put(self, key: Hashable, op: str, *args: Any) -> Lattice:
        """``op(*args)`` on ``key`` at a write quorum; returns the delta."""
        self.stats["puts"] += 1
        return self._write(key, frames.PUT, op, args)

    def remove(self, key: Hashable) -> Lattice:
        """Observed-remove ``key`` at a write quorum; returns the delta."""
        self.stats["removes"] += 1
        return self._write(key, frames.REMOVE, None, ())

    def _write(
        self, key: Hashable, verb: int, op: Optional[str], args: Tuple
    ) -> Lattice:
        owners = self.ring.owners(key)
        delta: Optional[Lattice] = None
        coordinator: Optional[int] = None
        for owner in owners:
            try:
                if verb == frames.PUT:
                    response = self._request(
                        owner, frames.PUT, key=key, op=op, args=args
                    )
                else:
                    response = self._request(owner, frames.REMOVE, key=key)
            except (ConnectionError, OSError):
                self.stats["retries"] += 1
                continue
            delta = decode(response.blob) if response.blob else MapLattice()
            coordinator = owner
            break
        if delta is None or coordinator is None:
            self.stats["unavailable"] += 1
            raise Unavailable(
                f"no reachable owner of key {key!r} (owners: {list(owners)})"
            )
        acked = 1
        if self.w > 1 and isinstance(delta, MapLattice) and not delta.is_bottom:
            blob = encode(delta)
            for owner in owners:
                if acked >= self.w:
                    break
                if owner == coordinator:
                    continue
                try:
                    self._request(owner, frames.REPAIR, blob=blob)
                except (ConnectionError, OSError):
                    self.stats["retries"] += 1
                    continue
                acked += 1
                self.stats["replica_puts"] += 1
            if acked < self.w:
                self.stats["unavailable"] += 1
                raise Unavailable(
                    f"write quorum w={self.w} not met for key {key!r}: "
                    f"{acked} owners hold the delta (owners: {list(owners)})"
                )
        if isinstance(delta, MapLattice):
            written = delta.entries.get(key)
            if written is not None:
                self._observe(key, written)
        return delta

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The typed value of ``key`` from the join of ``r`` replies."""
        joined = self.get_lattice(key)
        spec = self.schema.spec_for(key)
        return spec.read(joined if joined is not None else spec.bottom())

    def get_lattice(self, key: Hashable) -> Optional[Lattice]:
        """The raw joined lattice of a quorum read (``None`` = unwritten)."""
        self.stats["gets"] += 1
        owners = self._read_order(key)
        replies: List[Tuple[int, Optional[Lattice]]] = []
        for owner in owners:
            if len(replies) >= self.r:
                break
            try:
                response = self._request(owner, frames.GET, key=key)
            except (ConnectionError, OSError):
                self.stats["retries"] += 1
                continue
            replies.append(
                (owner, decode(response.blob) if response.blob else None)
            )
        if len(replies) < self.r:
            self.stats["unavailable"] += 1
            raise Unavailable(
                f"read quorum r={self.r} not met for key {key!r}: "
                f"{len(replies)} of {len(owners)} owners answered"
            )
        joined = join_replies([reply for _, reply in replies])
        stale = stale_repliers(replies, joined)
        if stale:
            self.stats["divergent_reads"] += 1
            if self.read_repair and joined is not None:
                blob = encode(MapLattice({key: joined}))
                for replica in stale:
                    try:
                        self._request(replica, frames.REPAIR, blob=blob)
                        self.stats["read_repairs"] += 1
                    except (ConnectionError, OSError):
                        self.stats["retries"] += 1
        self._note_session_read(key, joined)
        return joined

    def _read_order(self, key: Hashable) -> List[int]:
        owners = list(self.ring.owners(key))
        if self.route == "random":
            self._rng.shuffle(owners)
        return owners

    # ------------------------------------------------------------------
    # Session-staleness tracking.
    # ------------------------------------------------------------------

    def _observe(self, key: Hashable, value: Lattice) -> None:
        known = self._session.get(key)
        self._session[key] = value if known is None else known.join(value)

    def _note_session_read(
        self, key: Hashable, joined: Optional[Lattice]
    ) -> None:
        known = self._session.get(key)
        if known is not None and not known.is_bottom:
            if joined is None or not known.leq(joined):
                # The replica set answered with less than this client
                # has already seen — a session-monotonicity violation.
                self.stats["stale_session_reads"] += 1
        if joined is not None:
            self._observe(key, joined)

    def __repr__(self) -> str:
        return (
            f"KVClient(replicas={len(self._addresses)}, r={self.r}, "
            f"w={self.w}, route={self.route!r})"
        )
