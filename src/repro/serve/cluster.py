"""The controller: spawn, wire, drive, and kill replica processes.

:class:`ProcessCluster` is the multi-process counterpart of
:class:`~repro.kv.cluster.KVCluster` — same driver surface
(``run_rounds`` / ``run_round`` / ``drain`` / ``converged`` /
``partition`` / ``heal`` / ``crash`` / ``recover`` /
``scheduler_stats`` / ``wal_stats``), but every replica is a real OS
process started with ``python -m repro serve-replica`` and everything
the controller knows arrives over the control plane of
:mod:`repro.serve.frames`.

Coordination protocol, in the order a round runs:

1. workload updates go to their pre-routed owner replicas as PUT
   requests (one coordinator application each, exactly like the
   in-process harness);
2. TICK tells every live replica to run one anti-entropy tick — peer
   traffic then flows replica-to-replica over their own sockets,
   entirely outside the controller;
3. the controller polls COUNTERS and waits for **quiescence**: the
   global (frames sent, frames delivered) totals must agree and stay
   stable across consecutive polls — Mattern-style double counting,
   degraded gracefully: totals that stay *stable but unequal* mean the
   missing frames died with a killed process, and the gap is recorded
   as ``messages_severed`` instead of hanging the round.

Crash is SIGKILL — no goodbye, no flush; memory and staged WAL records
are genuinely gone, which is precisely the failure model
``crash(lose_state=True)`` simulates.  Recovery is a respawn over the
surviving WAL directory: the fresh process replays its shard logs
locally before serving (PR 4's recovery path, now with a real process
boundary), and a WIRE carrying the current round realigns its repair
scheduler.  Membership changes reuse PR 5's handoff protocol: the
controller swaps rings with APPLY_RING and nominates handoff sources
with HANDOFF, and the compacted WAL segments travel the peer plane.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.ring import HashRing
from repro.kv.store import KVRoutingError, KVUpdate
from repro.net.transport import TransportStalled
from repro.serve import frames
from repro.serve.frames import FrameError, Request, Response
from repro.serve.replica import HOST, portfile_path

#: Seconds between COUNTERS polls while settling a round.
_POLL_INTERVAL_S = 0.01
#: Stable-and-equal polls required to declare a round quiescent.
_STABLE_POLLS = 2
#: Stable-but-unequal polls after which the gap is declared severed.
_SEVERED_POLLS = 20


class ReplicaDied(RuntimeError):
    """A replica process exited when it was expected to be serving."""


def raise_for_status(response: Response) -> Response:
    """Map an error response onto the harness's exception types."""
    if response.ok:
        return response
    if response.status == frames.ERR_ROUTING:
        raise KVRoutingError(response.error or "routing error")
    if response.status == frames.ERR_TYPE:
        raise ValueError(response.error or "typed operation rejected")
    raise RuntimeError(
        f"replica error ({response.status}): {response.error or 'unknown'}"
    )


class ControlClient:
    """One synchronous client/control connection to a replica process."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 30.0) -> None:
        self.address = (host, port)
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._ids = itertools.count(1)

    def _connection(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.address, timeout=self.timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def request(self, verb: int, **fields: Any) -> Response:
        """One request/response exchange (raises on error statuses)."""
        request = Request(next(self._ids), verb, **fields)
        sock = self._connection()
        try:
            frames.send_frame(sock, frames.encode_request(request))
            response = frames.decode_response(frames.recv_frame(sock))
        except (ConnectionError, socket.timeout, OSError):
            self.close()
            raise
        return raise_for_status(response)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None


class _ProcMetrics:
    """The slice of ``MetricsCollector`` the experiment tables read,
    aggregated from per-process STAT/COUNTERS reports (dead
    incarnations' totals are folded in at kill time)."""

    def __init__(self, cluster: "ProcessCluster") -> None:
        self._cluster = cluster

    @property
    def message_count(self) -> int:
        return self._cluster._sum_stat("messages")

    def total_payload_bytes(self) -> int:
        return self._cluster._sum_stat("payload_bytes")

    def total_metadata_bytes(self) -> int:
        return self._cluster._sum_stat("metadata_bytes")

    def average_memory_bytes(self) -> float:
        samples = self._cluster._memory_samples
        return sum(samples) / len(samples) if samples else 0.0


class ProcessCluster:
    """A cluster of one-replica OS processes behind the control plane."""

    def __init__(
        self,
        n_replicas: int,
        *,
        shards: int = 32,
        replication: int = 3,
        algorithm: str = "delta-based-bp-rr",
        antientropy: Optional[AntiEntropyConfig] = None,
        recovery: str = "wal",
        wal_compact_bytes: Optional[int] = 64 * 1024,
        run_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        spawn_timeout_s: float = 30.0,
        settle_timeout_s: float = 30.0,
        max_drain_rounds: int = 64,
    ) -> None:
        if recovery not in ("repair", "wal", "wal+repair"):
            raise ValueError(f"unknown recovery policy {recovery!r}")
        self.shards = shards
        self.replication = replication
        self.algorithm = algorithm
        self.antientropy = antientropy if antientropy is not None else AntiEntropyConfig()
        self.recovery = recovery
        self.wal_compact_bytes = wal_compact_bytes
        self.spawn_timeout_s = spawn_timeout_s
        self.settle_timeout_s = settle_timeout_s
        self.max_drain_rounds = max_drain_rounds

        self._owns_run_dir = run_dir is None
        self.run_dir = (
            tempfile.mkdtemp(prefix="repro-serve-") if run_dir is None else run_dir
        )
        os.makedirs(self.run_dir, exist_ok=True)
        self.trace_dir = trace_dir
        self.tracer = None
        if trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
            from repro.obs.trace import FileTraceSink, Tracer

            # The controller's own stream carries the experiment
            # structure (cell markers, faults, ring changes) that
            # per-replica files cannot know about.
            self.tracer = Tracer(
                FileTraceSink(os.path.join(self.trace_dir, "controller.jsonl"))
            )
            epoch = time.monotonic()
            self.tracer.bind(
                lambda: (time.monotonic() - epoch) * 1000.0,
                lambda: self.rounds_run,
            )

        self.replicas: List[int] = list(range(n_replicas))
        self.ring = HashRing(
            self.replicas, n_shards=shards, replication=replication
        )
        self.down: Set[int] = set()
        self.rounds_run = 0
        self.updates_skipped = 0
        self.messages_dropped = 0  # no loss model on the real wire
        self.messages_severed = 0
        self.timers = None  # the controller runs no in-process hot path

        self._procs: Dict[int, subprocess.Popen] = {}
        self._ports: Dict[int, Dict[str, int]] = {}
        self._controls: Dict[int, ControlClient] = {}
        self._groups: Optional[Tuple[frozenset, ...]] = None
        #: Last COUNTERS/STAT seen per live replica (folded into the
        #: base accumulators when the process is killed).
        self._last_counters: Dict[int, Dict[str, int]] = {}
        self._last_stats: Dict[int, Dict[str, Any]] = {}
        self._base_counters: Dict[str, int] = {"sent": 0, "delivered": 0, "blocked": 0}
        self._base_stats: Dict[str, int] = {}
        self._base_registry: Dict[str, float] = {}
        #: Frames written to the wire that can never be delivered (the
        #: receiver was SIGKILLed with them in flight) — the settled
        #: remainder the quiescence check accepts.
        self._severed_total = 0
        self._memory_samples: List[float] = []
        self.metrics = _ProcMetrics(self)
        #: Graceful SHUTDOWN requests that failed at teardown (peer
        #: already dead or mid-exit); the SIGKILL/wait fallback below
        #: still reaps the process, this only counts the misses.
        self.shutdown_errors = 0

        self._closed = False
        try:
            for replica in self.replicas:
                self._spawn(replica)
            self._await_portfiles(self.replicas)
            for replica in self.replicas:
                self._connect(replica)
            self._wire_all()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Process lifecycle.
    # ------------------------------------------------------------------

    def _wal_dir(self, replica: int) -> str:
        # One directory per replica: the advisory lock is per-directory,
        # and a respawn must find exactly its predecessor's logs.
        return os.path.join(self.run_dir, "wal", f"r{replica:03d}")

    def _spawn(self, replica: int) -> None:
        port_path = portfile_path(self.run_dir, replica)
        if os.path.exists(port_path):
            os.remove(port_path)
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve-replica",
            "--replica",
            str(replica),
            "--replica-set",
            ",".join(str(r) for r in self.replicas),
            "--run-dir",
            self.run_dir,
            "--shards",
            str(self.shards),
            "--replication",
            str(self.replication),
            "--algorithm",
            self.algorithm,
            "--recovery",
            self.recovery,
            "--repair",
            str(self.antientropy.repair_interval),
            "--repair-mode",
            self.antientropy.repair_mode,
            "--repair-fanout",
            str(self.antientropy.repair_fanout),
        ]
        if self.recovery != "repair":
            cmd += ["--wal-dir", self._wal_dir(replica)]
            if self.wal_compact_bytes is not None:
                cmd += ["--wal-compact-bytes", str(self.wal_compact_bytes)]
        if self.antientropy.budget_bytes is not None:
            cmd += ["--budget", str(self.antientropy.budget_bytes)]
        if not self.antientropy.batch:
            cmd += ["--no-batch"]
        if self.trace_dir is not None:
            cmd += ["--trace-dir", self.trace_dir]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        log = open(os.path.join(self.run_dir, f"r{replica:03d}.log"), "ab")
        try:
            self._procs[replica] = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()

    def _await_portfiles(self, replicas: Sequence[int]) -> None:
        deadline = time.monotonic() + self.spawn_timeout_s
        pending = list(replicas)
        while pending:
            replica = pending[0]
            path = portfile_path(self.run_dir, replica)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    self._ports[replica] = json.load(handle)
                pending.pop(0)
                continue
            proc = self._procs.get(replica)
            if proc is not None and proc.poll() is not None:
                raise ReplicaDied(
                    f"replica {replica} exited with {proc.returncode} before "
                    f"publishing its ports; see {self.run_dir}/r{replica:03d}.log"
                )
            if time.monotonic() > deadline:
                raise TransportStalled(
                    f"replica {replica} did not publish ports within "
                    f"{self.spawn_timeout_s}s"
                )
            time.sleep(0.01)

    def _connect(self, replica: int) -> None:
        ports = self._ports[replica]
        self._controls[replica] = ControlClient(
            HOST, ports["client_port"], timeout_s=self.settle_timeout_s
        )

    def _control(self, replica: int) -> ControlClient:
        if replica in self.down:
            raise ReplicaDied(f"replica {replica} is down")
        return self._controls[replica]

    @property
    def live(self) -> List[int]:
        return [r for r in self.replicas if r not in self.down]

    def client_addresses(self) -> Dict[int, Tuple[str, int]]:
        """Replica → client-plane address, live replicas only."""
        return {
            r: (HOST, self._ports[r]["client_port"]) for r in self.live
        }

    def replayed_shards(self, replica: int) -> int:
        """Shards the replica's current incarnation restored from WAL."""
        return int(self._ports[replica].get("replayed_shards", 0))

    # ------------------------------------------------------------------
    # Wiring: addresses, down set, partition-blocked sets, round.
    # ------------------------------------------------------------------

    def _blocked_for(self, replica: int) -> List[int]:
        if self._groups is None:
            return []
        for group in self._groups:
            if replica in group:
                return sorted(set(self.replicas) - group)
        return []

    def _wire_all(self, *, reconnect: Sequence[int] = ()) -> None:
        addresses = {
            str(r): [HOST, self._ports[r]["peer_port"]] for r in self.live
        }
        for replica in self.live:
            self._control(replica).request(
                frames.WIRE,
                body={
                    "addresses": addresses,
                    "down": sorted(self.down),
                    "blocked": self._blocked_for(replica),
                    "round": self.rounds_run,
                    "reconnect": [r for r in reconnect if r != replica],
                },
            )

    # ------------------------------------------------------------------
    # Driving rounds.
    # ------------------------------------------------------------------

    def apply_update(self, node: int, update: KVUpdate) -> None:
        """Apply one pre-routed typed write at its owner replica."""
        self._control(node).request(
            frames.PUT, key=update.key, op=update.op, args=tuple(update.args)
        )

    def run_round(
        self, updates: Optional[Callable[[int], Sequence[KVUpdate]]] = None
    ) -> None:
        """One synchronization interval: updates, ticks, settle."""
        if updates is not None:
            for node in self.replicas:
                ops = updates(node)
                if not ops:
                    continue
                if node in self.down:
                    self.updates_skipped += len(ops)
                    continue
                for op in ops:
                    self.apply_update(node, op)
        for node in self.live:
            self._control(node).request(frames.TICK)
        self._settle()
        self.rounds_run += 1
        self._sample()
        if self.tracer is not None:
            self.tracer.emit("round", round=self.rounds_run - 1)

    def run_rounds(
        self, rounds: int, updates_for: Optional[Callable] = None
    ) -> None:
        for round_index in range(rounds):
            if updates_for is None:
                self.run_round(None)
            else:
                self.run_round(
                    lambda node, r=round_index: updates_for(r, node)
                )

    def _counters(self, replica: int) -> Dict[str, int]:
        body = self._control(replica).request(frames.COUNTERS).body
        counters = {
            "sent": int(body["sent"]),
            "delivered": int(body["delivered"]),
            "blocked": int(body["blocked"]),
        }
        self._last_counters[replica] = counters
        return counters

    def _settle(self) -> None:
        """Poll until the peer plane is quiescent (see module doc)."""
        deadline = time.monotonic() + self.settle_timeout_s
        previous: Optional[Dict[int, Dict[str, int]]] = None
        stable = 0
        while True:
            vector = {r: self._counters(r) for r in self.live}
            sent = self._base_counters["sent"] + sum(
                v["sent"] for v in vector.values()
            )
            delivered = self._base_counters["delivered"] + sum(
                v["delivered"] for v in vector.values()
            )
            if vector == previous:
                stable += 1
            else:
                stable = 0
                previous = vector
            balanced = sent - self._severed_total == delivered
            if stable >= _STABLE_POLLS and balanced:
                return
            if stable >= _SEVERED_POLLS:
                # Stable but unbalanced: the missing frames were in
                # flight to (or counted by) a process that no longer
                # exists.  Account them as severed and move on.
                gap = sent - self._severed_total - delivered
                if gap > 0:
                    self.messages_severed += gap
                self._severed_total += gap
                return
            if time.monotonic() > deadline:
                raise TransportStalled(
                    f"round {self.rounds_run}: no quiescence within "
                    f"{self.settle_timeout_s}s (sent={sent}, "
                    f"delivered={delivered}, severed={self._severed_total})"
                )
            time.sleep(_POLL_INTERVAL_S)

    def _sample(self) -> None:
        """Refresh per-replica STAT snapshots; sample memory."""
        for replica in self.live:
            stat = self._control(replica).request(frames.STAT).body
            self._last_stats[replica] = stat
            self._memory_samples.append(float(stat.get("memory_bytes", 0)))

    # ------------------------------------------------------------------
    # Faults.
    # ------------------------------------------------------------------

    def crash(self, node: int, *, lose_state: bool = True) -> None:
        """SIGKILL the replica process.

        A real process death always loses memory and staged WAL
        records; ``lose_state`` exists for driver compatibility and
        must be True — a warm crash has no process-level analogue.
        The WAL directory survives on disk, which is exactly the
        ``lose_state=True``-with-durable-disk model of the in-process
        harness.
        """
        if not lose_state:
            raise ValueError(
                "ProcessCluster.crash is always lose_state=True: SIGKILL "
                "cannot preserve process memory"
            )
        if node in self.down:
            return
        proc = self._procs.get(node)
        if proc is None:
            raise ReplicaDied(f"replica {node} was never spawned")
        self._fold_dead(node)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        control = self._controls.pop(node, None)
        if control is not None:
            control.close()
        self.down.add(node)
        if self.tracer is not None:
            self.tracer.emit("crash", replica=node)
        # Survivors refuse sends to the corpse immediately (blocked,
        # feeding suspicion) instead of timing out on dead sockets.
        self._wire_all()

    def recover(self, node: int) -> None:
        """Respawn over the surviving WAL directory and rejoin."""
        if node not in self.down:
            return
        self._spawn(node)
        self._await_portfiles([node])
        self._connect(node)
        self.down.discard(node)
        if self.tracer is not None:
            self.tracer.emit(
                "recover",
                replica=node,
                extra={"replayed_shards": self.replayed_shards(node)},
            )
        # The WIRE carries the current round: the fresh store realigns
        # its scheduler clock and warms the δ-paths its replay covered.
        self._wire_all(reconnect=[node])

    def partition(self, *groups: Iterable[int]) -> None:
        explicit = [frozenset(group) for group in groups]
        seen: Set[int] = set()
        for group in explicit:
            unknown = [n for n in group if n not in self.replicas]
            if unknown:
                raise ValueError(f"no such replicas {sorted(unknown)}")
            if group & seen:
                raise ValueError("partition groups must be disjoint")
            seen |= group
        rest = frozenset(self.replicas) - seen
        if rest:
            explicit.append(rest)
        self._groups = tuple(explicit)
        if self.tracer is not None:
            self.tracer.emit(
                "partition",
                extra={"groups": [sorted(group) for group in self._groups]},
            )
        self._wire_all()

    def heal(self) -> None:
        self._groups = None
        if self.tracer is not None:
            self.tracer.emit("heal")
        self._wire_all()

    # ------------------------------------------------------------------
    # Membership changes (PR 5's handoff protocol over the peer plane).
    # ------------------------------------------------------------------

    def add_replica(self, node: int) -> None:
        """Grow the ring; moved shards hand off as compacted segments."""
        if node in self.replicas:
            raise ValueError(f"replica {node} is already a member")
        self._require_repair("membership changes")
        old_ring = self.ring
        self.replicas = sorted(set(self.replicas) | {node})
        new_ring = HashRing(
            self.replicas, n_shards=self.shards, replication=self.replication
        )
        self._spawn(node)
        self._await_portfiles([node])
        self._connect(node)
        self._wire_all(reconnect=[node])
        self._swap_ring(old_ring, new_ring, skip=(node,))

    def decommission_replica(self, node: int) -> None:
        """Shrink the ring; the leaving replica sources its shards out."""
        if node not in self.replicas or node in self.down:
            raise ValueError(f"replica {node} is not a live member")
        if len(self.replicas) - 1 < self.replication:
            raise ValueError(
                "cannot decommission below the replication factor"
            )
        self._require_repair("membership changes")
        old_ring = self.ring
        remaining = [r for r in self.replicas if r != node]
        new_ring = HashRing(
            remaining, n_shards=self.shards, replication=self.replication
        )
        self._swap_ring(old_ring, new_ring, skip=())
        # The leaving process keeps running as a handoff source until
        # drained; the ring (and the clients) already exclude it.

    def _require_repair(self, what: str) -> None:
        if self.antientropy.repair_interval < 1:
            raise ValueError(
                f"{what} require repair: construct the cluster with "
                "AntiEntropyConfig(repair_interval >= 1)"
            )

    def _swap_ring(
        self, old_ring: HashRing, new_ring: HashRing, *, skip: Sequence[int]
    ) -> None:
        """APPLY_RING everywhere, then nominate handoff sources.

        The transfer plan is the in-process one minus content
        inspection (the controller cannot cheaply see shard states):
        for each moved shard the preferred source is a live owner that
        is *leaving* the group (shipping is its exit path), falling
        back to an owner staying put.
        """
        moved = tuple(old_ring.moved_shards(new_ring))
        transfers: List[Tuple[int, int, int]] = []
        retain: Dict[int, Set[int]] = {}
        for shard in moved:
            old_owners = old_ring.shard_owners(shard)
            new_owners = set(new_ring.shard_owners(shard))
            gaining = sorted(r for r in new_owners if r not in old_owners)
            if not gaining:
                continue
            live_old = [o for o in old_owners if o not in self.down]
            live_losing = [o for o in live_old if o not in new_owners]
            remaining = [o for o in live_old if o in new_owners]
            ordered = live_losing + remaining
            if not ordered:
                continue  # unsourced: digest repair is the backstop
            source = ordered[0]
            if source not in new_owners:
                retain.setdefault(source, set()).add(shard)
            for dst in gaining:
                transfers.append((shard, source, dst))
        self.ring = new_ring
        replicas_body = [int(r) for r in new_ring.replicas]
        for replica in self.live:
            if replica in skip:
                continue
            self._control(replica).request(
                frames.APPLY_RING,
                body={
                    "replicas": replicas_body,
                    "retain": sorted(retain.get(replica, ())),
                    "fence": True,
                },
            )
        if self.tracer is not None:
            self.tracer.emit(
                "ring-change",
                extra={
                    "replicas": replicas_body,
                    "moved_shards": list(moved),
                    "transfers": [list(t) for t in transfers],
                },
            )
        for shard, source, dst in transfers:
            self._control(source).request(
                frames.HANDOFF, body={"shard": shard, "dst": dst}
            )

    # ------------------------------------------------------------------
    # Convergence and draining.
    # ------------------------------------------------------------------

    def _roots(self) -> Dict[int, Dict[str, Optional[str]]]:
        return {
            replica: self._control(replica).request(frames.ROOTS).body["roots"]
            for replica in self.live
        }

    def converged(self) -> bool:
        """Per-shard root-hash agreement across every live owner group."""
        roots = self._roots()
        for shard in range(self.ring.n_shards):
            seen = set()
            for owner in self.ring.shard_owners(shard):
                if owner in self.down:
                    continue
                seen.add(roots.get(owner, {}).get(str(shard)))
            if len(seen) > 1:
                return False
        return True

    def pending_handoffs(self) -> int:
        total = 0
        for replica in self.live:
            stat = self._last_stats.get(replica)
            if stat is None:
                stat = self._control(replica).request(frames.STAT).body
                self._last_stats[replica] = stat
            total += int(stat.get("pending_handoffs", 0))
        return total

    def drain(self) -> int:
        """Rounds (no updates) until converged and handoffs settled."""
        rounds = 0
        for _ in range(self.max_drain_rounds):
            self._sample()  # refresh pending_handoffs views
            if self.converged() and self.pending_handoffs() == 0:
                return rounds
            self.run_round(None)
            rounds += 1
        self._sample()
        if self.pending_handoffs():
            raise RuntimeError(
                f"{self.pending_handoffs()} shard handoffs failed to settle "
                f"within {self.max_drain_rounds} drain rounds"
            )
        if not self.converged():
            raise RuntimeError(
                f"no convergence within {self.max_drain_rounds} drain rounds"
            )
        return rounds

    # ------------------------------------------------------------------
    # Aggregated stats (the `_measure_cell` surface).
    # ------------------------------------------------------------------

    def _fold_dead(self, replica: int) -> None:
        """Fold a doomed process's last-known totals into the bases.

        Kills happen at round boundaries, right after ``_settle`` and
        ``_sample`` refreshed the caches, so the fold loses at most the
        (empty) activity since the last quiescent poll.
        """
        counters = self._last_counters.pop(replica, None)
        if counters is not None:
            for key, value in counters.items():
                self._base_counters[key] = self._base_counters.get(key, 0) + value
        stat = self._last_stats.pop(replica, None)
        if stat is not None:
            for key in ("messages", "payload_bytes", "metadata_bytes", "client_ops"):
                self._base_stats[key] = self._base_stats.get(key, 0) + int(
                    stat.get(key, 0)
                )
            for name, value in stat.get("registry", {}).items():
                self._base_registry[name] = self._base_registry.get(name, 0) + value

    def _sum_stat(self, key: str) -> int:
        total = self._base_stats.get(key, 0)
        for replica in self.live:
            stat = self._last_stats.get(replica)
            if stat is not None:
                total += int(stat.get(key, 0))
        return total

    def _registry_totals(self) -> Dict[str, float]:
        totals = dict(self._base_registry)
        for replica in self.live:
            stat = self._last_stats.get(replica)
            if stat is None:
                stat = self._control(replica).request(frames.STAT).body
                self._last_stats[replica] = stat
            for name, value in stat.get("registry", {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def scheduler_stats(self) -> dict:
        prefix = "scheduler."
        return {
            name[len(prefix):]: value
            for name, value in self._registry_totals().items()
            if name.startswith(prefix)
        }

    def wal_stats(self) -> dict:
        prefix = "wal."
        return {
            name[len(prefix):]: value
            for name, value in self._registry_totals().items()
            if name.startswith(prefix)
        }

    def stat(self, replica: int) -> Dict[str, Any]:
        """One live replica's full STAT report (fresh)."""
        stat = self._control(replica).request(frames.STAT).body
        self._last_stats[replica] = stat
        return stat

    # ------------------------------------------------------------------
    # Teardown.
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for replica, control in list(self._controls.items()):
            try:
                control.request(frames.SHUTDOWN)
            except (OSError, FrameError, RuntimeError):
                # Expected at teardown: a SIGKILLed or already-exiting
                # replica refuses the connection (OSError family),
                # closes mid-frame (FrameError), or answers with an
                # error status (RuntimeError).  The wait/kill fallback
                # below reaps it regardless; count the miss so tests
                # and post-mortems can see ungraceful shutdowns.
                self.shutdown_errors += 1
            control.close()
        self._controls.clear()
        deadline = time.monotonic() + 5.0
        for replica, proc in self._procs.items():
            if proc.poll() is not None:
                continue
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if self.tracer is not None:
            self.tracer.close()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - defensive cleanup
        try:
            self.close()
        except (OSError, RuntimeError) as exc:
            # A destructor must not raise; anything the narrowed
            # handlers inside close() did not absorb (socket teardown,
            # interpreter-shutdown state) is reported the way CPython
            # reports unclosed resources rather than swallowed.
            warnings.warn(
                f"ProcessCluster.__del__: close failed: {exc!r}",
                ResourceWarning,
                source=self,
            )
