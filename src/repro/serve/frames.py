"""The client/control wire protocol of the serving layer.

One frame per request and one per response, the same length-prefixed
framing as the peer plane (:mod:`repro.net.tcp`):

``frame := u32be(length) body``

A request body is ``uvarint(request_id) u8(verb) fields``; a response
body is ``uvarint(request_id) u8(status) fields``.  Fields reuse the
:mod:`repro.codec` primitives — keys, ops, and op arguments travel as
atoms, lattice values as their canonical ``encode()`` bytes, and
control-plane structures (address maps, counter snapshots) as compact
JSON blobs.  The request id lets a client pipeline requests over one
connection and match replies; both ends treat it as opaque.

Verbs split into a **data plane** the :class:`~repro.serve.client.
KVClient` speaks — GET/PUT/REMOVE on one key, REPAIR pushing an
encoded keyspace fragment (quorum write replication and read repair
share this verb: both ship deltas the pusher already holds, because
re-applying a typed op at a second owner would double-count
non-idempotent operations) — and a **control plane** the
:class:`~repro.serve.cluster.ProcessCluster` controller speaks: WIRE
distributes the address map / down set / blocked-peer sets / round
counter, TICK runs one anti-entropy tick, COUNTERS reads the
sent/delivered totals the controller's termination detection polls,
ROOTS collects per-shard root hashes for convergence checks, STAT
dumps the metrics registry, APPLY_RING and HANDOFF drive membership
changes, SHUTDOWN exits cleanly.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from io import BytesIO
from typing import Any, Dict, Optional, Tuple

from repro.codec import CodecError, read_atom, read_uvarint, write_atom, write_uvarint

#: Length prefix of every frame, matching the peer plane's framing.
LENGTH_PREFIX_BYTES = 4

#: Refuse absurd frames instead of allocating on a corrupt prefix.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Data-plane verbs (the KVClient).
GET = 0x01
PUT = 0x02
REMOVE = 0x03
REPAIR = 0x04
# Control-plane verbs (the ProcessCluster controller).
PING = 0x10
WIRE = 0x11
TICK = 0x12
COUNTERS = 0x13
ROOTS = 0x14
STAT = 0x15
APPLY_RING = 0x16
HANDOFF = 0x17
SHUTDOWN = 0x18

_VERB_NAMES = {
    GET: "get",
    PUT: "put",
    REMOVE: "remove",
    REPAIR: "repair",
    PING: "ping",
    WIRE: "wire",
    TICK: "tick",
    COUNTERS: "counters",
    ROOTS: "roots",
    STAT: "stat",
    APPLY_RING: "apply-ring",
    HANDOFF: "handoff",
    SHUTDOWN: "shutdown",
}

# Response statuses.
OK = 0x00
ERR_ROUTING = 0x01      # the key is not owned by the addressed replica
ERR_TYPE = 0x02         # the typed operation was rejected by the schema
ERR_BAD_REQUEST = 0x03  # unparseable / unknown verb
ERR_INTERNAL = 0x04     # anything else; message carries the repr

_BLOB_FLAG = 0x01
_JSON_FLAG = 0x02


def verb_name(verb: int) -> str:
    """Human name of a verb byte (for traces and error messages)."""
    return _VERB_NAMES.get(verb, f"verb-0x{verb:02x}")


class FrameError(CodecError):
    """A frame that does not parse; the connection should be dropped."""


@dataclass(frozen=True)
class Request:
    """One decoded client/control request."""

    id: int
    verb: int
    key: Any = None
    op: Optional[str] = None
    args: Tuple = ()
    blob: bytes = b""
    body: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """One decoded reply.  ``blob`` carries encoded lattice bytes
    (``None`` means "no value" — a GET of an unwritten key), ``body``
    carries control-plane JSON, ``error`` the failure message."""

    id: int
    status: int = OK
    blob: Optional[bytes] = None
    body: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == OK


def encode_request(request: Request) -> bytes:
    out = BytesIO()
    write_uvarint(out, request.id)
    out.write(bytes((request.verb,)))
    if request.verb in (GET, REMOVE):
        write_atom(out, request.key)
    elif request.verb == PUT:
        write_atom(out, request.key)
        write_atom(out, request.op)
        write_atom(out, tuple(request.args))
    elif request.verb == REPAIR:
        write_uvarint(out, len(request.blob))
        out.write(request.blob)
    elif request.verb in (WIRE, APPLY_RING, HANDOFF):
        payload = json.dumps(request.body, sort_keys=True, separators=(",", ":"))
        encoded = payload.encode("utf-8")
        write_uvarint(out, len(encoded))
        out.write(encoded)
    return out.getvalue()


def decode_request(data: bytes) -> Request:
    try:
        buf = BytesIO(data)
        request_id = read_uvarint(buf)
        verb_chunk = buf.read(1)
        if not verb_chunk:
            raise FrameError("truncated request: missing verb")
        verb = verb_chunk[0]
        if verb in (GET, REMOVE):
            return Request(request_id, verb, key=read_atom(buf))
        if verb == PUT:
            key = read_atom(buf)
            op = read_atom(buf)
            args = read_atom(buf)
            if not isinstance(op, str) or not isinstance(args, tuple):
                raise FrameError("malformed put request")
            return Request(request_id, verb, key=key, op=op, args=args)
        if verb == REPAIR:
            length = read_uvarint(buf)
            blob = buf.read(length)
            if len(blob) != length:
                raise FrameError("truncated repair blob")
            return Request(request_id, verb, blob=blob)
        if verb in (WIRE, APPLY_RING, HANDOFF):
            length = read_uvarint(buf)
            raw = buf.read(length)
            if len(raw) != length:
                raise FrameError("truncated control body")
            body = json.loads(raw.decode("utf-8"))
            if not isinstance(body, dict):
                raise FrameError("control body must be a JSON object")
            return Request(request_id, verb, body=body)
        if verb in _VERB_NAMES:
            return Request(request_id, verb)
        raise FrameError(f"unknown verb 0x{verb:02x}")
    except FrameError:
        raise
    except (CodecError, ValueError, EOFError) as exc:
        raise FrameError(f"bad request frame: {exc}") from exc


def encode_response(response: Response) -> bytes:
    out = BytesIO()
    write_uvarint(out, response.id)
    out.write(bytes((response.status,)))
    if response.status != OK:
        write_atom(out, response.error or "")
        return out.getvalue()
    flags = 0
    if response.blob is not None:
        flags |= _BLOB_FLAG
    if response.body:
        flags |= _JSON_FLAG
    out.write(bytes((flags,)))
    if response.blob is not None:
        write_uvarint(out, len(response.blob))
        out.write(response.blob)
    if response.body:
        payload = json.dumps(response.body, sort_keys=True, separators=(",", ":"))
        encoded = payload.encode("utf-8")
        write_uvarint(out, len(encoded))
        out.write(encoded)
    return out.getvalue()


def decode_response(data: bytes) -> Response:
    try:
        buf = BytesIO(data)
        request_id = read_uvarint(buf)
        status_chunk = buf.read(1)
        if not status_chunk:
            raise FrameError("truncated response: missing status")
        status = status_chunk[0]
        if status != OK:
            error = read_atom(buf)
            if not isinstance(error, str):
                raise FrameError("error message must be a string")
            return Response(request_id, status, error=error)
        flags_chunk = buf.read(1)
        if not flags_chunk:
            raise FrameError("truncated response: missing flags")
        flags = flags_chunk[0]
        blob: Optional[bytes] = None
        body: Dict[str, Any] = {}
        if flags & _BLOB_FLAG:
            length = read_uvarint(buf)
            blob = buf.read(length)
            if len(blob) != length:
                raise FrameError("truncated response blob")
        if flags & _JSON_FLAG:
            length = read_uvarint(buf)
            raw = buf.read(length)
            if len(raw) != length:
                raise FrameError("truncated response body")
            body = json.loads(raw.decode("utf-8"))
        return Response(request_id, status, blob=blob, body=body)
    except FrameError:
        raise
    except (CodecError, ValueError, EOFError) as exc:
        raise FrameError(f"bad response frame: {exc}") from exc


# ---------------------------------------------------------------------------
# Framing over blocking sockets (the controller and client are plain
# synchronous callers; only the replica process runs an event loop).
# ---------------------------------------------------------------------------


def frame(body: bytes) -> bytes:
    """Prefix a body with its big-endian length."""
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {len(body)} bytes")
    return struct.pack(">I", len(body)) + body


def send_frame(sock: socket.socket, body: bytes) -> None:
    sock.sendall(frame(body))


def _recv_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, LENGTH_PREFIX_BYTES)
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {length} bytes")
    return _recv_exact(sock, length) if length else b""
