"""The client-side load generator: latency percentiles and staleness.

Drives one :class:`~repro.serve.client.KVClient` with a seeded
Zipf-skewed open loop of typed operations (the same key-prefix → CRDT
type cycle as :class:`~repro.workloads.kv.KVZipfWorkload`, so the
serving keyspace looks like the sweep keyspace) and measures what a
*client* sees — which the round-level byte accounting cannot:

* per-verb latency percentiles (p50 / p95 / p99, measured around the
  whole quorum exchange: coordinator op + ``w − 1`` delta pushes for
  writes, ``r`` replies + read repair for reads);
* the client's own consistency counters — stale session reads,
  divergent read sets, read repairs pushed, retries, unavailability —
  which is where the ``r``/``w`` knobs become visible as *behaviour*
  rather than configuration.

Timing uses ``time.perf_counter`` around blocking socket round trips
on localhost: the numbers are honest end-to-end client latencies of
this harness, not a claim about datacenter RTTs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serve.client import KVClient
from repro.workloads.zipf import ZipfSampler

#: Key prefix → CRDT type, matching ``KVZipfWorkload.TYPE_CYCLE``.
TYPE_CYCLE = ("gct", "set", "reg", "aws", "cnt")

_GSET_POOL = 64
_AWSET_POOL = 24


def percentile(sorted_samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending sample list.

    Nearest-rank on the sorted samples — simple, deterministic, and
    exact for the small sample counts a smoke run produces.  Returns
    ``0.0`` for an empty list (a report row, not an error).
    """
    if not sorted_samples:
        return 0.0
    if q <= 0:
        return sorted_samples[0]
    if q >= 1:
        return sorted_samples[-1]
    rank = max(0, min(len(sorted_samples) - 1, round(q * len(sorted_samples)) - 1))
    return sorted_samples[rank]


def _latency_summary(samples_ms: List[float]) -> Dict[str, float]:
    ordered = sorted(samples_ms)
    return {
        "count": float(len(ordered)),
        "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1] if ordered else 0.0,
    }


@dataclass(frozen=True)
class LoadReport:
    """What one load run measured, client-side."""

    ops: int
    gets: int
    puts: int
    failed_ops: int
    get_latency_ms: Dict[str, float]
    put_latency_ms: Dict[str, float]
    #: The client's consistency counters at the end of the run
    #: (:attr:`KVClient.stats`): stale_session_reads, divergent_reads,
    #: read_repairs, retries, unavailable, replica_puts, ...
    client_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def stale_session_reads(self) -> int:
        return self.client_stats.get("stale_session_reads", 0)

    @property
    def divergent_reads(self) -> int:
        return self.client_stats.get("divergent_reads", 0)

    @property
    def read_repairs(self) -> int:
        return self.client_stats.get("read_repairs", 0)


class LoadGenerator:
    """A seeded open-loop client workload.

    Args:
        client: The (already wired) :class:`KVClient` to drive.
        keys: Keyspace size; key *i* gets type ``TYPE_CYCLE[i % 5]``.
        write_ratio: Fraction of operations that write.
        zipf_coefficient: Key-popularity skew (same knob as the sweep).
        seed: Derives the entire operation schedule.
        on_error: Called with the raised exception for failed ops
            (``None`` = re-raise).  The smoke test uses this to assert
            the only failures under faults are ``Unavailable`` — a
            client may be refused, but never lied to.
    """

    def __init__(
        self,
        client: KVClient,
        *,
        keys: int = 64,
        write_ratio: float = 0.5,
        zipf_coefficient: float = 1.0,
        seed: int = 0,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        self.client = client
        self.keys = keys
        self.write_ratio = write_ratio
        self.seed = seed
        self.on_error = on_error
        self._key_names = [
            f"{TYPE_CYCLE[i % len(TYPE_CYCLE)]}:{i:05d}" for i in range(keys)
        ]
        self._sampler = ZipfSampler(keys, zipf_coefficient, seed)
        self._rng = random.Random(seed ^ 0x10AD)
        self._clock = 0
        self._get_latency_ms: List[float] = []
        self._put_latency_ms: List[float] = []
        self.ops = 0
        self.gets = 0
        self.puts = 0
        self.failed_ops = 0

    def _draw_write(self, key: str) -> Tuple[str, Tuple[Any, ...]]:
        """A schema-valid op for the key's prefix (the sweep's mix)."""
        prefix = key[:3]
        rng = self._rng
        self._clock += 1
        if prefix == "gct":
            return "increment", (1 + rng.randrange(3),)
        if prefix == "cnt":
            kind = "increment" if rng.random() < 0.7 else "decrement"
            return kind, (1 + rng.randrange(3),)
        if prefix == "set":
            return "add", (f"e{rng.randrange(_GSET_POOL):03d}",)
        if prefix == "aws":
            kind = "add" if rng.random() < 0.75 else "remove"
            return kind, (f"a{rng.randrange(_AWSET_POOL):03d}",)
        return "write", (f"v{self._clock:08d}", self._clock)

    def run_op(self) -> bool:
        """One operation; returns False when it failed (and was eaten)."""
        key = self._key_names[self._sampler.sample()]
        write = self._rng.random() < self.write_ratio
        self.ops += 1
        started = time.perf_counter()
        try:
            if write:
                op, args = self._draw_write(key)
                self.client.put(key, op, *args)
            else:
                self.client.get(key)
        except Exception as exc:
            self.failed_ops += 1
            if self.on_error is None:
                raise
            self.on_error(exc)
            return False
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if write:
            self.puts += 1
            self._put_latency_ms.append(elapsed_ms)
        else:
            self.gets += 1
            self._get_latency_ms.append(elapsed_ms)
        return True

    def run(self, ops: int) -> LoadReport:
        """Run ``ops`` operations back to back; return the report."""
        for _ in range(ops):
            self.run_op()
        return self.report()

    def report(self) -> LoadReport:
        return LoadReport(
            ops=self.ops,
            gets=self.gets,
            puts=self.puts,
            failed_ops=self.failed_ops,
            get_latency_ms=_latency_summary(self._get_latency_ms),
            put_latency_ms=_latency_summary(self._put_latency_ms),
            client_stats=dict(self.client.stats),
        )
