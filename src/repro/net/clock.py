"""Step policies: when each replica's periodic machinery fires.

The transports used to hard-code their timer arithmetic; this module
carves that decision out as a small seam so the *same* event engine can
run two execution models:

* :class:`RoundStepClock` — the paper's barrier-stepped rounds.  Every
  node's synchronization timer fires at the half-interval mark, offset
  by a microscopic per-node stagger so "simultaneous" ticks have a
  stable order, and each round runs to quiescence before the next
  begins.  The arithmetic here is copied *expression for expression*
  from the pre-seam :meth:`~repro.net.sim.SimTransport.run_round` —
  same operations, same association order — so the floating-point
  timestamps, and therefore every byte record downstream of them, are
  bit-identical to the pre-seam engine.
* :class:`DriftClock` — free-running per-replica timers.  Each replica
  draws a private phase offset and a drifting period (a seeded
  perturbation of the nominal interval, modelling real oscillator
  skew), so ticks never align across the cluster and there is no
  barrier to settle to.  This is the paper's actual deployment shape:
  nodes synchronize "every second" by their own clock, not in lockstep.

A clock is attached to every :class:`~repro.net.runtime.ReplicaRuntime`
at bind time; transports read timer targets exclusively through that
per-runtime seam, never from their own config arithmetic.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Tuple

#: Per-node timer stagger in milliseconds.  Microscopic relative to any
#: plausible interval, it exists only to give "simultaneous" events a
#: stable total order in the event queue.
STAGGER_MS = 1e-3


class TickClock(ABC):
    """When a replica's workload and synchronization timers fire.

    All times are absolute simulation-timeline milliseconds.  ``round``
    (equivalently ``tick``) indexes synchronization intervals from 0.
    """

    #: Whether :meth:`run_round` on this clock's transport settles each
    #: interval to quiescence (the barrier-stepped model) or lets
    #: events cross interval boundaries (free-running).
    barrier: bool = True

    @abstractmethod
    def update_at(self, round: int, node: int) -> float:
        """When ``node``'s workload updates of interval ``round`` land."""

    @abstractmethod
    def sync_at(self, tick: int, node: int) -> float:
        """When ``node``'s ``tick``-th synchronization timer fires."""

    @abstractmethod
    def interval_end(self, round: int) -> float:
        """The driving horizon of interval ``round`` (exclusive of the
        next interval's own events)."""


class RoundStepClock(TickClock):
    """Barrier-stepped rounds: the pre-seam simulator's exact timeline.

    Updates land at the round base, every node's sync timer fires at
    the half-interval mark, both staggered per node.  Do not "simplify"
    the arithmetic below: the expressions reproduce the pre-seam
    engine's operation order so the float timestamps are bit-identical,
    which is what the byte-record fingerprint check pins.
    """

    barrier = True

    def __init__(self, interval_ms: float, stagger: float = STAGGER_MS) -> None:
        self.interval_ms = interval_ms
        self.stagger = stagger

    def update_at(self, round: int, node: int) -> float:
        return round * self.interval_ms + node * self.stagger

    def sync_at(self, tick: int, node: int) -> float:
        return tick * self.interval_ms + self.interval_ms / 2 + node * self.stagger

    def interval_end(self, round: int) -> float:
        return round * self.interval_ms + self.interval_ms - self.stagger


class DriftClock(TickClock):
    """Free-running timers: per-replica phase and oscillator drift.

    Replica ``n`` draws, from a seeded stream private to it, a phase
    offset in ``[0, interval)`` and a period ``interval * (1 ± jitter)``;
    its ``k``-th timer fires at ``phase + k * period``.  Timers
    therefore precess against each other — two replicas' ticks drift
    through every possible relative alignment over a long run — which
    is what makes the mode free-running rather than staggered lockstep.
    Workload updates of interval ``round`` land at the node's phase
    point within that interval instead of at the interval base.

    Deterministic: the whole timeline is a pure function of
    ``(seed, interval, jitter)``, so free-running experiments remain
    exactly replayable.
    """

    barrier = False

    def __init__(
        self,
        interval_ms: float,
        *,
        jitter: float = 0.05,
        seed: int = 0,
        stagger: float = STAGGER_MS,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.interval_ms = interval_ms
        self.jitter = jitter
        self.seed = seed
        self.stagger = stagger
        self._timers: Dict[int, Tuple[float, float]] = {}

    def _timer(self, node: int) -> Tuple[float, float]:
        """The node's (phase, period), drawn once from its private stream."""
        timer = self._timers.get(node)
        if timer is None:
            stride = 1_000_003
            rng = random.Random(self.seed * stride + node)
            phase = self.interval_ms * rng.random()
            period = self.interval_ms * (
                1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            )
            timer = (phase, period)
            self._timers[node] = timer
        return timer

    def update_at(self, round: int, node: int) -> float:
        phase, _ = self._timer(node)
        return round * self.interval_ms + phase

    def sync_at(self, tick: int, node: int) -> float:
        phase, period = self._timer(node)
        return phase + tick * period

    def interval_end(self, round: int) -> float:
        return round * self.interval_ms + self.interval_ms - self.stagger
