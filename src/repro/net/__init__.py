"""Transport-abstracted replica runtime.

The paper's protocols are defined over an abstract "ship these messages
to neighbours" step; :mod:`repro.net` is that step made explicit as an
API seam.  It splits what used to be fused inside the simulated cluster
into three layers:

* :class:`~repro.net.runtime.ReplicaRuntime` — one replica's event
  loop: it owns one :class:`~repro.sync.protocol.Synchronizer` and
  drives ``local_update`` / ``sync_messages`` / ``handle_message`` /
  ``absorb_state`` identically over any transport, recording the
  processing costs the paper measures;
* :class:`~repro.net.transport.Transport` — the delivery substrate:
  outbound sends, the delivery callback into the runtimes, the round
  clock, peer addressing over a topology, and the loss/fault hooks
  (crash, partition, message loss) the recovery experiments exercise;
* three implementations — :class:`~repro.net.sim.SimTransport`, the
  deterministic discrete-event engine the paper's figures are
  regenerated on (bit-for-bit the pre-seam simulator);
  :class:`~repro.net.freerun.FreeRunTransport`, the same engine under
  free-running drifting per-replica timers with no per-round
  quiescence barrier (convergence lag becomes a measurement); and
  :class:`~repro.net.tcp.AsyncTcpTransport`, real localhost TCP
  sockets over :mod:`asyncio` with the length-prefixed envelope codec
  of :func:`repro.codec.encode_message`, where ``payload_bytes`` and
  ``metadata_bytes`` are *measured wire bytes* rather than size-model
  estimates.

When a replica's timers fire is a pluggable *step policy*
(:mod:`repro.net.clock`): :class:`~repro.net.clock.RoundStepClock`
reproduces the barrier-stepped round timeline bit-identically, and
:class:`~repro.net.clock.DriftClock` models free-running oscillators
with per-replica phase and skew.

``repro.sim.network.Cluster`` (and therefore ``repro.kv.KVCluster``)
is a thin facade over these layers: same constructors, same public
methods, plus ``transport="tcp"`` to run any synchronizer over real
sockets.
"""

# Import order matters: runtime only type-checks against the transport
# modules, so importing it first lets the repro.sim / repro.kv import
# chains it triggers finish before repro.net.transport begins
# initializing (repro.kv.cluster imports Transport from it).
from repro.net.runtime import ReplicaRuntime
from repro.net.clock import DriftClock, RoundStepClock, TickClock
from repro.net.freerun import FreeRunTransport
from repro.net.sim import SimTransport
from repro.net.tcp import AsyncTcpTransport
from repro.net.transport import Transport, TransportStalled

__all__ = [
    "AsyncTcpTransport",
    "DriftClock",
    "FreeRunTransport",
    "ReplicaRuntime",
    "RoundStepClock",
    "SimTransport",
    "TickClock",
    "Transport",
    "TransportStalled",
]
