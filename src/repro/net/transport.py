"""The transport interface between replica runtimes and a network.

A :class:`Transport` owns everything below the synchronizer protocol:
how outbound :class:`~repro.sync.protocol.Send`\\ s reach their
destination, when the periodic synchronization timers fire, what the
clock reads, and which failures the network injects.  The contract is
deliberately small so the same :class:`~repro.net.runtime.
ReplicaRuntime` — and therefore every synchronizer and the whole kv
store — runs unchanged on the discrete-event simulator and on real
asyncio TCP sockets:

* **send** — :meth:`Transport.send` ships a batch of outbound messages
  produced by one replica; the transport validates addressing against
  the overlay topology, applies loss and fault rules, and accounts
  every message that actually crosses the wire in the shared
  :class:`~repro.sim.metrics.MetricsCollector`.
* **deliver callback** — arriving messages re-enter protocol code only
  through :meth:`ReplicaRuntime.deliver`, never by the transport
  touching a synchronizer directly.
* **clock / timers** — :attr:`Transport.now` is the transport's clock
  in milliseconds and :meth:`Transport.run_round` advances one
  synchronization interval: workload updates, one timer tick per live
  replica, delivery until the round settles, then a memory sample.
* **peer addressing** — replicas are indices ``0..n-1`` of the
  configured :class:`~repro.sim.topology.Topology`; a send to a
  non-neighbour is a hard error on every transport.
* **loss / fault hooks** — :meth:`crash`, :meth:`recover`,
  :meth:`partition`, and :meth:`heal` manipulate shared fault state;
  :meth:`link_up` answers whether a message can currently travel, and
  the four counters (``messages_dropped`` / ``messages_severed`` /
  ``messages_blocked`` / ``updates_skipped``) keep loss, fault kills,
  refused sends, and lost client operations separately observable.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Callable,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.metrics import MemorySample, MessageRecord, MetricsCollector
from repro.sync.protocol import DeltaMutator, Send

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.net.runtime import ReplicaRuntime
    from repro.obs.timing import HotPathTimers
    from repro.obs.trace import Tracer
    from repro.sim.network import ClusterConfig


class TransportStalled(RuntimeError):
    """A transport stopped making delivery progress (deadlock guard)."""


class Transport(ABC):
    """Delivery substrate shared by a cluster of replica runtimes.

    Args:
        config: The cluster configuration (topology, sync interval,
            loss model, size model).
        metrics: The shared collector that every transmitted message
            and memory sample is recorded into.
    """

    def __init__(self, config: "ClusterConfig", metrics: MetricsCollector) -> None:
        self.config = config
        self.topology = config.topology
        self.metrics = metrics
        self.runtimes: List["ReplicaRuntime"] = []
        #: Transmitted messages eaten by random network loss
        #: (``loss_rate`` coin flips) — actual packet loss.
        self.messages_dropped = 0
        #: In-flight messages killed because their destination crashed
        #: or the link was severed mid-transit.  Kept separate from
        #: ``messages_dropped`` so fault experiments can report network
        #: loss and fault-induced kills independently.
        self.messages_severed = 0
        #: Sends refused before transmission (down peer / severed link).
        self.messages_blocked = 0
        #: Workload updates discarded because their node was down.
        self.updates_skipped = 0
        #: Nodes currently crashed: they neither tick nor receive.
        self.down: set = set()
        #: Active partition as disjoint node groups (``None`` = healthy).
        self._groups: Optional[Tuple[FrozenSet[int], ...]] = None
        #: Structured trace sink, attached by the cluster when tracing
        #: is enabled.  ``None`` (the default) must stay ``None`` — a
        #: single attribute check is the entire disabled-tracing cost.
        self.tracer: Optional["Tracer"] = None
        #: Hot-path timers, attached alongside the tracer; same
        #: ``None``-means-off contract.
        self.timers: Optional["HotPathTimers"] = None
        #: Per-edge loss streams, created lazily by :meth:`_edge_rng`.
        #: The k-th flip on edge ``(src, dst)`` is a pure function of
        #: ``(loss_seed, src, dst, k)`` — never of the order the
        #: transport happens to *interleave* edges — so the loss
        #: schedule is a function of the traffic itself: repeated runs,
        #: and the simulator vs the TCP transport, drop the same frames.
        self._edge_rngs: dict = {}

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def bind(self, runtimes: Sequence["ReplicaRuntime"]) -> None:
        """Attach the replica runtimes this transport carries traffic for."""
        if len(runtimes) != self.topology.n:
            raise ValueError(
                f"transport for a {self.topology.n}-node topology got "
                f"{len(runtimes)} runtimes"
            )
        self.runtimes = list(runtimes)
        for runtime in self.runtimes:
            runtime.attach(self)

    # ------------------------------------------------------------------
    # The data plane.
    # ------------------------------------------------------------------

    @abstractmethod
    def send(self, src: int, sends: Sequence[Send]) -> None:
        """Ship ``src``'s outbound messages (validated, accounted)."""

    @property
    @abstractmethod
    def now(self) -> float:
        """The transport clock in milliseconds."""

    @property
    @abstractmethod
    def rounds_run(self) -> int:
        """Synchronization rounds completed so far."""

    @abstractmethod
    def run_round(
        self,
        updates: Optional[Callable[[int], Sequence[DeltaMutator]]] = None,
    ) -> None:
        """Advance one synchronization interval: updates, ticks, delivery.

        ``updates`` maps a node index to the δ-mutators it applies this
        round (``None`` for a synchronization-only drain round).  The
        round ends only after every message sent during it — including
        protocol replies — has been delivered or accounted as lost, so
        the caller may inspect replica state between rounds.
        """

    def close(self) -> None:
        """Release transport resources (sockets, loops); idempotent."""

    # ------------------------------------------------------------------
    # Fault injection: crashes and network partitions.
    # ------------------------------------------------------------------

    def crash(self, node: int) -> None:
        """Take ``node`` down: it stops ticking, sending, and receiving."""
        if not 0 <= node < self.topology.n:
            raise ValueError(f"no such node {node}")
        self.down.add(node)
        if self.tracer is not None:
            self.tracer.emit("crash", replica=node)

    def recover(self, node: int) -> None:
        """Bring a crashed node back into the cluster."""
        self.down.discard(node)
        if self.tracer is not None:
            self.tracer.emit("recover", replica=node)

    def partition(self, *groups: Iterable[int]) -> None:
        """Sever every link between nodes of different ``groups``.

        Nodes not named in any group form one implicit extra group, so
        ``partition([0, 1])`` isolates nodes 0-1 from everyone else.
        """
        explicit = [frozenset(group) for group in groups]
        seen: set = set()
        for group in explicit:
            out_of_range = [n for n in group if not 0 <= n < self.topology.n]
            if out_of_range:
                raise ValueError(f"no such nodes {sorted(out_of_range)}")
            if group & seen:
                raise ValueError("partition groups must be disjoint")
            seen |= group
        rest = frozenset(range(self.topology.n)) - seen
        if rest:
            explicit.append(rest)
        self._groups = tuple(explicit)
        if self.tracer is not None:
            self.tracer.emit(
                "partition",
                extra={"groups": [sorted(group) for group in self._groups]},
            )

    def heal(self) -> None:
        """Restore full connectivity (crashed nodes stay down)."""
        self._groups = None
        if self.tracer is not None:
            self.tracer.emit("heal")

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def link_up(self, src: int, dst: int) -> bool:
        """True when a message can currently travel ``src → dst``."""
        if src in self.down or dst in self.down:
            return False
        if self._groups is None:
            return True
        for group in self._groups:
            if src in group:
                return dst in group
        return True

    # ------------------------------------------------------------------
    # Shared helpers for implementations.
    # ------------------------------------------------------------------

    def _check_addressing(self, src: int, send: Send) -> None:
        """A synchronizer addressing a non-neighbour is a hard error."""
        if send.dst not in self.runtimes[src].synchronizer.neighbors:
            raise ValueError(
                f"node {src} attempted to message non-neighbour {send.dst}"
            )

    def _admit(self, src: int, send: Send) -> bool:
        """The shared admission step of every ``send`` implementation.

        Validates addressing and refuses sends over a dead link —
        counting the refusal and informing the sender's runtime so
        suspicion-based repair scheduling sees it.  Returns ``True``
        when the message may be transmitted.  Both transports must run
        the identical sequence (admit → account+flip → deliver) or the
        documented sim/TCP equivalence drifts; that is why it lives
        here and not in the subclasses.
        """
        self._check_addressing(src, send)
        if not self.link_up(src, send.dst):
            # Connection refused: nothing crossed the wire, so the
            # send is not recorded as transmission.  The sender does
            # learn the peer is unreachable — the signal stores feed
            # into divergence-driven repair scheduling.
            self.messages_blocked += 1
            self.runtimes[src].note_send_blocked(send.dst)
            if self.tracer is not None:
                self.tracer.emit(
                    "send-blocked",
                    replica=src,
                    peer=send.dst,
                    kind=send.message.kind,
                )
            return False
        return True

    def _transmit(
        self, src: int, send: Send, payload_bytes: int, metadata_bytes: int
    ) -> bool:
        """Account one transmitted message and apply the loss model.

        ``payload_bytes``/``metadata_bytes`` are whatever the transport
        measures (size-model estimates on the simulator, wire bytes on
        TCP); units always come from the message.  Returns ``False``
        when the network ate the message — it was transmitted (and
        counted) but must not be delivered.
        """
        self.metrics.record_message(
            MessageRecord(
                time=self.now,
                src=src,
                dst=send.dst,
                kind=send.message.kind,
                payload_units=send.message.payload_units,
                payload_bytes=payload_bytes,
                metadata_bytes=metadata_bytes,
                metadata_units=send.message.metadata_units,
            )
        )
        if self.tracer is not None:
            # Emitted at the same point — before the loss coin flip —
            # with the same byte arguments as the MessageRecord above,
            # so trace-derived totals equal collector totals exactly.
            self.tracer.emit(
                "send",
                replica=src,
                peer=send.dst,
                kind=send.message.kind,
                payload_bytes=payload_bytes,
                metadata_bytes=metadata_bytes,
                payload_units=send.message.payload_units,
                metadata_units=send.message.metadata_units,
            )
        if (
            self.config.loss_rate > 0.0
            and self._edge_rng(src, send.dst).random() < self.config.loss_rate
        ):
            self.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "message-dropped",
                    replica=src,
                    peer=send.dst,
                    kind=send.message.kind,
                )
            return False
        return True

    def _edge_rng(self, src: int, dst: int) -> random.Random:
        """The edge's private loss stream, seeded from (seed, src, dst).

        A single shared stream would assign flips in *consumption*
        order — on the TCP transport that is event-loop callback order,
        which made repeated runs (and sim-vs-TCP comparisons) drop
        different frames.  One stream per directed edge removes the
        ordering dependency entirely; the stride just folds the three
        seed components into one integer without collisions for any
        plausible node count.
        """
        rng = self._edge_rngs.get((src, dst))
        if rng is None:
            stride = 1_000_003
            rng = random.Random(
                (self.config.loss_seed * stride + src) * stride + dst
            )
            self._edge_rngs[(src, dst)] = rng
        return rng

    def _trace_deliver(self, src: int, dst: int, kind: str) -> None:
        """Emit the delivery event both transports share.

        Byte accounting lives on the ``send`` event (the transmission
        record); delivery events only attribute *arrival* — who got
        what kind, when — so the trace can show one-way latency and
        undelivered tails without double-counting bytes.
        """
        if self.tracer is not None:
            self.tracer.emit("deliver", replica=dst, peer=src, kind=kind)

    def _trace_severed(self, src: int, dst: int, kind: str) -> None:
        """Emit the in-flight-kill event both transports share."""
        if self.tracer is not None:
            self.tracer.emit("message-severed", replica=src, peer=dst, kind=kind)

    def sample_memory(self, at: float) -> None:
        """Record one resident-footprint sample per live replica."""
        for index, runtime in enumerate(self.runtimes):
            if index in self.down:
                continue
            node = runtime.synchronizer
            self.metrics.record_memory(
                MemorySample(
                    time=at,
                    node=index,
                    state_units=node.state_units(),
                    buffer_units=node.buffer_units(),
                    state_bytes=node.state_bytes(),
                    buffer_bytes=node.buffer_bytes(),
                    metadata_bytes=node.metadata_bytes(),
                    metadata_units=node.metadata_units(),
                )
            )
