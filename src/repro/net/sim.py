"""The discrete-event simulator as a transport.

This is the engine that used to live inside ``repro.sim.network.
Cluster``, carved out behind the :class:`~repro.net.transport.
Transport` interface with its event ordering preserved exactly: node
timers are staggered by a microscopic offset so "simultaneous" ticks
have a stable order, message delivery preserves per-link FIFO, and the
loss coin flips draw from seeded per-edge streams (a pure function of
the traffic, shared with the TCP transport so both drop the same
frames).  Every loss-free experiment that ran on the pre-seam
simulator produces byte-identical metrics on this transport — that
equivalence is what licenses comparing TCP-measured wire bytes against
the simulator's size-model accounting.

Within a round (one synchronization interval, one second in the
paper): workload updates land at the round base, every live node's
sync timer fires at the half-interval mark, and link latency is small
relative to the interval, so a message sent in round *k* — and any
replies it triggers, such as Scuttlebutt's delta responses — is
processed well before round *k+1* begins, exactly as in the paper's
deployment.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.net.clock import RoundStepClock, TickClock
from repro.net.transport import Transport
from repro.sim.events import EventQueue
from repro.sim.metrics import MetricsCollector
from repro.sync.protocol import DeltaMutator, Send


class SimTransport(Transport):
    """Deterministic event-driven delivery with fault injection."""

    def __init__(self, config, metrics: MetricsCollector) -> None:
        super().__init__(config, metrics)
        self.queue = EventQueue()
        self._round = 0
        #: The step policy every bound runtime shares.  The base
        #: transport drives barrier-stepped rounds; subclasses override
        #: :meth:`_make_clock` to change the execution model without
        #: touching the event engine.
        self.clock: TickClock = self._make_clock()

    def _make_clock(self) -> TickClock:
        return RoundStepClock(self.config.sync_interval_ms)

    def bind(self, runtimes) -> None:
        super().bind(runtimes)
        for runtime in self.runtimes:
            runtime.clock = self.clock

    # ------------------------------------------------------------------
    # Driving the simulation.
    # ------------------------------------------------------------------

    def run_round(
        self,
        updates: Optional[Callable[[int], Sequence[DeltaMutator]]] = None,
    ) -> None:
        """Run one full round: updates, sync tick, delivery, sampling."""
        if updates is not None:
            for node in range(self.topology.n):
                mutators = updates(node)
                if not mutators:
                    continue
                self.queue.schedule(
                    self.runtimes[node].clock.update_at(self._round, node),
                    self._update_action,
                    payload=(node, tuple(mutators)),
                )

        for node in range(self.topology.n):
            self.queue.schedule(
                self.runtimes[node].clock.sync_at(self._round, node),
                self._sync_action,
                payload=node,
            )

        end_of_round = self.clock.interval_end(self._round)
        self.queue.run(until=end_of_round)
        self.sample_memory(end_of_round)
        self._round += 1
        if self.tracer is not None:
            self.tracer.emit("round", round=self._round - 1, time=end_of_round)

    @property
    def rounds_run(self) -> int:
        return self._round

    @property
    def now(self) -> float:
        return self.queue.now

    # ------------------------------------------------------------------
    # Event actions.
    # ------------------------------------------------------------------

    def _update_action(self, event) -> None:
        node, mutators = event.payload
        if node in self.down:
            # The client's replica is gone; its scheduled operations
            # are lost, and visibly so.
            self.updates_skipped += len(mutators)
            return
        for mutator in mutators:
            self.runtimes[node].local_update(mutator)

    def _sync_action(self, event) -> None:
        node: int = event.payload
        if node in self.down:
            return
        self.runtimes[node].tick()

    def _deliver_action(self, event) -> None:
        src, dst, message = event.payload
        if not self.link_up(src, dst):
            # The destination crashed — or the link was severed — while
            # the message was in flight.
            self.messages_severed += 1
            self._trace_severed(src, dst, message.kind)
            return
        self._trace_deliver(src, dst, message.kind)
        self.runtimes[dst].deliver(src, message)

    # ------------------------------------------------------------------
    # The data plane.
    # ------------------------------------------------------------------

    def send(self, src: int, sends: Sequence[Send]) -> None:
        """Record and schedule delivery of outbound messages.

        Accounting uses the message's *modelled* sizes — the size-model
        estimates the paper's figures are computed from.
        """
        for send in sends:
            if not self._admit(src, send):
                continue
            if not self._transmit(
                src, send, send.message.payload_bytes, send.message.metadata_bytes
            ):
                continue
            self.queue.schedule_in(
                self.config.latency_ms,
                self._deliver_action,
                payload=(src, send.dst, send.message),
            )
