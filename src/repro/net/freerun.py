"""Free-running execution: drifting per-replica timers, no barrier.

:class:`FreeRunTransport` reuses the deterministic event engine of
:class:`~repro.net.sim.SimTransport` but drops the round structure.
Each replica owns a self-rescheduling synchronization timer driven by a
:class:`~repro.net.clock.DriftClock` — a private phase offset and a
drifting period modelling real oscillator skew — so ticks never align
across the cluster and nothing ever waits for the network to quiesce:
a message sent near an interval boundary is simply delivered in the
next interval, exactly as on a real deployment where "rounds" exist
only as the observer's reporting grid.

:meth:`run_round` therefore means something weaker here than on the
barrier-stepped transport: it advances the modelled timeline by one
nominal synchronization interval (the paper's per-interval model, one
second) and returns *without* settling.  Convergence between intervals
is not guaranteed — that gap is the measurement: drive the cluster
with tracing on and the existing
:class:`~repro.obs.lag.ConvergenceProbe` reports how many intervals
each shard's owner group stayed divergent, i.e. the price of dropping
the barrier.

Crashed replicas keep their (silenced) timers: the timer survives the
crash and the replica resumes its own timeline on recovery, so a
recovered node does not snap back into alignment with anyone else.

Determinism is fully preserved — the timeline is a pure function of
``(tick_seed, sync_interval_ms, tick_jitter)`` and the workload — so
free-running experiments replay exactly, like everything else in the
harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.net.clock import DriftClock, TickClock
from repro.net.sim import SimTransport
from repro.sim.metrics import MetricsCollector
from repro.sync.protocol import DeltaMutator


class FreeRunTransport(SimTransport):
    """Event-driven delivery under free-running drifting timers."""

    def __init__(self, config, metrics: MetricsCollector) -> None:
        super().__init__(config, metrics)
        #: Ticks fired so far per node (the next tick's index).
        self._ticks: Dict[int, int] = {}
        self._armed = False

    def _make_clock(self) -> TickClock:
        return DriftClock(
            self.config.sync_interval_ms,
            jitter=self.config.tick_jitter,
            seed=self.config.tick_seed,
        )

    # ------------------------------------------------------------------
    # Driving: one nominal interval per call, no settling.
    # ------------------------------------------------------------------

    def run_round(
        self,
        updates: Optional[Callable[[int], Sequence[DeltaMutator]]] = None,
    ) -> None:
        """Advance one nominal interval of the free-running timeline.

        Workload updates of this interval land at each node's own phase
        point; synchronization is driven entirely by the replicas'
        standing timers.  The queue runs up to the interval horizon and
        no further — in-flight deliveries and late ticks simply carry
        over, so callers must not assume quiescence on return.
        """
        if not self._armed:
            # Arm every replica's perpetual timer once; from here each
            # tick reschedules its own successor.
            for node in range(self.topology.n):
                self._arm(node)
            self._armed = True

        if updates is not None:
            for node in range(self.topology.n):
                mutators = updates(node)
                if not mutators:
                    continue
                self.queue.schedule(
                    self.runtimes[node].clock.update_at(self._round, node),
                    self._update_action,
                    payload=(node, tuple(mutators)),
                )

        horizon = self.clock.interval_end(self._round)
        self.queue.run(until=horizon)
        self.sample_memory(horizon)
        self._round += 1
        if self.tracer is not None:
            self.tracer.emit("round", round=self._round - 1, time=horizon)

    # ------------------------------------------------------------------
    # The perpetual per-replica timers.
    # ------------------------------------------------------------------

    def _arm(self, node: int) -> None:
        tick = self._ticks.get(node, 0)
        self.queue.schedule(
            self.runtimes[node].clock.sync_at(tick, node),
            self._tick_action,
            payload=node,
        )

    def _tick_action(self, event) -> None:
        node: int = event.payload
        # Re-arm before firing: the timer is the replica's heartbeat
        # and must survive whatever the tick itself does (including a
        # crash injected mid-run — a down node's timer fires silently).
        self._ticks[node] = self._ticks.get(node, 0) + 1
        self._arm(node)
        if node in self.down:
            return
        self.runtimes[node].tick()
