"""One replica's event loop over an abstract transport.

:class:`ReplicaRuntime` is the piece that used to be implicit in the
simulated cluster's event actions: it owns exactly one
:class:`~repro.sync.protocol.Synchronizer` and translates transport
events into the three protocol entry points (plus the repair hook),
recording the processing costs the paper's Figures 1 and 12 measure.
The runtime is transport-agnostic by construction — it only ever calls
:meth:`~repro.net.transport.Transport.send` — which is what lets the
identical protocol objects run on the deterministic simulator and on
real asyncio TCP sockets.

The runtime also fronts the two optional fault-signal hooks a
synchronizer may expose (``note_send_blocked`` from refused sends and
``restore_clock`` after a rebuild), so transports never need
``getattr`` probes into protocol objects.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Optional

from repro.lattice.base import Lattice
from repro.sim.metrics import MetricsCollector
from repro.sync.protocol import DeltaMutator, Message, Synchronizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.clock import TickClock
    from repro.net.transport import Transport
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timing import HotPathTimers


class ReplicaRuntime:
    """Drives one synchronizer's event handlers over a transport.

    Args:
        synchronizer: The protocol instance this runtime owns.
        collector: Shared collector for processing-cost records
            (``None`` disables processing accounting).
    """

    def __init__(
        self,
        synchronizer: Synchronizer,
        collector: Optional[MetricsCollector] = None,
    ) -> None:
        self.synchronizer = synchronizer
        self.collector = collector
        self.transport: Optional["Transport"] = None
        #: Hot-path timers, attached by the cluster when timing is on;
        #: ``None`` means off and costs one attribute check per event.
        self.timers: Optional["HotPathTimers"] = None
        #: This replica's step policy (:class:`~repro.net.clock.
        #: TickClock`), attached by the transport at bind time.  The
        #: transport reads every timer target through this seam — when
        #: the replica's workload updates land, when its periodic
        #: synchronization timer fires — so the same event engine can
        #: run barrier-stepped rounds or free-running drifting timers.
        self.clock: Optional["TickClock"] = None

    @property
    def replica(self) -> int:
        """This runtime's replica index (the synchronizer's identity)."""
        return self.synchronizer.replica

    @property
    def metrics(self) -> Optional["MetricsRegistry"]:
        """This replica's metrics registry, when its protocol keeps one.

        The sharded kv store binds its scheduler counters (and a WAL
        view) into a per-replica :class:`~repro.obs.metrics.
        MetricsRegistry`; plain synchronizers have none.  This is the
        single observability surface per replica — the cluster-level
        ``scheduler_stats()``/``wal_stats()`` adapters read through it.
        """
        return getattr(self.synchronizer, "registry", None)

    def attach(self, transport: "Transport") -> None:
        """Bind the transport outbound sends go through."""
        self.transport = transport

    # ------------------------------------------------------------------
    # The three protocol entry points, with cost accounting.
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        """Run one workload update on the replica; return its delta."""
        started = _time.perf_counter()
        delta = self.synchronizer.local_update(delta_mutator)
        elapsed = _time.perf_counter() - started
        self._record("runtime.local_update", delta.size_units(), elapsed)
        return delta

    def tick(self) -> None:
        """The periodic synchronization timer fired: push to neighbours."""
        started = _time.perf_counter()
        sends = self.synchronizer.sync_messages()
        elapsed = _time.perf_counter() - started
        produced = sum(send.message.payload_units for send in sends)
        self._record("runtime.tick", produced, elapsed)
        self._send(sends)

    def deliver(self, src: int, message: Message) -> None:
        """A message arrived from ``src``; ship any immediate replies."""
        started = _time.perf_counter()
        replies = self.synchronizer.handle_message(src, message)
        elapsed = _time.perf_counter() - started
        self._record("runtime.deliver", message.payload_units, elapsed)
        self._send(replies)

    def absorb_state(self, state: Lattice, src: Optional[int] = None) -> Lattice:
        """Route out-of-band repair content through the protocol hook."""
        if self.timers is None:
            return self.synchronizer.absorb_state(state, src)
        with self.timers.span("runtime.absorb_state", units=state.size_units()):
            return self.synchronizer.absorb_state(state, src)

    # ------------------------------------------------------------------
    # Fault signals and lifecycle.
    # ------------------------------------------------------------------

    def note_send_blocked(self, dst: int) -> None:
        """The transport refused a send to ``dst``; inform the protocol."""
        hook = getattr(self.synchronizer, "note_send_blocked", None)
        if hook is not None:
            hook(dst)

    def restore_clock(self, ticks: int) -> None:
        """Re-align a rebuilt replica's periodic machinery to the cluster."""
        hook = getattr(self.synchronizer, "restore_clock", None)
        if hook is not None:
            hook(ticks)

    def apply_ring(self, ring, *, retain=frozenset(), fence: bool = True) -> None:
        """Swap the synchronizer's placement ring (live rebalancing).

        Fronts the optional ``apply_ring`` hook the sharded store
        exposes, keeping membership changes on the same no-``getattr``
        seam as the fault signals.  A protocol without the hook cannot
        rebalance — that is a caller error, not a silent no-op.
        ``fence=False`` preserves the durable logs of shards this
        (crashed) replica loses instead of truncating them.
        """
        hook = getattr(self.synchronizer, "apply_ring", None)
        if hook is None:
            raise TypeError(
                f"{type(self.synchronizer).__name__} does not support ring "
                "membership changes (no apply_ring hook)"
            )
        hook(ring, retain=retain, fence=fence)

    def replace(self, synchronizer: Synchronizer, restore=None) -> None:
        """Swap in a fresh protocol instance (crash with state loss).

        ``restore`` is the recovery policy's hook: a callable applied to
        the fresh synchronizer before it goes live — e.g. replaying a
        write-ahead log into it — so a rebuilt replica can come back
        holding its durable state instead of bottom.  Anything the
        restore step cannot cover is left to the protocol-level repair
        machinery, exactly as for a restore-less rebuild.
        """
        if synchronizer.replica != self.replica:
            raise ValueError(
                f"replacement replica {synchronizer.replica} does not match "
                f"runtime replica {self.replica}"
            )
        if restore is not None:
            restore(synchronizer)
        self.synchronizer = synchronizer

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _send(self, sends) -> None:
        if not sends:
            return
        if self.transport is None:
            raise RuntimeError(
                f"runtime {self.replica} produced messages before a "
                "transport was attached"
            )
        self.transport.send(self.replica, sends)

    def _record(self, name: str, units: int, seconds: float) -> None:
        # One perf_counter span feeds both sinks: the collector's
        # per-node processing aggregate and (when enabled) the named
        # hot-path timer — enabling timers never adds a clock read.
        if self.collector is not None:
            self.collector.record_processing(self.replica, units, seconds)
        if self.timers is not None:
            self.timers.record(name, units, seconds)

    def __repr__(self) -> str:
        return (
            f"ReplicaRuntime(replica={self.replica}, "
            f"protocol={type(self.synchronizer).__name__})"
        )
