"""Real sockets: an asyncio localhost-TCP transport.

Every replica gets a listening socket on ``127.0.0.1`` and one
outbound connection per overlay neighbour; protocol messages travel as
length-prefixed envelopes produced by :func:`repro.codec.
encode_message`, so the bytes recorded in the metrics are *measured
wire bytes* — the payload section's actual encoded length and the
envelope's actual framing — rather than the simulator's size-model
estimates.  ``payload_units``/``metadata_units`` still travel in the
envelope, which keeps the paper's machine-independent entry metric
exactly comparable between transports.

The transport preserves the round structure the paper's deployment
assumes (synchronize once per interval; deliveries and replies finish
well before the next interval): :meth:`run_round` applies the round's
workload updates, fires every live replica's synchronization timer
*before* any delivery happens — exactly like the simulator, where all
timers fire at the half-interval mark and latency is small — then runs
the event loop until the network is quiescent (every frame sent this
round, including protocol replies, has been processed or accounted as
lost).  Quiescence is tracked with an in-flight frame counter, so a
stalled peer surfaces as :class:`~repro.net.transport.
TransportStalled` instead of a hang.

Fault injection mirrors the simulator's fail-stop model without socket
churn: a crashed or partitioned peer refuses sends at the sender
(``messages_blocked``, with ``note_send_blocked`` feeding suspicion
into divergence-driven repair).  Because faults are injected between
rounds and every round settles to quiescence, no frame can be caught
in flight by a fault here — ``messages_severed`` stays 0 on TCP (its
delivery-side check is defensive), unlike the simulator, where
latency can carry a reply across a fault boundary.  ``loss_rate``
eats transmitted frames at the sender through the shared per-edge
coin flips: the k-th flip on an edge is a pure function of
``(loss_seed, src, dst, k)``, so the loss schedule depends only on
the traffic — repeated TCP runs, and the simulator against TCP, drop
the same frames even though the event loop chooses callback order.

Wire format per connection::

    frame     := u32be(length) body
    body[0]   := uvarint(sender replica index)      # handshake, once
    body[1:]  := message envelope                   # repro.codec
"""

from __future__ import annotations

import asyncio
import functools
import struct
import time
import warnings
from collections import deque
from io import BytesIO
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.codec import decode_message, frame_message, read_uvarint, write_uvarint
from repro.net.transport import Transport, TransportStalled
from repro.sim.metrics import MetricsCollector
from repro.sync.protocol import Send

#: Bytes of the per-frame length prefix, counted as framing metadata.
LENGTH_PREFIX_BYTES = 4


class AsyncTcpTransport(Transport):
    """Length-prefixed protocol envelopes over localhost TCP sockets."""

    HOST = "127.0.0.1"

    def __init__(
        self,
        config,
        metrics: MetricsCollector,
        *,
        settle_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(config, metrics)
        self._loop = asyncio.new_event_loop()
        self._round = 0
        #: Frames queued for the wire: (src, dst, envelope bytes).
        self._outbox: Deque[Tuple[int, int, bytes]] = deque()
        #: Frames sent but not yet fully processed at their receiver.
        self._pending = 0
        #: The same count broken down by receiving replica, so a stall
        #: can name who stopped making progress.
        self._pending_by_dst: Dict[int, int] = {}
        self._progress: Optional[asyncio.Event] = None
        self._servers: list = []
        self._ports: List[int] = []
        self._writers: Dict[int, Dict[int, asyncio.StreamWriter]] = {}
        self._reader_tasks: list = []
        self._failure: Optional[BaseException] = None
        self._started = False
        self._closed = False
        #: Shutdown scheduled by a re-entrant close() (loop running).
        self._deferred_shutdown: Optional[asyncio.Task] = None
        self._epoch = time.monotonic()
        self._settle_timeout_s = settle_timeout_s

    # ------------------------------------------------------------------
    # Wiring: sockets come up when the runtimes bind.
    # ------------------------------------------------------------------

    def bind(self, runtimes) -> None:
        super().bind(runtimes)
        self._loop.run_until_complete(self._open_sockets())
        self._started = True

    async def _open_sockets(self) -> None:
        self._progress = asyncio.Event()
        for node in range(self.topology.n):
            server = await asyncio.start_server(
                functools.partial(self._accept, node), self.HOST, 0
            )
            self._servers.append(server)
            self._ports.append(server.sockets[0].getsockname()[1])
        for node in range(self.topology.n):
            self._writers[node] = {}
            for peer in self.topology.neighbors(node):
                _, writer = await asyncio.open_connection(self.HOST, self._ports[peer])
                hello = BytesIO()
                write_uvarint(hello, node)
                writer.write(struct.pack(">I", len(hello.getvalue())) + hello.getvalue())
                await writer.drain()
                self._writers[node][peer] = writer

    async def _accept(self, dst: int, reader, writer) -> None:
        """Serve one inbound connection: handshake, then frames."""
        self._reader_tasks.append(asyncio.current_task())
        try:
            handshake = await self._read_frame(reader)
            if handshake is None:
                return
            src = read_uvarint(BytesIO(handshake))
            while True:
                data = await self._read_frame(reader)
                if data is None:
                    return
                self._deliver_frame(src, dst, data)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # surface in the driving coroutine
            self._failure = exc
        finally:
            writer.close()
            if self._progress is not None:
                self._progress.set()

    @staticmethod
    async def _read_frame(reader) -> Optional[bytes]:
        try:
            header = await reader.readexactly(LENGTH_PREFIX_BYTES)
            (length,) = struct.unpack(">I", header)
            return await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None  # peer closed; normal at shutdown

    def _deliver_frame(self, src: int, dst: int, data: bytes) -> None:
        try:
            if self.timers is not None:
                with self.timers.span("tcp.decode"):
                    message = decode_message(data)
            else:
                message = decode_message(data)
            if not self.link_up(src, dst):
                # Defensive only: faults are injected between rounds
                # and rounds settle to quiescence, so under the current
                # driver no frame is ever caught in flight (see module
                # docstring).  Kept for a future free-running mode.
                self.messages_severed += 1
                self._trace_severed(src, dst, message.kind)
            else:
                self._trace_deliver(src, dst, message.kind)
                self.runtimes[dst].deliver(src, message)
        finally:
            self._pending -= 1
            remaining = self._pending_by_dst.get(dst, 0) - 1
            if remaining > 0:
                self._pending_by_dst[dst] = remaining
            else:
                self._pending_by_dst.pop(dst, None)
            if self._progress is not None:
                self._progress.set()

    # ------------------------------------------------------------------
    # The data plane.
    # ------------------------------------------------------------------

    def send(self, src: int, sends: Sequence[Send]) -> None:
        """Encode, account (measured wire bytes), and queue frames."""
        for send in sends:
            if not self._admit(src, send):
                continue
            if self.timers is not None:
                with self.timers.span(
                    "tcp.encode", units=send.message.total_units
                ):
                    frame = frame_message(send.message)
            else:
                frame = frame_message(send.message)
            if not self._transmit(
                src,
                send,
                frame.payload_bytes,
                frame.metadata_bytes + LENGTH_PREFIX_BYTES,
            ):
                continue
            self._pending += 1
            self._pending_by_dst[send.dst] = (
                self._pending_by_dst.get(send.dst, 0) + 1
            )
            self._outbox.append((src, send.dst, frame.data))
            if self._progress is not None:
                self._progress.set()

    # ------------------------------------------------------------------
    # Driving: one synchronization interval per round.
    # ------------------------------------------------------------------

    def run_round(self, updates=None) -> None:
        if not self._started:
            raise RuntimeError("transport is not bound to runtimes yet")
        if updates is not None:
            for node in range(self.topology.n):
                mutators = updates(node)
                if not mutators:
                    continue
                if node in self.down:
                    # The client's replica is gone; its scheduled
                    # operations are lost, and visibly so.
                    self.updates_skipped += len(mutators)
                    continue
                for mutator in mutators:
                    self.runtimes[node].local_update(mutator)
        # Every live timer fires before any delivery — the loop is not
        # running yet, so ticks observe the quiesced pre-round state,
        # matching the simulator's half-interval timer alignment.
        for node in range(self.topology.n):
            if node in self.down:
                continue
            self.runtimes[node].tick()
        self._loop.run_until_complete(self._settle())
        # repro: lint-ok[det-taint] tcp's time axis is real wall time by design; memory samples are diagnostics keyed to it, never fingerprinted
        self.sample_memory(self.now)
        self._round += 1
        if self.tracer is not None:
            self.tracer.emit("round", round=self._round - 1)

    async def _settle(self) -> None:
        """Flush the outbox and wait until no frame is in flight."""
        while True:
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise failure
            touched = set()
            while self._outbox:
                src, dst, data = self._outbox.popleft()
                writer = self._writers[src][dst]
                writer.write(struct.pack(">I", len(data)) + data)
                touched.add(writer)
            for writer in touched:
                await writer.drain()
            if self._pending == 0 and not self._outbox:
                return
            self._progress.clear()
            try:
                await asyncio.wait_for(
                    self._progress.wait(), timeout=self._settle_timeout_s
                )
            except asyncio.TimeoutError:
                stalled = ", ".join(
                    f"replica {dst} ({count} frame{'s' if count != 1 else ''})"
                    for dst, count in sorted(self._pending_by_dst.items())
                )
                raise TransportStalled(
                    f"round {self._round}: no delivery progress for "
                    f"{self._settle_timeout_s}s with {self._pending} frame(s) "
                    f"in flight; stalled at {stalled or 'unknown receivers'}"
                ) from None

    @property
    def rounds_run(self) -> int:
        return self._round

    @property
    def now(self) -> float:
        """Milliseconds of real (monotonic) time since transport creation."""
        return (time.monotonic() - self._epoch) * 1000.0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        if self._started and not self._loop.is_closed() and self._loop.is_running():
            # close() re-entered from inside the running loop — e.g.
            # cleanup after TransportStalled escaped _settle, or __del__
            # firing from a callback.  run_until_complete would raise
            # RuntimeError here, so cancel the readers, schedule the
            # socket shutdown on the live loop, and leave the final
            # teardown (and the loop itself) to a later close() call
            # made from outside the loop.
            for task in self._reader_tasks:
                task.cancel()
            if self._deferred_shutdown is None:
                self._deferred_shutdown = self._loop.create_task(self._shutdown())
            return
        self._closed = True
        try:
            if self._started and not self._loop.is_closed():
                deferred = self._deferred_shutdown
                if deferred is None:
                    self._loop.run_until_complete(self._shutdown())
                elif not deferred.done():
                    self._loop.run_until_complete(deferred)
                elif deferred.cancelled() or deferred.exception() is not None:
                    # The scheduled teardown died mid-flight; retrieving
                    # the exception (so asyncio does not log it as lost)
                    # and running a fresh shutdown closes what it missed.
                    self._loop.run_until_complete(self._shutdown())
        finally:
            # Even a teardown that raised must not leak the loop:
            # _closed is already True, so no later call would retry.
            self._loop.close()

    async def _shutdown(self) -> None:
        # Close the client sides first: readers then end on EOF and
        # their tasks finish normally instead of being cancelled.
        for peers in self._writers.values():
            for writer in peers.values():
                writer.close()
        for peers in self._writers.values():
            for writer in peers.values():
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        if self._reader_tasks:
            _, pending = await asyncio.wait(self._reader_tasks, timeout=5.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()

    def __del__(self) -> None:  # pragma: no cover - defensive cleanup
        try:
            self.close()
        except (RuntimeError, OSError) as exc:
            # A destructor must not raise.  close() entered this late
            # can find the loop half-dead (RuntimeError) or the sockets
            # already torn down (OSError); report the leak the way
            # CPython reports unclosed resources rather than hiding it.
            warnings.warn(
                f"AsyncTcpTransport.__del__: close failed: {exc!r}",
                ResourceWarning,
                source=self,
            )
