"""Command-line experiment runner: ``python -m repro``.

Regenerates any of the paper's evaluation artifacts from a terminal,
without writing a driver script::

    python -m repro list
    python -m repro run figure7 --nodes 15 --rounds 100
    python -m repro run figure9 --sizes 8,16,32
    python -m repro run figure11 --coefficients 0.5,1.0,1.5 --scale ci
    python -m repro run all --scale ci
    python -m repro kv --replicas 16 --keys 1000 --workload zipf
    python -m repro kv --workload retwis --zipf 1.5 --budget 4096
    python -m repro kv --repair 4 --repair-mode digest --faults
    python -m repro kv --faults --recovery wal
    python -m repro kv --rebalance
    python -m repro kv --rebalance --transport tcp --replicas 6
    python -m repro kv --transport tcp --replicas 8 --keys 200

Each run prints the same plain-text table the corresponding
``benchmarks/bench_*.py`` target produces, so CLI output can be diffed
against EXPERIMENTS.md.  ``--scale`` selects parameter presets: ``ci``
(seconds, shape-preserving), ``default`` (the drivers' defaults), and
``paper`` (the paper's full 15/50-node deployments; minutes).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import (
    EXPERIMENTS,
    DEFAULT_ALGORITHMS as _KV_DEFAULT_ALGORITHMS,
    KVConfig,
    RECOVERY_STRATEGIES as _RECOVERY_STRATEGIES,
    RetwisConfig,
    run_kv_repair_comparison,
    run_kv_sweep,
    run_appendixb,
    run_figure1,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_table1,
    run_table2,
)
from repro.kv import RECOVERY_POLICIES as _RECOVERY_POLICIES

#: Micro-benchmark presets per scale: node count and update rounds.
_MICRO_SCALES = {
    "ci": {"nodes": 8, "rounds": 10},
    "default": {"nodes": 15, "rounds": 30},
    "paper": {"nodes": 15, "rounds": 100},
}

_FIGURE9_SCALES = {
    "ci": {"sizes": (8, 16), "rounds": 10},
    "default": {"sizes": (8, 16, 32), "rounds": 30},
    "paper": {"sizes": (8, 16, 32, 48), "rounds": 100},
}

_RETWIS_SCALES = {
    "ci": RetwisConfig(nodes=10, degree=4, users=120, rounds=10, ops_per_node=6),
    "default": RetwisConfig(),
    "paper": RetwisConfig.paper_scale(),
}

_RETWIS_COEFFICIENTS = {
    "ci": (0.5, 1.0, 1.5),
    "default": (0.5, 1.0, 1.25, 1.5),
    "paper": (0.5, 0.75, 1.0, 1.25, 1.5),
}


def _parse_floats(text: str) -> Sequence[float]:
    return tuple(float(part) for part in text.split(",") if part)


def _parse_ints(text: str) -> Sequence[int]:
    return tuple(int(part) for part in text.split(",") if part)


def _micro_kwargs(args: argparse.Namespace) -> Dict[str, int]:
    preset = dict(_MICRO_SCALES[args.scale])
    if args.nodes is not None:
        preset["nodes"] = args.nodes
    if args.rounds is not None:
        preset["rounds"] = args.rounds
    return preset


def _retwis_inputs(args: argparse.Namespace):
    config = _RETWIS_SCALES[args.scale]
    coefficients = _RETWIS_COEFFICIENTS[args.scale]
    if args.coefficients is not None:
        coefficients = args.coefficients
    if args.nodes is not None or args.users is not None:
        config = RetwisConfig(
            nodes=args.nodes or config.nodes,
            degree=config.degree,
            users=args.users or config.users,
            rounds=args.rounds or config.rounds,
            ops_per_node=config.ops_per_node,
            seed=config.seed,
        )
    return coefficients, config


def _run_figure1(args):
    return run_figure1(**_micro_kwargs(args))


def _run_table1(args):
    preset = _micro_kwargs(args)
    return run_table1(nodes=preset["nodes"])


def _run_figure7(args):
    return run_figure7(**_micro_kwargs(args))


def _run_figure8(args):
    return run_figure8(**_micro_kwargs(args))


def _run_figure9(args):
    preset = dict(_FIGURE9_SCALES[args.scale])
    if args.sizes is not None:
        preset["sizes"] = args.sizes
    if args.rounds is not None:
        preset["rounds"] = args.rounds
    return run_figure9(**preset)


def _run_figure10(args):
    return run_figure10(**_micro_kwargs(args))


def _run_table2(args):
    return run_table2(ops=args.ops or 20_000)


def _run_appendixb(args):
    preset = _micro_kwargs(args)
    return run_appendixb(nodes=preset["nodes"], rounds=preset["rounds"])


def _run_figure11(args):
    coefficients, config = _retwis_inputs(args)
    return run_figure11(coefficients, config)


def _run_figure12(args):
    coefficients, config = _retwis_inputs(args)
    return run_figure12(coefficients, config)


_RUNNERS: Dict[str, Callable] = {
    "appendixb": _run_appendixb,
    "figure1": _run_figure1,
    "table1": _run_table1,
    "figure7": _run_figure7,
    "figure8": _run_figure8,
    "figure9": _run_figure9,
    "figure10": _run_figure10,
    "table2": _run_table2,
    "figure11": _run_figure11,
    "figure12": _run_figure12,
}

_DESCRIPTIONS = {
    "appendixb": "the Figure 7 grid on causal add/remove data (OR-set)",
    "figure1": "classic delta ≈ state-based on a 15-node mesh (GSet)",
    "table1": "micro-benchmark definitions (workload registry)",
    "figure7": "transmission ratios, GSet & GCounter, tree + mesh",
    "figure8": "transmission ratios, GMap 10/30/60/100%, tree + mesh",
    "figure9": "metadata bytes per node vs cluster size",
    "figure10": "memory ratios vs BP+RR on the mesh",
    "table2": "Retwis workload characterization",
    "figure11": "Retwis bandwidth & memory vs Zipf contention",
    "figure12": "CPU overhead of classic vs BP+RR (Retwis)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Efficient Synchronization of "
            "State-based CRDTs' (Enes et al., ICDE 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available experiments")

    run = commands.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(_RUNNERS) + ["all"],
        help="paper artifact to regenerate",
    )
    run.add_argument(
        "--scale",
        choices=("ci", "default", "paper"),
        default="default",
        help="parameter preset (ci: seconds; paper: the full deployment)",
    )
    run.add_argument("--nodes", type=int, help="override the node count")
    run.add_argument("--rounds", type=int, help="override the update rounds")
    run.add_argument("--users", type=int, help="Retwis user count (figure11/12)")
    run.add_argument("--ops", type=int, help="operation count (table2)")
    run.add_argument(
        "--sizes", type=_parse_ints, help="cluster sizes, comma-separated (figure9)"
    )
    run.add_argument(
        "--coefficients",
        type=_parse_floats,
        help="Zipf coefficients, comma-separated (figure11/12)",
    )
    run.add_argument(
        "--out", type=str, default=None, help="also write the report to this file"
    )

    kv = commands.add_parser(
        "kv", help="sweep synchronization protocols over the sharded kv store"
    )
    kv.add_argument("--replicas", type=int, default=16, help="store replicas")
    kv.add_argument("--keys", type=int, default=1000, help="keyspace size (zipf)")
    kv.add_argument("--rounds", type=int, default=20, help="update rounds")
    kv.add_argument("--ops", type=int, default=8, help="operations per node per round")
    kv.add_argument("--users", type=int, default=200, help="Retwis users")
    kv.add_argument("--zipf", type=float, default=1.0, help="Zipf coefficient")
    kv.add_argument("--replication", type=int, default=3, help="replicas per shard")
    kv.add_argument("--shards", type=int, default=32, help="shard count")
    kv.add_argument("--seed", type=int, default=42, help="workload RNG seed")
    kv.add_argument(
        "--workload", choices=("zipf", "retwis"), default="zipf", help="traffic shape"
    )
    kv.add_argument(
        "--transport",
        choices=("sim", "tcp", "proc"),
        default="sim",
        help=(
            "replica transport: the deterministic simulator (size-model "
            "bytes), localhost asyncio TCP sockets in one process "
            "(measured wire bytes), or one OS process per replica with "
            "advisory-locked WAL dirs and SIGKILL crashes (proc)"
        ),
    )
    kv.add_argument(
        "--execution",
        choices=("rounds", "free"),
        default="rounds",
        help=(
            "execution model: barrier-stepped rounds (the paper's timeline) "
            "or free-running drifting per-replica timers with no quiescence "
            "barrier (sim engine only; rejected with --transport tcp)"
        ),
    )
    kv.add_argument(
        "--tick-jitter",
        type=float,
        default=0.05,
        help="free-running only: timer period skew as a fraction of the interval",
    )
    kv.add_argument(
        "--budget", type=int, default=None, help="anti-entropy bytes per tick per node"
    )
    kv.add_argument(
        "--repair",
        type=int,
        default=None,
        help=(
            "repair interval in ticks: blanket pushes every N ticks, or the "
            "digest-mode coldness threshold (0 disables repair; default 0, "
            "or 4 when --faults or --repair-mode digest is given)"
        ),
    )
    kv.add_argument(
        "--repair-mode",
        choices=("blanket", "digest"),
        default=None,
        help=(
            "full-state pushes on a timer, or divergence-driven digest "
            "probes (default: blanket; --rebalance requires digest)"
        ),
    )
    kv.add_argument(
        "--repair-fanout",
        type=int,
        default=1,
        help="shards repaired/probed per tick",
    )
    kv.add_argument(
        "--recovery",
        choices=_RECOVERY_POLICIES,
        default=None,
        help=(
            "lose-state recovery policy: rebuild purely over the network "
            "(repair), replay the per-shard write-ahead log locally first "
            "(wal), or replay plus immediate verification probes "
            "(wal+repair).  With --faults this selects which strategy rows "
            "the comparison table grows beyond the blanket/digest "
            "baselines (default: all of them)"
        ),
    )
    kv.add_argument(
        "--faults",
        action="store_true",
        help=(
            "run the seeded fault scenario (partition + heal + crash with "
            "disk loss) comparing blanket vs digest repair instead of the "
            "protocol sweep"
        ),
    )
    kv.add_argument(
        "--quorum",
        action="store_true",
        help=(
            "run the quorum-read comparison instead of the protocol sweep: "
            "a load-generating client drives a live process cluster under "
            "r=1 vs majority read quorums and reports latency percentiles "
            "against observed session staleness (always multi-process; "
            "--transport is ignored)"
        ),
    )
    kv.add_argument(
        "--rebalance",
        action="store_true",
        help=(
            "run the live-rebalancing scenario instead of the protocol "
            "sweep: traffic flows while a replica is added and another "
            "decommissioned, every moved shard shipped as a compacted "
            "WAL-segment handoff; reports handoff bytes vs the naive "
            "full-state transfer baseline (default recovery: wal)"
        ),
    )
    kv.add_argument(
        "--algorithms",
        type=lambda text: tuple(part for part in text.split(",") if part),
        default=None,
        help="comma-separated protocol subset",
    )
    kv.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "write a structured JSONL trace of the run to PATH (round "
            "ticks, per-kind sends/deliveries, repair escalations, WAL "
            "and handoff events); render it later with "
            "'repro trace report PATH'"
        ),
    )
    kv.add_argument(
        "--out", type=str, default=None, help="also write the report to this file"
    )

    trace = commands.add_parser(
        "trace", help="post-process a structured trace file"
    )
    trace.add_argument(
        "action",
        choices=("report",),
        help="report: render the per-phase timeline with byte breakdowns",
    )
    trace.add_argument(
        "path",
        type=str,
        help=(
            "JSONL trace file (from --trace), or a directory of "
            "per-process trace files (from --transport proc), merged "
            "by round with origin attribution"
        ),
    )

    lint = commands.add_parser(
        "lint",
        help=(
            "run the invariant linter (determinism, registry "
            "completeness, trace pairing, frozen-mutation allowlist, "
            "async/exception hygiene) over source trees"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        type=str,
        default="lint-baseline.json",
        help=(
            "accepted-findings baseline file; a missing file is an "
            "empty baseline (default: lint-baseline.json)"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--profile",
        choices=("full", "relaxed"),
        default="full",
        help=(
            "rule profile: full (CI gate on src) or relaxed "
            "(det-rng + broad-except, for tests/ and benchmarks/)"
        ),
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help=(
            "append a per-rule findings/suppressions/baselined table "
            "to the report (text and JSON)"
        ),
    )
    lint.add_argument(
        "--graph",
        type=str,
        default=None,
        metavar="DOT",
        help=(
            "write the project call graph as GraphViz DOT to this "
            "path (debug aid for the interprocedural rules)"
        ),
    )

    serve = commands.add_parser(
        "serve-replica",
        help=(
            "run one replica as a serving process (spawned by the "
            "ProcessCluster controller; rarely invoked by hand)"
        ),
    )
    serve.add_argument("--replica", type=int, required=True, help="this replica's id")
    serve.add_argument(
        "--replica-set",
        type=_parse_ints,
        required=True,
        help="comma-separated ids of the full ring membership",
    )
    serve.add_argument(
        "--run-dir", type=str, required=True, help="portfile/log directory"
    )
    serve.add_argument("--shards", type=int, default=32)
    serve.add_argument("--replication", type=int, default=3)
    serve.add_argument(
        "--algorithm", type=str, default="delta-based-bp-rr",
        help="inner synchronizer (a KV_ALGORITHMS name)",
    )
    serve.add_argument(
        "--recovery", choices=_RECOVERY_POLICIES, default="wal",
        help="boot-time WAL policy (repair = no WAL)",
    )
    serve.add_argument(
        "--wal-dir", type=str, default=None,
        help="this replica's advisory-locked WAL directory",
    )
    serve.add_argument("--wal-compact-bytes", type=int, default=64 * 1024)
    serve.add_argument("--budget", type=int, default=None)
    serve.add_argument("--repair", type=int, default=0)
    serve.add_argument("--repair-mode", choices=("blanket", "digest"), default="blanket")
    serve.add_argument("--repair-fanout", type=int, default=1)
    serve.add_argument("--no-batch", action="store_true")
    serve.add_argument(
        "--trace-dir", type=str, default=None,
        help="directory for this process's r###.jsonl trace file",
    )
    return parser


def _kv_config(args: argparse.Namespace) -> KVConfig:
    """The sweep-cell config for one ``repro kv`` invocation.

    ``KVConfig`` validates flag combinations (e.g. ``--execution free``
    with ``--transport tcp``) in ``__post_init__``; the caller turns
    that ``ValueError`` into a usage error.
    """
    return KVConfig(
        replicas=args.replicas,
        keys=args.keys,
        rounds=args.rounds,
        ops_per_node=args.ops,
        users=args.users,
        zipf=args.zipf,
        replication=args.replication,
        shards=args.shards,
        seed=args.seed,
        workload=args.workload,
        budget_bytes=args.budget,
        # --faults, --rebalance, and an explicit digest mode are
        # meaningless with repair disabled, so when --repair is
        # *unset* they default to a working interval; an explicit
        # --repair 0 is honored.
        repair_interval=args.repair
        if args.repair is not None
        else (
            4
            if args.faults or args.rebalance or args.repair_mode == "digest"
            else 0
        ),
        # The rebalance scenario is divergence-driven end to end
        # (its handoff warm-path/suspicion machinery expects digest
        # probes), so it defaults the unset flag to digest; an
        # explicit blanket was rejected above.
        repair_mode=args.repair_mode
        if args.repair_mode is not None
        else ("digest" if args.rebalance else "blanket"),
        repair_fanout=args.repair_fanout,
        transport=args.transport,
        execution=args.execution,
        tick_jitter=args.tick_jitter,
        # Outside --faults the flag directly sets the store's
        # lose-state policy; the fault comparison instead derives
        # per-row policies from the strategy labels below.
        # --rebalance defaults to wal so handoffs ship log segments.
        recovery=args.recovery
        if args.recovery is not None
        else ("wal" if args.rebalance else "repair"),
        trace=args.trace,
    )


def _run_lint(args: argparse.Namespace, stream) -> int:
    """The ``repro lint`` subcommand; returns a process exit code.

    0 = clean (every finding fixed, suppressed in place, or baselined),
    1 = new findings, 2 = usage problems (bad paths, unreadable
    baseline).  ``--write-baseline`` accepts the current findings and
    exits 0 so the gate can be introduced before the debt is paid.
    """
    from repro.lint import (
        read_baseline,
        render_json,
        render_text,
        rule_catalogue,
        rules_for_profile,
        run_rules,
        write_baseline,
    )
    from repro.lint.engine import load_project

    if args.list_rules:
        from repro.lint import rule_aliases

        for rule_id, summary in sorted(rule_catalogue().items()):
            print(f"{rule_id}: {summary}", file=stream)
        for alias, canonical in sorted(rule_aliases().items()):
            print(f"{alias}: alias of {canonical}", file=stream)
        return 0
    try:
        project = load_project(args.paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    rules = rules_for_profile(args.profile)
    result = run_rules(project, rules)
    if args.graph:
        from repro.lint.callgraph import project_analysis, render_dot

        with open(args.graph, "w", encoding="utf-8") as handle:
            handle.write(render_dot(project_analysis(project)) + "\n")
    if args.write_baseline:
        write_baseline(args.baseline, result.findings, project)
        print(
            f"accepted {len(result.findings)} finding(s) into "
            f"{args.baseline}",
            file=stream,
        )
        return 0
    try:
        baseline = read_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        print(
            f"repro lint: cannot read baseline {args.baseline}: {exc}",
            file=sys.stderr,
        )
        return 2
    new, baselined, stale = baseline.split(result.findings, project)
    render = render_json if args.format == "json" else render_text
    stats_rules = (
        [rule.id for rule in rules] + ["parse-error", "suppression"]
        if args.stats
        else None
    )
    print(
        render(
            result,
            baselined=baselined,
            stale_baseline=stale,
            new_findings=new,
            stats_rules=stats_rules,
        ),
        file=stream,
    )
    return 1 if new else 0


def _emit(text: str, out_path: Optional[str], stream) -> None:
    print(text, file=stream)
    if out_path:
        with open(out_path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: Optional[List[str]] = None, stream=None) -> int:
    """Entry point; returns a process exit code."""
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "serve-replica":
        from repro.serve.replica import ReplicaOptions, ReplicaProcess

        options = ReplicaOptions(
            replica=args.replica,
            replicas=tuple(args.replica_set),
            run_dir=args.run_dir,
            shards=args.shards,
            replication=args.replication,
            algorithm=args.algorithm,
            wal_dir=args.wal_dir,
            recovery=args.recovery,
            wal_compact_bytes=args.wal_compact_bytes,
            budget_bytes=args.budget,
            repair_interval=args.repair,
            repair_fanout=args.repair_fanout,
            repair_mode=args.repair_mode,
            batch=not args.no_batch,
            trace_dir=args.trace_dir,
        )
        ReplicaProcess(options).run()
        return 0

    if args.command == "lint":
        return _run_lint(args, stream)

    if args.command == "trace":
        from repro.obs import read_trace, render_report

        try:
            events = read_trace(args.path)
        except OSError as exc:
            print(f"repro trace: cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro trace: malformed trace {args.path}: {exc}", file=sys.stderr)
            return 2
        print(render_report(events), file=stream)
        return 0

    if args.command == "kv":
        from repro.experiments import KV_ALGORITHMS

        if args.quorum:
            if args.faults or args.rebalance:
                print(
                    "repro kv: --quorum is its own scenario; drop --faults/"
                    "--rebalance",
                    file=sys.stderr,
                )
                return 2
            from repro.experiments import QuorumConfig, run_kv_quorum

            inner = (
                args.algorithms[0] if args.algorithms else "delta-based-bp-rr"
            )
            config = QuorumConfig(
                # The kv default (16) is sim-scale; an untouched default
                # downshifts to 4 real processes.  Any explicit
                # --replicas value is honored.
                replicas=args.replicas if args.replicas != 16 else 4,
                shards=args.shards,
                replication=args.replication,
                algorithm=inner,
                keys=min(args.keys, 64),
                zipf=args.zipf,
                seed=args.seed,
                recovery=args.recovery or "wal",
                trace=args.trace,
            )
            started = time.perf_counter()
            result = run_kv_quorum(config)
            elapsed = time.perf_counter() - started
            _emit(result.render(), args.out, stream)
            _emit(f"[kv quorum completed in {elapsed:.1f}s]\n", args.out, stream)
            return 0

        algorithms = (
            args.algorithms if args.algorithms is not None else _KV_DEFAULT_ALGORITHMS
        )
        bad = [a for a in algorithms if a not in KV_ALGORITHMS]
        if bad or not algorithms:
            detail = f"unknown algorithms {bad}" if bad else "no algorithms given"
            print(
                f"repro kv: {detail} (choose from: {', '.join(sorted(KV_ALGORITHMS))})",
                file=sys.stderr,
            )
            return 2
        if args.faults and args.algorithms and len(args.algorithms) > 1:
            print(
                "repro kv: --faults compares repair modes for one inner "
                "protocol; pass a single --algorithms entry",
                file=sys.stderr,
            )
            return 2
        if args.rebalance and args.faults:
            print(
                "repro kv: --rebalance and --faults are separate scenarios; "
                "pass one of them",
                file=sys.stderr,
            )
            return 2
        if args.rebalance and args.algorithms and len(args.algorithms) > 1:
            print(
                "repro kv: --rebalance replays one inner protocol; pass a "
                "single --algorithms entry",
                file=sys.stderr,
            )
            return 2
        if args.rebalance and args.repair is not None and args.repair < 1:
            print(
                "repro kv: --rebalance requires repair (handoff gaps "
                "re-converge through it); pass --repair >= 1 or drop "
                "--repair for the default",
                file=sys.stderr,
            )
            return 2
        if args.rebalance and args.repair_mode == "blanket":
            print(
                "repro kv: --rebalance is divergence-driven end to end and "
                "requires --repair-mode digest (or dropping the flag)",
                file=sys.stderr,
            )
            return 2
        try:
            config = _kv_config(args)
        except ValueError as exc:
            print(f"repro kv: {exc}", file=sys.stderr)
            return 2
        started = time.perf_counter()
        if args.rebalance:
            from repro.experiments import run_kv_rebalance

            inner = args.algorithms[0] if args.algorithms else "delta-based-bp-rr"
            result = run_kv_rebalance(config, algorithm=inner)
        elif args.faults:
            # Each WAL strategy is compared against the rungs below it
            # on the recovery ladder (so `--recovery wal` rides next to
            # the blanket and digest baselines it must beat); no flag
            # compares the whole ladder.
            cutoff = (
                _RECOVERY_POLICIES.index(args.recovery)
                if args.recovery is not None
                else len(_RECOVERY_POLICIES) - 1
            )
            strategies = tuple(
                label
                for label, (_, policy) in _RECOVERY_STRATEGIES.items()
                if _RECOVERY_POLICIES.index(policy) <= cutoff
            )
            inner = args.algorithms[0] if args.algorithms else "delta-based-bp-rr"
            result = run_kv_repair_comparison(config, algorithm=inner, modes=strategies)
        else:
            result = run_kv_sweep(config, algorithms)
        elapsed = time.perf_counter() - started
        _emit(result.render(), args.out, stream)
        _emit(f"[kv completed in {elapsed:.1f}s]\n", args.out, stream)
        return 0

    if args.command == "list":
        width = max(len(name) for name in _RUNNERS)
        for name in sorted(_RUNNERS):
            print(f"{name.ljust(width)}  {_DESCRIPTIONS[name]}", file=stream)
        return 0

    targets = sorted(_RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        started = time.perf_counter()
        result = _RUNNERS[name](args)
        elapsed = time.perf_counter() - started
        _emit(result.render(), args.out, stream)
        _emit(f"[{name} completed in {elapsed:.1f}s]\n", args.out, stream)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
