"""Byte-size accounting for lattice payloads and protocol metadata.

The paper's bandwidth results are functions of *counted* sizes: numbers
of set elements and map entries for the micro-benchmarks (Table I), and
realistic byte sizes for the Retwis application — 20 B node identifiers
(Figure 9), 31 B tweet identifiers, and 270 B tweet bodies (Section
V-C, after the Facebook workload analysis of Atikoglu et al.).

:class:`SizeModel` turns a Python value into its serialized size:
strings count their UTF-8 bytes, integers a fixed word size, and tuples
the sum of their parts.  Experiments generate identifiers as strings of
the paper's exact lengths, so structural accounting reproduces the
paper's numbers without a custom registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SizeModel:
    """Fixed per-atom byte sizes used when sizing payloads and metadata.

    Attributes:
        int_bytes: Serialized size of an integer (counter value,
            sequence number, timestamp).  The paper's protocols ship
            64-bit values, hence 8.
        bool_bytes: Serialized size of a boolean flag.
        tag_bytes: Size of a Left/Right linear-sum tag byte.
        id_bytes: Size of a replica/node identifier; Figure 9 states
            "each node identifier has size 20B".
        pointer_overhead: Per-stored-object bookkeeping overhead used by
            memory accounting (buffers and key-value stores keep one
            handle per entry).
    """

    int_bytes: int = 8
    bool_bytes: int = 1
    tag_bytes: int = 1
    id_bytes: int = 20
    pointer_overhead: int = 0

    def sizeof(self, value: Any) -> int:
        """Serialized byte size of an arbitrary payload atom.

        Strings count UTF-8 bytes; bytes count their length; integers
        and floats count :attr:`int_bytes`; booleans count
        :attr:`bool_bytes`; tuples and frozensets count the sum of their
        parts; ``None`` is free.  Unknown types fall back to the length
        of their ``repr``, which keeps accounting total rather than
        raising deep inside a simulation run.
        """
        if value is None:
            return 0
        if isinstance(value, bool):
            return self.bool_bytes
        if isinstance(value, (int, float)):
            return self.int_bytes
        if isinstance(value, str):
            return len(value.encode("utf-8"))
        if isinstance(value, bytes):
            return len(value)
        if isinstance(value, (tuple, frozenset, list)):
            return sum(self.sizeof(part) for part in value)
        return len(repr(value))

    def vector_entry_bytes(self) -> int:
        """Size of one version-vector entry: a node id plus a counter.

        Scuttlebutt digests, Scuttlebutt-GC matrices and op-based causal
        clocks are all built from these entries (Figure 9).
        """
        return self.id_bytes + self.int_bytes

    def vector_bytes(self, entries: int) -> int:
        """Size of a version vector with ``entries`` entries."""
        return entries * self.vector_entry_bytes()


#: Default model matching the paper's constants (20 B ids, 64-bit ints).
DEFAULT_SIZE_MODEL = SizeModel()
