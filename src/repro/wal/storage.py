"""Durability backends for the write-ahead log.

The log layer (:mod:`repro.wal.log`) is written against this small
append/replace interface rather than the filesystem, for two reasons:

* the deterministic simulator must stay deterministic and fast —
  :class:`MemoryStorage` gives every replica a private "disk" that is
  just bytes in a dict, with no I/O, no fsync latency, and no host
  filesystem state leaking between seeded runs;
* real durability is a deployment concern — :class:`FileStorage` keeps
  one file per log under a directory, with the atomic-replace dance
  (temp file + ``os.replace``) that makes compaction crash-safe.

The contract every backend honours:

* ``read`` returns whatever was successfully written — a name that was
  never written reads as empty bytes, never an error;
* ``append`` is the group-commit primitive: one call persists one batch;
* ``replace`` is **atomic**: after a crash the reader sees either the
  old content or the new content, never a torn mix.  Compaction relies
  on exactly this (the compacted segment must never destroy the records
  it summarizes until it is fully durable).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import IO, Dict, Optional, Tuple

try:  # pragma: no cover - fcntl is present on every POSIX python
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: locking disabled
    fcntl = None  # type: ignore[assignment]

#: Suffix of in-flight replacement files; readers never look at these,
#: so a crash between writing the temp file and the atomic rename
#: leaves the original log untouched.
TMP_SUFFIX = ".tmp"

#: Name of the advisory lock file inside a locked storage directory.
#: Starts with a dot so ``names()`` never reports it as a log.
LOCK_NAME = ".lock"


class StorageLockError(RuntimeError):
    """Another live process holds this storage directory's lock."""


class Storage(ABC):
    """A named-blob store with append and atomic-replace semantics."""

    @abstractmethod
    def read(self, name: str) -> bytes:
        """Everything written to ``name`` so far (empty when absent)."""

    @abstractmethod
    def append(self, name: str, data: bytes) -> None:
        """Durably append ``data`` to ``name`` (creating it if needed)."""

    @abstractmethod
    def replace(self, name: str, data: bytes) -> None:
        """Atomically replace ``name``'s content with ``data``."""

    @abstractmethod
    def remove(self, name: str) -> None:
        """Delete ``name`` (a no-op when absent)."""

    @abstractmethod
    def names(self) -> Tuple[str, ...]:
        """The names currently stored, sorted."""


class MemoryStorage(Storage):
    """The simulator's disk: blobs in a dict, trivially atomic.

    ``crash(lose_state=True)`` models losing the *process and its
    state*, not the disk — so the cluster keeps one ``MemoryStorage``
    per replica alive across rebuilds, exactly like a host whose data
    volume survives a reimage.
    """

    def __init__(self) -> None:
        self._blobs: Dict[str, bytearray] = {}

    def read(self, name: str) -> bytes:
        return bytes(self._blobs.get(name, b""))

    def append(self, name: str, data: bytes) -> None:
        self._blobs.setdefault(name, bytearray()).extend(data)

    def replace(self, name: str, data: bytes) -> None:
        self._blobs[name] = bytearray(data)

    def remove(self, name: str) -> None:
        self._blobs.pop(name, None)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._blobs))

    def __repr__(self) -> str:
        return f"MemoryStorage(logs={len(self._blobs)})"


class FileStorage(Storage):
    """One file per log under ``root``; replace is temp + ``os.replace``.

    Args:
        root: Directory holding the log files (created if missing).
        fsync: Flush appends and replacements through to the device.
            Defaults off — the test suite and the experiment drivers
            care about crash *semantics* (which the atomic rename
            provides against process crashes), not about surviving
            power loss on the CI host.
        lock: Take an advisory ``flock`` on the directory so two
            processes cannot serve the same replica's WALs at once.
            The second opener fails immediately with
            :class:`StorageLockError` naming the pid that holds the
            lock.  The lock dies with the process (including SIGKILL),
            so a respawn over the surviving directory needs no cleanup.
            Defaults off: in-process tests and single-process
            experiments reopen the same directory freely.
    """

    def __init__(self, root: str, *, fsync: bool = False, lock: bool = False) -> None:
        self.root = root
        self.fsync = fsync
        os.makedirs(root, exist_ok=True)
        self._lock_handle: Optional[IO[str]] = None
        if lock:
            self._acquire_lock()

    def _acquire_lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            raise StorageLockError("advisory locking needs fcntl (POSIX only)")
        path = os.path.join(self.root, LOCK_NAME)
        handle = open(path, "a+")
        try:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.seek(0)
                holder = handle.read().strip() or "unknown"
                raise StorageLockError(
                    f"WAL directory {self.root!r} is already locked by "
                    f"pid {holder}"
                ) from None
            handle.seek(0)
            handle.truncate()
            handle.write(str(os.getpid()))
            handle.flush()
        except BaseException:
            # Any failure after the open — flock contention (rewritten
            # to StorageLockError above), a holder read error, or a pid
            # stamp failing on a full disk — must close the handle:
            # closing drops the flock too, so a failed construction
            # never strands the directory.
            handle.close()
            raise
        self._lock_handle = handle

    @property
    def locked(self) -> bool:
        """Whether this instance holds the directory's advisory lock."""
        return self._lock_handle is not None

    def release_lock(self) -> None:
        """Drop the advisory lock (idempotent; also happens at exit)."""
        handle, self._lock_handle = self._lock_handle, None
        if handle is not None and not handle.closed:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    def _path(self, name: str) -> str:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"invalid log name {name!r}")
        return os.path.join(self.root, name)

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return b""

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def replace(self, name: str, data: bytes) -> None:
        path = self._path(name)
        tmp = path + TMP_SUFFIX
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)

    def remove(self, name: str) -> None:
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def names(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                entry
                for entry in os.listdir(self.root)
                if not entry.endswith(TMP_SUFFIX) and not entry.startswith(".")
            )
        )

    def __repr__(self) -> str:
        return f"FileStorage(root={self.root!r})"
