"""Per-shard write-ahead logging of encoded deltas, compaction = join.

The paper's central object — the join decomposition — makes durability
almost embarrassingly simple, and this package is the demonstration.  A
state-based CRDT is the join of the deltas that ever inflated it; the
:mod:`repro.codec` wire format gives every such delta one canonical
byte string.  So a *log of encoded deltas* is a complete, replayable
representation of a replica's shard state:

* **append** — every delta that crosses a shard (a local typed write,
  a δ-group absorbed from a peer, a repair absorption) is staged and
  group-committed once per synchronization tick, one CRC-guarded record
  each (:class:`~repro.wal.log.ShardLog`);
* **replay** — ``⊔ decode(record)`` over the log rebuilds the shard
  state exactly; order does not matter because join is associative,
  commutative, and idempotent;
* **compact** — when a log outgrows its threshold, its records are
  replaced by the single record of their join.  There is no
  log-structured-merge machinery because *compaction is the lattice
  join*: ``replay(compact(log)) == replay(log)`` is a theorem of the
  lattice, not a property the implementation has to fight for.  The
  swap rides the storage backend's atomic replace, so a crash
  mid-compaction recovers the uncompacted records.

Storage is injectable (:class:`~repro.wal.storage.Storage`):
:class:`~repro.wal.storage.MemoryStorage` keeps the deterministic
simulator deterministic and fast, :class:`~repro.wal.storage.
FileStorage` writes real segment files with temp-file + ``os.replace``
atomicity.  :class:`~repro.wal.log.ReplicaWal` bundles one log per
owned shard and survives ``crash(lose_state=True)`` rebuilds, which is
what lets :mod:`repro.kv` recover a reset replica by *local replay
first, divergence-driven repair for the remainder* instead of paying
the network to rebuild state the replica already proved it held.
"""

from repro.wal.log import (
    CRC_BYTES,
    ReplicaWal,
    ShardLog,
    WalConfig,
    WalFencedError,
    pack_record,
    unpack_records,
)
from repro.wal.storage import FileStorage, MemoryStorage, Storage, StorageLockError

__all__ = [
    "CRC_BYTES",
    "FileStorage",
    "MemoryStorage",
    "ReplicaWal",
    "ShardLog",
    "Storage",
    "StorageLockError",
    "WalConfig",
    "WalFencedError",
    "pack_record",
    "unpack_records",
]
