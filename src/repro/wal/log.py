"""The per-shard append-only log and its per-replica manager.

Record format — one record per appended delta, self-delimiting and
individually checksummed so a torn tail is detected instead of decoded
as garbage::

    record := uvarint(len(body)) body u32be(crc32(body))
    body   := repro.codec.encode(delta)        # canonical lattice bytes

Three operations define the log's semantics:

* **stage/commit** — appends are *staged* in memory and persisted as
  one batch per :meth:`ShardLog.commit` call (the store commits once
  per synchronization tick).  That is group commit: one storage append
  per shard per tick, however many deltas the tick produced.  A crash
  loses whatever was staged and not yet committed — which is the honest
  durability contract of any group-committing WAL, and exactly what the
  recovery experiments measure (the lost tail is the divergence digest
  repair must still cover).
* **replay** — decode every valid record and join them.  Join order is
  irrelevant (associativity/commutativity/idempotence of the lattice
  join), which is what makes a *log* a sufficient representation of a
  *state*: ``replay(log) == ⊔ deltas``.  A record whose length prefix,
  checksum, or body fails to parse ends the valid prefix; the corrupt
  tail is counted, truncated away, and replay returns the join of the
  clean prefix.
* **compact** — replace every record with the single record encoding
  their join.  No log-structured-merge machinery: because the join *is*
  the aggregation, ``replay(compact(log)) == replay(log)`` holds by
  construction, and compaction is crash-safe because the storage's
  atomic ``replace`` never shows a torn state.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from io import BytesIO
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer

from repro.codec import CodecError, decode, encode, read_uvarint, write_uvarint
from repro.lattice.base import Lattice
from repro.wal.storage import MemoryStorage, Storage

#: Bytes of the per-record checksum trailer.
CRC_BYTES = 4


class WalFencedError(RuntimeError):
    """An append reached a shard log fenced by a rebalance handoff."""


def pack_record(body: bytes) -> bytes:
    """Frame one encoded delta as a self-delimiting, checksummed record."""
    out = BytesIO()
    write_uvarint(out, len(body))
    out.write(body)
    out.write(struct.pack(">I", zlib.crc32(body)))
    return out.getvalue()


def _parse_records(data: bytes) -> Tuple[List[Tuple[bytes, int]], int, bool]:
    """``([(body, end_offset), ...], clean_length, corrupt)`` of an image."""
    records: List[Tuple[bytes, int]] = []
    stream = BytesIO(data)
    clean = 0
    while True:
        if stream.tell() == len(data):
            return records, clean, False
        try:
            length = read_uvarint(stream)
        except CodecError:
            return records, clean, True
        body = stream.read(length)
        trailer = stream.read(CRC_BYTES)
        if len(body) != length or len(trailer) != CRC_BYTES:
            return records, clean, True
        if struct.unpack(">I", trailer)[0] != zlib.crc32(body):
            return records, clean, True
        clean = stream.tell()
        records.append((body, clean))


def unpack_records(data: bytes) -> Tuple[List[bytes], int, bool]:
    """Parse the valid record prefix of a log image.

    Returns ``(bodies, clean_length, corrupt)``: the record bodies of
    the longest valid prefix, how many bytes of ``data`` that prefix
    spans, and whether anything (a torn append, a flipped bit) follows
    it.  Parsing never raises — a log is read during crash recovery,
    where the torn tail is the expected case, not the exceptional one.
    """
    records, clean, corrupt = _parse_records(data)
    return [body for body, _ in records], clean, corrupt


@dataclass(frozen=True)
class WalConfig:
    """Durability knobs shared by every shard log of a replica.

    Attributes:
        compact_bytes: Once a shard log's committed size exceeds this,
            the next commit folds it into the single record of its
            join (``None`` disables automatic compaction; explicit
            :meth:`ShardLog.compact` still works).
    """

    compact_bytes: Optional[int] = 64 * 1024

    def __post_init__(self) -> None:
        if self.compact_bytes is not None and self.compact_bytes < 1:
            raise ValueError("compact_bytes must be positive (or None)")


class ShardLog:
    """Append-only log of encoded deltas for one shard of one replica.

    ``observer`` is the log's hook into the structured trace: a
    callable ``(event_type, nbytes)`` invoked on each group commit
    (``"wal-commit"``, batch bytes) and successful compaction
    (``"wal-compact"``, folded image bytes).  ``None`` — the default —
    keeps the write path free of any tracing cost.
    """

    def __init__(
        self,
        storage: Storage,
        name: str,
        config: WalConfig = WalConfig(),
        *,
        observer: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self.storage = storage
        self.name = name
        self.config = config
        self.observer = observer
        #: Encoded deltas staged since the last group commit.
        self._staged: List[bytes] = []
        #: Committed log size in bytes (lazily synced from storage, so
        #: a log reopened over existing content sizes itself correctly).
        self._size: Optional[int] = None
        #: Pre-existing content has been checked against replay's
        #: validity boundary (framing, CRC, decodability).  Set by the
        #: first replay or commit; appending *before* truncating an
        #: inherited bad tail would strand the new records behind junk
        #: the next replay cannot cross.
        self._tail_validated = False
        #: Byte size of the last single-record image the join produced
        #: (successful compaction or a failed attempt).  The commit
        #: trigger waits until the log doubles past it: once the joined
        #: state itself outgrows the threshold, re-deriving the image —
        #: a full decode-join-encode — every commit would buy nothing.
        self._compact_floor = 0
        #: Set when a rebalance handed this shard to another replica:
        #: the log was truncated and refuses appends until the shard is
        #: owned here again (:meth:`unfence`).
        self.fenced = False
        # Counters surfaced through ReplicaWal.stats().
        self.records_committed = 0
        self.commits = 0
        self.committed_bytes = 0
        self.compactions = 0
        self.corrupt_tails_dropped = 0
        self.records_discarded = 0
        self.fences = 0

    # ------------------------------------------------------------------
    # The write path: stage, group-commit, compact.
    # ------------------------------------------------------------------

    def stage(self, encoded: bytes) -> None:
        """Buffer one encoded delta for the next group commit."""
        if self.fenced:
            raise WalFencedError(
                f"shard log {self.name!r} is fenced (ownership was handed "
                "off); unfence on re-acquisition before appending"
            )
        self._staged.append(encoded)

    def discard_staged(self) -> int:
        """Drop staged-but-uncommitted records (what a crash loses)."""
        dropped = len(self._staged)
        self.records_discarded += dropped
        self._staged.clear()
        return dropped

    @property
    def staged_records(self) -> int:
        return len(self._staged)

    def size_bytes(self) -> int:
        """Committed log size in bytes."""
        if self._size is None:
            self._size = len(self.storage.read(self.name))
        return self._size

    def commit(self) -> int:
        """Persist the staged batch as one append; maybe compact.

        Returns the number of bytes written for the batch.
        """
        if not self._staged:
            return 0
        if not self._tail_validated:
            # Reopening over an image a previous process tore: truncate
            # the junk *before* appending, or the new records would sit
            # unreachable behind it.
            self._validate_tail()
        batch = b"".join(pack_record(body) for body in self._staged)
        self.storage.append(self.name, batch)
        self.records_committed += len(self._staged)
        self.commits += 1
        self.committed_bytes += len(batch)
        # _validate_tail (via replay) always ran first, so _size is set.
        self._size += len(batch)
        self._staged.clear()
        if self.observer is not None:
            self.observer("wal-commit", len(batch))
        threshold = self.config.compact_bytes
        if threshold is not None and self._size > max(
            threshold, 2 * self._compact_floor
        ):
            self.compact()
        return len(batch)

    def _validate_tail(self) -> None:
        """Truncate an inherited torn/corrupt tail before first append.

        Delegates to :meth:`replay`, whose truncation boundary is the
        authoritative one — it requires records to *decode*, not merely
        frame and checksum, so a record replay would reject can never
        end up in front of freshly committed ones.
        """
        self.replay()

    def compact(self) -> bool:
        """Fold every record into the single record of their join.

        Compaction *is* the lattice join: the replacement record decodes
        to exactly the state the full log replays to, so recovery after
        compaction is indistinguishable from recovery before it.  The
        swap goes through the storage's atomic ``replace``, so a crash
        mid-compaction leaves the original records intact.

        Returns ``True`` when the log was rewritten.
        """
        state = self.replay()
        if state is None:
            return False
        record = pack_record(encode(state))
        current = self.size_bytes()
        self._compact_floor = len(record)
        if current <= len(record):
            # Nothing to fold away: the floor above keeps routine
            # commits from re-deriving this result until the log has
            # doubled past the joined image.
            return False
        self.storage.replace(self.name, record)
        self._size = len(record)
        self.compactions += 1
        if self.observer is not None:
            self.observer("wal-compact", len(record))
        return True

    # ------------------------------------------------------------------
    # Rebalance: segment export and ownership fencing.
    # ------------------------------------------------------------------

    def export_records(self) -> List[bytes]:
        """The committed log as encoded delta bodies, compacted first.

        The handoff path of a ring rebalance: the returned bodies are
        exactly what a ``kv-handoff-segment`` ships, and the receiver's
        ``⊔ decode(body)`` equals this log's :meth:`replay` — the log
        *is* the state, so shipping the (compacted) log ships the shard.
        A fenced log exports nothing: its content was already handed
        off, and re-exporting it would resurrect stale ownership.
        """
        if self.fenced:
            return []
        # Fold the history into the single record of its join when that
        # pays; a log already smaller than its joined image ships as-is.
        self.compact()
        bodies, _, _ = unpack_records(self.storage.read(self.name))
        return bodies

    def fence(self, truncate: bool = True) -> None:
        """Seal the log after this replica stopped owning the shard.

        Truncates the committed image and drops anything staged, so a
        later re-add of this replica cannot replay deltas from an
        ownership it no longer holds — the receiving owner's log is the
        authoritative continuation.  Appends raise
        :class:`WalFencedError` until :meth:`unfence`.
        """
        self._staged.clear()
        if truncate:
            self.storage.replace(self.name, b"")
            self._size = 0
            self._tail_validated = True
            self._compact_floor = 0
        self.fenced = True
        self.fences += 1

    def unfence(self) -> None:
        """Reopen the log: the replica owns the shard again."""
        self.fenced = False

    # ------------------------------------------------------------------
    # The read path: recovery replay.
    # ------------------------------------------------------------------

    def replay(self) -> Optional[Lattice]:
        """The join of every committed delta (``None`` for an empty log).

        A corrupt or truncated tail — a group commit torn by the crash
        this log exists to survive — is detected by the record checksums,
        truncated away (so later appends never chain onto junk), and the
        clean prefix is replayed.  A record that passes its CRC but no
        longer *decodes* (a writer bug, codec drift across reopens) ends
        the valid prefix the same way instead of aborting recovery.
        """
        data = self.storage.read(self.name)
        records, clean, corrupt = _parse_records(data)
        state: Optional[Lattice] = None
        decoded_end = 0
        for body, end in records:
            try:
                delta = decode(body)
            except CodecError:
                corrupt, clean = True, decoded_end
                break
            state = delta if state is None else state.join(delta)
            decoded_end = end
        if corrupt:
            self.storage.replace(self.name, data[:clean])
            self._size = clean
            self.corrupt_tails_dropped += 1
        else:
            self._size = clean
        self._tail_validated = True
        return state

    def __repr__(self) -> str:
        return (
            f"ShardLog(name={self.name!r}, committed={self.records_committed}, "
            f"staged={len(self._staged)})"
        )


class ReplicaWal:
    """One replica's write-ahead log: one :class:`ShardLog` per shard.

    The object deliberately outlives the store incarnation writing to
    it — the cluster keeps it per replica index, hands it to every
    rebuilt :class:`~repro.kv.store.KVStore`, and recovery replays it
    into the fresh shard synchronizers.  ``crash(lose_state=True)``
    therefore models losing memory and process state while the log
    device survives, which is the failure the paper's join-decomposition
    argument makes cheap to recover from.
    """

    def __init__(
        self,
        replica: int,
        storage: Optional[Storage] = None,
        config: WalConfig = WalConfig(),
        *,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.replica = replica
        self.storage = storage if storage is not None else MemoryStorage()
        self.config = config
        #: Structured trace destination; shard logs get per-shard
        #: observer closures over it (``None`` = tracing off).
        self.tracer = tracer
        self._logs: Dict[int, ShardLog] = {}
        #: Committed log bytes consumed by recovery replays.
        self.replayed_bytes = 0
        #: Shards restored by recovery replays.
        self.replays = 0

    def _observer_for(self, shard: int) -> Optional[Callable[[str, int], None]]:
        if self.tracer is None:
            return None

        def observe(event_type: str, nbytes: int) -> None:
            self.tracer.emit(
                event_type,
                replica=self.replica,
                shard=shard,
                payload_bytes=nbytes,
            )

        return observe

    def log(self, shard: int) -> ShardLog:
        """The shard's log (one file/blob per shard, created lazily)."""
        entry = self._logs.get(shard)
        if entry is None:
            name = f"r{self.replica:03d}-s{shard:05d}.wal"
            entry = ShardLog(
                self.storage, name, self.config, observer=self._observer_for(shard)
            )
            self._logs[shard] = entry
        return entry

    # ------------------------------------------------------------------
    # Write path.
    # ------------------------------------------------------------------

    def append(self, shard: int, delta: Lattice) -> None:
        """Stage one delta for the shard's next group commit."""
        self.log(shard).stage(encode(delta))

    def commit(self) -> int:
        """Group-commit every shard's staged batch; returns bytes written."""
        return sum(log.commit() for log in self._logs.values())

    def discard_staged(self) -> int:
        """Drop all staged records — the crash boundary of group commit."""
        return sum(log.discard_staged() for log in self._logs.values())

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def replay(self, shard: int) -> Optional[Lattice]:
        """Replay one shard's log; accounts the bytes read for reports."""
        log = self.log(shard)
        state = log.replay()
        if state is not None:
            self.replayed_bytes += log.size_bytes()
            self.replays += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "wal-replay",
                    replica=self.replica,
                    shard=shard,
                    payload_bytes=log.size_bytes(),
                )
        return state

    def compact(self, shard: int) -> bool:
        return self.log(shard).compact()

    # ------------------------------------------------------------------
    # Rebalance handoff.
    # ------------------------------------------------------------------

    def export_segment(self, shard: int) -> List[bytes]:
        """The shard's compacted log as handoff-ready record bodies.

        Group-commits the shard's staged records first, so the segment
        covers everything up to the moment of export — the handoff must
        ship the writes of the current tick, not just the last commit.
        """
        log = self.log(shard)
        log.commit()
        return log.export_records()

    def fence(self, shard: int) -> None:
        """Seal and truncate the shard's log after an ownership handoff."""
        self.log(shard).fence()

    def unfence(self, shard: int) -> None:
        """Reopen the shard's log when ownership returns to this replica."""
        self.log(shard).unfence()

    def stats(self) -> Dict[str, int]:
        """Counters for the experiment reports, summed over shard logs."""
        totals = {
            "wal_records": 0,
            "wal_commits": 0,
            "wal_committed_bytes": 0,
            "wal_size_bytes": 0,
            "wal_compactions": 0,
            "wal_corrupt_tails": 0,
            "wal_discarded_records": 0,
            "wal_fences": 0,
            "wal_replayed_bytes": self.replayed_bytes,
            "wal_replays": self.replays,
        }
        for log in self._logs.values():
            totals["wal_records"] += log.records_committed
            totals["wal_commits"] += log.commits
            totals["wal_committed_bytes"] += log.committed_bytes
            totals["wal_size_bytes"] += log.size_bytes()
            totals["wal_compactions"] += log.compactions
            totals["wal_corrupt_tails"] += log.corrupt_tails_dropped
            totals["wal_discarded_records"] += log.records_discarded
            totals["wal_fences"] += log.fences
        return totals

    def __repr__(self) -> str:
        return f"ReplicaWal(replica={self.replica}, shards={sorted(self._logs)})"
