"""Experiment orchestration: workload × topology × algorithm sweeps.

One :func:`run_experiment` call reproduces one cell of the paper's
evaluation: it builds a fresh cluster for a synchronization algorithm,
replays a deterministic workload on it, drains to convergence, and
returns the measurements.  :func:`run_suite` sweeps a set of algorithms
over the *same* workload (workloads are rebuilt per algorithm from the
same seed, so every algorithm sees an identical update schedule — the
property the paper's ratio plots rely on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence

from repro.sim.metrics import MetricsCollector
from repro.sim.network import Cluster, ClusterConfig
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sim.topology import Topology
from repro.sync.protocol import Synchronizer
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ExperimentResult:
    """Everything measured in one algorithm × workload × topology run."""

    algorithm: str
    workload: str
    topology: str
    rounds: int
    drain_rounds: int
    converged: bool
    duration_ms: float
    metrics: MetricsCollector
    final_state_units: int

    # ------------------------------------------------------------------
    # The quantities the paper plots.
    # ------------------------------------------------------------------

    def transmission_units(self) -> int:
        """Total transmitted entries (payload + metadata) — Figs 1, 7, 8.

        The paper's element/entry metric counts the vector and version
        metadata Scuttlebutt and op-based ship, which is what makes them
        lose on the GCounter despite their precise payloads.
        """
        return self.metrics.total_transmission_units()

    def payload_units(self) -> int:
        """Transmitted payload entries only."""
        return self.metrics.total_payload_units()

    def transmission_bytes(self) -> int:
        """Total bytes (payload + metadata) — Figures 9, 11."""
        return self.metrics.total_bytes()

    def metadata_bytes(self) -> int:
        return self.metrics.total_metadata_bytes()

    def metadata_fraction(self) -> float:
        return self.metrics.metadata_fraction()

    def average_memory_units(self) -> float:
        """Mean resident units per node-sample — Figure 10."""
        return self.metrics.average_memory_units()

    def average_memory_bytes(self) -> float:
        return self.metrics.average_memory_bytes()

    def processing_seconds(self) -> float:
        """Wall-clock CPU spent inside algorithm callbacks — Figure 12."""
        return self.metrics.total_processing_seconds()

    def processing_units(self) -> int:
        """Deterministic processing proxy (units produced + consumed)."""
        return self.metrics.total_processing_units()


def run_experiment(
    factory: Callable[..., Synchronizer],
    workload: Workload,
    topology: Topology,
    *,
    sync_interval_ms: float = 1000.0,
    latency_ms: float = 25.0,
    size_model: SizeModel = DEFAULT_SIZE_MODEL,
    max_drain_rounds: int = 200,
) -> ExperimentResult:
    """Run one algorithm against one workload on one topology."""
    config = ClusterConfig(
        topology=topology,
        sync_interval_ms=sync_interval_ms,
        latency_ms=latency_ms,
        size_model=size_model,
        max_drain_rounds=max_drain_rounds,
    )
    cluster = Cluster(config, factory, workload.bottom())
    cluster.run_rounds(workload.rounds, workload.updates_for)
    drain_rounds = cluster.drain()
    algorithm = getattr(factory, "name", getattr(factory, "__name__", str(factory)))
    return ExperimentResult(
        algorithm=algorithm,
        workload=workload.name,
        topology=topology.name,
        rounds=workload.rounds,
        drain_rounds=drain_rounds,
        converged=cluster.converged(),
        duration_ms=cluster.now,
        metrics=cluster.metrics,
        final_state_units=cluster.nodes[0].state_units(),
    )


def run_suite(
    factories: Mapping[str, Callable[..., Synchronizer]],
    workload_factory: Callable[[], Workload],
    topology: Topology,
    **kwargs,
) -> Dict[str, ExperimentResult]:
    """Sweep algorithms over identical workload replays.

    ``workload_factory`` is invoked once per algorithm so that stateful
    workloads (seeded RNGs, rotating key schedules) restart identically.
    """
    results: Dict[str, ExperimentResult] = {}
    for label, factory in factories.items():
        result = run_experiment(factory, workload_factory(), topology, **kwargs)
        results[label] = result
    return results


def ratio_table(
    results: Mapping[str, ExperimentResult],
    baseline: str,
    value: Callable[[ExperimentResult], float],
) -> Dict[str, float]:
    """Normalize a measurement against a baseline algorithm.

    The paper's transmission and memory plots are ratios with respect
    to delta-based BP+RR; its CPU plot is a ratio with respect to
    BP+RR as well.  Guard against a zero baseline (possible only in
    degenerate configurations) by reporting ``inf``.
    """
    base = value(results[baseline])
    table = {}
    for label, result in results.items():
        measured = value(result)
        table[label] = measured / base if base else float("inf")
    return table
