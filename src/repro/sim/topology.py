"""Network topologies for synchronization experiments.

Figure 6 of the paper employs two 15-node overlays:

* a **partial mesh** where every node has 4 neighbours — links are
  redundant, the graph has cycles, and the same δ-group can reach a node
  along several paths (the RR optimization's target scenario);
* a **tree** with 3 neighbours per inner node (binary tree: parent plus
  two children), 2 for the root and 1 for the leaves — the optimal
  cycle-free propagation scenario where BP alone is sufficient.

The partial mesh is generated as a circulant graph (each node linked to
its ``k`` nearest ring neighbours on both sides), which is deterministic,
connected, regular, and rich in short cycles — matching the paper's
drawing.  The Retwis deployment (Section V-C) uses the same construction
with 50 nodes and degree 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple


@dataclass(frozen=True)
class Topology:
    """An undirected connected graph over node indices ``0..n-1``.

    Attributes:
        name: Human-readable label used in experiment reports.
        adjacency: Mapping from node index to its sorted neighbours.
    """

    name: str
    adjacency: Tuple[Tuple[int, ...], ...]

    @staticmethod
    def from_edges(name: str, n: int, edges: Iterable[Tuple[int, int]]) -> "Topology":
        """Build a topology from an edge list, validating connectivity."""
        neighbour_sets: List[set] = [set() for _ in range(n)]
        for a, b in edges:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"edge ({a}, {b}) out of range for {n} nodes")
            if a == b:
                raise ValueError(f"self-loop on node {a}")
            neighbour_sets[a].add(b)
            neighbour_sets[b].add(a)
        topology = Topology(name, tuple(tuple(sorted(s)) for s in neighbour_sets))
        if n > 1 and not topology.is_connected():
            raise ValueError(f"topology {name!r} is not connected")
        return topology

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.adjacency)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Neighbours of ``node`` in ascending order."""
        return self.adjacency[node]

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def edges(self) -> List[Tuple[int, int]]:
        """Undirected edge list with ``a < b``."""
        out = []
        for a, neighbours in enumerate(self.adjacency):
            for b in neighbours:
                if a < b:
                    out.append((a, b))
        return out

    def edge_count(self) -> int:
        return len(self.edges())

    def is_connected(self) -> bool:
        """Breadth-first reachability from node 0."""
        if self.n == 0:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbour in self.adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == self.n

    def is_tree(self) -> bool:
        """True when connected and acyclic (|E| = |V| - 1)."""
        return self.is_connected() and self.edge_count() == self.n - 1

    def has_cycles(self) -> bool:
        return not self.is_tree()

    def diameter(self) -> int:
        """Longest shortest path, by BFS from every node."""
        best = 0
        for source in range(self.n):
            dist: Dict[int, int] = {source: 0}
            frontier = [source]
            while frontier:
                nxt: List[int] = []
                for node in frontier:
                    for neighbour in self.adjacency[node]:
                        if neighbour not in dist:
                            dist[neighbour] = dist[node] + 1
                            nxt.append(neighbour)
                frontier = nxt
            best = max(best, max(dist.values()))
        return best

    def to_networkx(self):  # pragma: no cover - convenience for notebooks
        """Export to a ``networkx.Graph`` (requires networkx)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.edges())
        return graph


def partial_mesh(n: int = 15, degree: int = 4, name: str | None = None) -> Topology:
    """A ``degree``-regular circulant mesh on ``n`` nodes (Figure 6, left).

    Node ``i`` is linked to ``i ± 1, …, i ± degree/2`` modulo ``n``.  For
    odd ``degree`` (requires even ``n``) the antipodal link ``i + n/2``
    is added.  The default (15 nodes, degree 4) reproduces the paper's
    partial mesh; the Retwis runs use ``partial_mesh(50, 4)``.
    """
    if degree >= n:
        raise ValueError(f"degree {degree} must be below node count {n}")
    if degree % 2 == 1 and n % 2 == 1:
        raise ValueError("odd degree requires an even number of nodes")
    edges = set()
    for offset in range(1, degree // 2 + 1):
        for i in range(n):
            edges.add(tuple(sorted((i, (i + offset) % n))))
    if degree % 2 == 1:
        for i in range(n // 2):
            edges.add((i, i + n // 2))
    return Topology.from_edges(name or f"mesh({n},{degree})", n, sorted(edges))


def tree(n: int = 15, fanout: int = 2, name: str | None = None) -> Topology:
    """A complete ``fanout``-ary tree on ``n`` nodes (Figure 6, right).

    With the defaults (15 nodes, binary) every inner node has 3
    neighbours, the root 2, and the leaves 1 — exactly the paper's tree.
    """
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    edges = []
    for child in range(1, n):
        parent = (child - 1) // fanout
        edges.append((parent, child))
    return Topology.from_edges(name or f"tree({n},{fanout})", n, edges)


def ring(n: int, name: str | None = None) -> Topology:
    """A simple cycle — the smallest topology with link redundancy."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology.from_edges(name or f"ring({n})", n, edges)


def line(n: int, name: str | None = None) -> Topology:
    """A path graph — a degenerate tree, useful in unit tests."""
    if n < 2:
        raise ValueError("a line needs at least 2 nodes")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Topology.from_edges(name or f"line({n})", n, edges)


def star(n: int, name: str | None = None) -> Topology:
    """A hub-and-spoke tree with node 0 at the centre."""
    if n < 2:
        raise ValueError("a star needs at least 2 nodes")
    edges = [(0, i) for i in range(1, n)]
    return Topology.from_edges(name or f"star({n})", n, edges)


def full_mesh(n: int, name: str | None = None) -> Topology:
    """All-to-all connectivity, as assumed by original Scuttlebutt."""
    if n < 2:
        raise ValueError("a full mesh needs at least 2 nodes")
    edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return Topology.from_edges(name or f"full({n})", n, edges)
