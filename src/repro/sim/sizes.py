"""Compatibility re-export: the size model lives in :mod:`repro.sizes`.

Byte accounting is used by the lattice layer and the synchronization
protocols as well as the simulator, so the implementation sits at the
package root; this alias keeps simulator-centric imports working.
"""

from repro.sizes import DEFAULT_SIZE_MODEL, SizeModel

__all__ = ["SizeModel", "DEFAULT_SIZE_MODEL"]
