"""Discrete-event network simulator substrate.

The paper evaluates the synchronization algorithms on a Kubernetes
cluster deployed in Emulab (Section V-A).  This package substitutes a
deterministic discrete-event simulator that drives the very same
algorithm code with the same message and timer events a real deployment
would, and measures the same quantities the paper measures:

* transmission — payload in the paper's unit metric (set elements / map
  entries) and in bytes, with protocol metadata accounted separately;
* memory — replica state plus synchronization metadata, sampled over
  time;
* processing — wall-clock CPU time per algorithm callback plus a
  deterministic element-count proxy that is machine-independent.
"""

from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sim.events import Event, EventQueue
from repro.sim.topology import Topology, full_mesh, line, partial_mesh, ring, star, tree
from repro.sim.metrics import MetricsCollector, NodeMetrics
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.runner import ExperimentResult, run_experiment

__all__ = [
    "SizeModel",
    "DEFAULT_SIZE_MODEL",
    "Event",
    "EventQueue",
    "Topology",
    "partial_mesh",
    "tree",
    "ring",
    "line",
    "star",
    "full_mesh",
    "MetricsCollector",
    "NodeMetrics",
    "Cluster",
    "ClusterConfig",
    "ExperimentResult",
    "run_experiment",
]
