"""Measurement of transmission, memory, and processing cost.

The paper's evaluation measures three quantities (Section V):

* **transmission** — what crosses the wire, split into payload (in the
  unit metric of Table I and in bytes) and synchronization metadata
  (Figure 9 measures the metadata share);
* **memory** — CRDT state plus synchronization buffers and metadata
  resident at each node, sampled periodically (Figure 10);
* **processing** — CPU time spent producing and processing
  synchronization messages (Figures 1 and 12).  Wall-clock timings are
  recorded alongside a deterministic *element-count proxy* (lattice
  units produced plus processed), which reproduces the paper's ratios
  on any machine because both are driven by message sizes.

Every message and memory sample is kept as a record, so experiment
drivers can slice series over time (Figure 1's time axis, Figure 11's
first/second-half split) without re-running simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.series import bucket_series, cumulative, partition_at


@dataclass(frozen=True)
class MessageRecord:
    """One message on the wire."""

    time: float
    src: int
    dst: int
    kind: str
    payload_units: int
    payload_bytes: int
    metadata_bytes: int
    metadata_units: int = 0

    @property
    def total_units(self) -> int:
        return self.payload_units + self.metadata_units


@dataclass(frozen=True)
class MemorySample:
    """One node's resident footprint at a sample instant."""

    time: float
    node: int
    state_units: int
    buffer_units: int
    state_bytes: int
    buffer_bytes: int
    metadata_bytes: int
    metadata_units: int = 0

    @property
    def total_units(self) -> int:
        return self.state_units + self.buffer_units + self.metadata_units

    @property
    def total_bytes(self) -> int:
        return self.state_bytes + self.buffer_bytes + self.metadata_bytes


@dataclass
class NodeMetrics:
    """Per-node aggregates, accumulated as the simulation runs."""

    messages_sent: int = 0
    payload_units_sent: int = 0
    payload_bytes_sent: int = 0
    metadata_bytes_sent: int = 0
    messages_received: int = 0
    processing_units: int = 0
    processing_seconds: float = 0.0


class MetricsCollector:
    """Collects message records, memory samples, and processing costs."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.messages: List[MessageRecord] = []
        self.memory: List[MemorySample] = []
        self.per_node: List[NodeMetrics] = [NodeMetrics() for _ in range(n_nodes)]

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def record_message(self, record: MessageRecord) -> None:
        self.messages.append(record)
        sender = self.per_node[record.src]
        sender.messages_sent += 1
        sender.payload_units_sent += record.payload_units
        sender.payload_bytes_sent += record.payload_bytes
        sender.metadata_bytes_sent += record.metadata_bytes
        self.per_node[record.dst].messages_received += 1

    def record_processing(self, node: int, units: int, seconds: float) -> None:
        entry = self.per_node[node]
        entry.processing_units += units
        entry.processing_seconds += seconds

    def record_memory(self, sample: MemorySample) -> None:
        self.memory.append(sample)

    # ------------------------------------------------------------------
    # Transmission aggregates.
    # ------------------------------------------------------------------

    @property
    def message_count(self) -> int:
        return len(self.messages)

    def total_payload_units(self) -> int:
        return sum(r.payload_units for r in self.messages)

    def total_metadata_units(self) -> int:
        return sum(r.metadata_units for r in self.messages)

    def total_transmission_units(self) -> int:
        """Payload plus metadata entries — the Figure 7/8 metric."""
        return self.total_payload_units() + self.total_metadata_units()

    def total_payload_bytes(self) -> int:
        return sum(r.payload_bytes for r in self.messages)

    def total_metadata_bytes(self) -> int:
        return sum(r.metadata_bytes for r in self.messages)

    def total_bytes(self) -> int:
        return self.total_payload_bytes() + self.total_metadata_bytes()

    def metadata_fraction(self) -> float:
        """Share of all transmitted bytes that is metadata (Figure 9)."""
        total = self.total_bytes()
        return self.total_metadata_bytes() / total if total else 0.0

    def metadata_bytes_per_node(self) -> float:
        return self.total_metadata_bytes() / self.n_nodes

    def payload_units_per_node(self) -> float:
        return self.total_payload_units() / self.n_nodes

    def bytes_per_node(self) -> float:
        return self.total_bytes() / self.n_nodes

    # ------------------------------------------------------------------
    # Time-sliced views.
    # ------------------------------------------------------------------

    def units_series(self, window_ms: float) -> List[Tuple[float, int]]:
        """Payload units sent per time window — Figure 1's left plot."""
        return bucket_series(
            self.messages,
            window_ms,
            time=lambda r: r.time,
            value=lambda r: r.payload_units,
        )

    def cumulative_units_series(self, window_ms: float) -> List[Tuple[float, int]]:
        """Running total of payload units over time."""
        return cumulative(self.units_series(window_ms))

    def split_at(self, time: float) -> Tuple["MetricsCollector", "MetricsCollector"]:
        """Split records into before/after ``time`` (Figure 11 halves)."""
        first = MetricsCollector(self.n_nodes)
        second = MetricsCollector(self.n_nodes)
        early, late = partition_at(self.messages, time, time=lambda r: r.time)
        for record in early:
            first.record_message(record)
        for record in late:
            second.record_message(record)
        early, late = partition_at(self.memory, time, time=lambda s: s.time)
        for sample in early:
            first.record_memory(sample)
        for sample in late:
            second.record_memory(sample)
        return first, second

    def last_time(self) -> float:
        latest = 0.0
        if self.messages:
            latest = max(latest, self.messages[-1].time)
        if self.memory:
            latest = max(latest, self.memory[-1].time)
        return latest

    # ------------------------------------------------------------------
    # Memory aggregates (Figure 10/11).
    # ------------------------------------------------------------------

    def average_memory_units(self) -> float:
        """Mean resident units across all samples and nodes."""
        if not self.memory:
            return 0.0
        return sum(sample.total_units for sample in self.memory) / len(self.memory)

    def average_memory_bytes(self) -> float:
        if not self.memory:
            return 0.0
        return sum(sample.total_bytes for sample in self.memory) / len(self.memory)

    def peak_memory_bytes(self) -> int:
        return max((sample.total_bytes for sample in self.memory), default=0)

    def final_memory_units(self) -> float:
        """Mean resident units over the last sample of every node."""
        latest: Dict[int, MemorySample] = {}
        for sample in self.memory:
            latest[sample.node] = sample
        if not latest:
            return 0.0
        return sum(sample.total_units for sample in latest.values()) / len(latest)

    # ------------------------------------------------------------------
    # Processing aggregates (Figures 1 and 12).
    # ------------------------------------------------------------------

    def total_processing_units(self) -> int:
        return sum(entry.processing_units for entry in self.per_node)

    def total_processing_seconds(self) -> float:
        return sum(entry.processing_seconds for entry in self.per_node)
