"""Shared time-series helpers over timestamped records.

:class:`repro.sim.metrics.MetricsCollector` slices its message records
into windows and halves for the paper's time-axis plots; trace
post-processing (:mod:`repro.obs.report`) needs the exact same slicing
over :class:`repro.obs.trace.TraceEvent` streams **without re-running
the simulation**.  Both go through these three generic helpers, keyed
by an extractor, so the bucketing and split logic exists once.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar, Union

T = TypeVar("T")
Number = Union[int, float]


def bucket_series(
    items: Iterable[T],
    window_ms: float,
    *,
    time: Callable[[T], float],
    value: Callable[[T], Number],
) -> List[Tuple[float, Number]]:
    """Sum ``value`` per ``window_ms`` bucket of ``time``, sorted.

    Returns ``[(bucket_start_ms, total), ...]``; empty buckets are
    omitted, matching the historical ``units_series`` behaviour.
    """
    buckets: dict = {}
    for item in items:
        index = int(time(item) // window_ms)
        buckets[index] = buckets.get(index, 0) + value(item)
    return [(index * window_ms, total) for index, total in sorted(buckets.items())]


def cumulative(series: Sequence[Tuple[float, Number]]) -> List[Tuple[float, Number]]:
    """Running total of an ``[(time, value), ...]`` series."""
    running: Number = 0
    out: List[Tuple[float, Number]] = []
    for when, value in series:
        running += value
        out.append((when, running))
    return out


def partition_at(
    items: Iterable[T],
    cutoff: float,
    *,
    time: Callable[[T], float],
) -> Tuple[List[T], List[T]]:
    """Split items into (before ``cutoff``, at-or-after ``cutoff``).

    The boundary convention (``< cutoff`` goes first) is the one
    ``MetricsCollector.split_at`` has always used for the Figure 11
    first/second-half comparison; trace reports reuse it so both views
    of the same run agree on which half an event lands in.
    """
    before: List[T] = []
    after: List[T] = []
    for item in items:
        (before if time(item) < cutoff else after).append(item)
    return before, after
