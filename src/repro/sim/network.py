"""The cluster harness: replicas, runtimes, and a pluggable transport.

Reproduces the paper's experimental harness (Section V-A/B): every node
holds one replica behind a synchronization protocol, applies workload
updates, and synchronizes with its overlay neighbours once per interval
(the paper uses one second).  After the workload's update rounds
finish, the cluster keeps running synchronization-only *drain* rounds
until every replica holds the same state (global convergence), which is
the cross-algorithm comparison point for total transmission.

Since the :mod:`repro.net` seam, :class:`Cluster` is a thin facade: it
builds one :class:`~repro.net.runtime.ReplicaRuntime` per node (each
owning one :class:`~repro.sync.protocol.Synchronizer`) and wires them
to a :class:`~repro.net.transport.Transport`:

* ``transport="sim"`` (default) — :class:`~repro.net.sim.SimTransport`,
  the deterministic discrete-event engine: staggered timers, per-link
  FIFO delivery, seeded loss, severed-vs-dropped fault accounting.
  Byte-for-byte identical to the pre-seam simulator.
* ``transport="tcp"`` — :class:`~repro.net.tcp.AsyncTcpTransport`,
  real localhost TCP sockets where the recorded ``payload_bytes`` /
  ``metadata_bytes`` are measured wire bytes of the
  :func:`repro.codec.encode_message` envelopes.
* ``transport="free"`` — :class:`~repro.net.freerun.FreeRunTransport`,
  the same event engine running free: per-replica drifting timers
  (:class:`~repro.net.clock.DriftClock`), no per-round quiescence
  barrier, convergence lag measured instead of assumed.

The constructor and every public method predate the seam, so existing
experiments, tests, and drivers run unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Union

from repro.lattice.base import Lattice
from repro.sim.metrics import MetricsCollector
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sim.topology import Topology
from repro.sync.protocol import DeltaMutator, Send, Synchronizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.runtime import ReplicaRuntime
    from repro.net.transport import Transport
    from repro.obs.timing import HotPathTimers
    from repro.obs.trace import Tracer


class _SynchronizerView(SequenceABC):
    """A live, indexable view of the runtimes' protocol instances.

    ``cluster.nodes[i]`` predates the runtime seam and sits on hot
    paths (per-shard convergence checks, request routing), so it must
    stay O(1) per access and track replica rebuilds — hence a view over
    the runtimes rather than a list materialized per property read.
    """

    __slots__ = ("_runtimes",)

    def __init__(self, runtimes: Sequence["ReplicaRuntime"]) -> None:
        self._runtimes = runtimes

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [runtime.synchronizer for runtime in self._runtimes[index]]
        return self._runtimes[index].synchronizer

    def __len__(self) -> int:
        return len(self._runtimes)

    def __repr__(self) -> str:
        return repr(list(self))


def transport_registry() -> dict:
    """Named transport constructors selectable via ``Cluster(transport=...)``.

    Imported lazily: :mod:`repro.net` and :mod:`repro.sim` reference
    each other (the transports use the event queue and metrics, this
    facade builds the transports), and deferring the lookup keeps both
    packages importable in either order.
    """
    from repro.net.freerun import FreeRunTransport
    from repro.net.sim import SimTransport
    from repro.net.tcp import AsyncTcpTransport

    return {"sim": SimTransport, "tcp": AsyncTcpTransport, "free": FreeRunTransport}


def _normalize_trace(trace) -> Optional["Tracer"]:
    """Coerce the ``trace=`` argument into a bound-ready tracer.

    Accepts ``None`` (tracing off), an existing :class:`~repro.obs.
    trace.Tracer` (shared across clusters, e.g. one trace file for a
    whole experiment sweep), a :class:`~repro.obs.trace.TraceSink`, or
    a path string for a fresh JSONL file sink.
    """
    if trace is None:
        return None
    from repro.obs.trace import FileTraceSink, Tracer, TraceSink

    if isinstance(trace, Tracer):
        return trace
    if isinstance(trace, TraceSink):
        return Tracer(trace)
    if isinstance(trace, str):
        return Tracer(FileTraceSink(trace))
    raise TypeError(
        f"trace must be None, a Tracer, a TraceSink, or a path string, "
        f"not {type(trace).__name__}"
    )


@dataclass(frozen=True)
class ClusterConfig:
    """Simulation parameters.

    Attributes:
        topology: The overlay graph (Figure 6).
        sync_interval_ms: Period of each node's synchronization timer;
            the paper synchronizes every second.
        latency_ms: One-way link latency; must be well below the
            interval (the paper's cluster had sub-millisecond LAN
            latency against a 1 s interval).
        size_model: Byte accounting model.
        max_drain_rounds: Safety cap on synchronization-only rounds run
            after the workload ends while waiting for convergence.
    """

    topology: Topology
    sync_interval_ms: float = 1000.0
    latency_ms: float = 25.0
    size_model: SizeModel = DEFAULT_SIZE_MODEL
    max_drain_rounds: int = 200
    #: Probability that any message is silently dropped in transit.
    #: The paper's Algorithm 1 assumes 0; the acked variant
    #: (:class:`repro.sync.reliable.DeltaBasedAcked`) tolerates > 0.
    loss_rate: float = 0.0
    #: Seed for the (deterministic) loss coin flips.
    loss_seed: int = 0
    #: Free-running mode only (``transport="free"``): per-replica timer
    #: drift as a fraction of the interval — replica timers run at
    #: ``interval * (1 ± tick_jitter)`` — and the seed of the
    #: per-replica phase/period draws.  Ignored by the barrier-stepped
    #: transports.
    tick_jitter: float = 0.05
    tick_seed: int = 0

    def __post_init__(self) -> None:
        if self.latency_ms * 2 >= self.sync_interval_ms:
            raise ValueError(
                "round-trip latency must fit inside the sync interval: "
                f"{self.latency_ms}ms vs {self.sync_interval_ms}ms"
            )


class Cluster:
    """A set of replicas synchronizing over a topology.

    Args:
        config: Simulation parameters (topology, interval, loss, sizes).
        factory: Synchronizer factory, called with keyword arguments
            (``replica=``, ``neighbors=``, ``bottom=``, ``n_nodes=``,
            ``size_model=``) for each node.
        bottom: The bottom element every replica starts from.
        transport: ``"sim"`` (default), ``"tcp"``, or an already
            constructed :class:`~repro.net.transport.Transport`.
        trace: Structured tracing: ``None`` (off, the default), a
            :class:`~repro.obs.trace.Tracer`, a
            :class:`~repro.obs.trace.TraceSink`, or a path string (a
            :class:`~repro.obs.trace.FileTraceSink` is opened there).
            The tracer's clock is bound to the transport, and every
            layer that can see the tracer emits through it.
        timing: Hot-path timers around tick/encode/decode/join paths.
            ``None`` (default) follows ``trace`` — timing turns on
            whenever tracing does; pass ``False``/``True`` to force.
    """

    def __init__(
        self,
        config: ClusterConfig,
        factory: Callable[..., Synchronizer],
        bottom: Lattice,
        transport: Union[str, Transport] = "sim",
        *,
        trace: Union[None, "Tracer", str, object] = None,
        timing: Optional[bool] = None,
    ) -> None:
        from repro.net.runtime import ReplicaRuntime

        self.config = config
        self.topology = config.topology
        self._factory = factory
        self._bottom = bottom
        self.tracer = _normalize_trace(trace)
        if isinstance(transport, str):
            registry = transport_registry()
            try:
                transport = registry[transport](
                    config, MetricsCollector(config.topology.n)
                )
            except KeyError:
                raise ValueError(
                    f"unknown transport {transport!r} "
                    f"(choose from: {', '.join(sorted(registry))})"
                ) from None
        self.transport = transport
        #: Shared collector: the transport records messages and memory
        #: samples, the runtimes record processing costs.
        self.metrics = transport.metrics
        if self.tracer is not None:
            # Bind the trace clock to the transport so every event
            # carries the same time/round axes the collector uses.
            self.tracer.bind(
                lambda: self.transport.now, lambda: self.transport.rounds_run
            )
            transport.tracer = self.tracer
        timing_on = timing if timing is not None else self.tracer is not None
        self.timers: Optional["HotPathTimers"] = None
        if timing_on:
            from repro.obs.timing import HotPathTimers

            self.timers = HotPathTimers()
            transport.timers = self.timers
        self.runtimes: List[ReplicaRuntime] = [
            ReplicaRuntime(self._build_synchronizer(node), self.metrics)
            for node in range(config.topology.n)
        ]
        if self.timers is not None:
            for runtime in self.runtimes:
                runtime.timers = self.timers
        self._nodes_view = _SynchronizerView(self.runtimes)
        self.transport.bind(self.runtimes)

    def _build_synchronizer(self, node: int) -> Synchronizer:
        """Construct one node's protocol instance, by keyword.

        Keyword construction is the :data:`~repro.sync.protocol.
        SynchronizerFactory` contract: runtime-built replicas cannot
        silently transpose positional arguments.
        """
        return self._factory(
            replica=node,
            neighbors=self.topology.neighbors(node),
            bottom=self._bottom,
            n_nodes=self.topology.n,
            size_model=self.config.size_model,
        )

    # ------------------------------------------------------------------
    # Legacy surface: the protocol instances and transport state.
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Sequence[Synchronizer]:
        """The per-node protocol instances (index == replica id).

        A live O(1)-per-access view: indexing reads through to the
        runtime, so a replica rebuilt by ``crash(lose_state=True)`` is
        visible immediately.
        """
        return self._nodes_view

    @property
    def queue(self):
        """The simulator's event queue (sim transport only)."""
        return self.transport.queue

    @property
    def down(self) -> set:
        """Nodes currently crashed: they neither tick nor receive."""
        return self.transport.down

    @property
    def messages_dropped(self) -> int:
        """Transmitted messages eaten by random network loss."""
        return self.transport.messages_dropped

    @property
    def messages_severed(self) -> int:
        """In-flight messages killed by a crash or severed link."""
        return self.transport.messages_severed

    @property
    def messages_blocked(self) -> int:
        """Sends refused before transmission (down peer / severed link)."""
        return self.transport.messages_blocked

    @property
    def updates_skipped(self) -> int:
        """Workload updates discarded because their node was down."""
        return self.transport.updates_skipped

    @property
    def rounds_run(self) -> int:
        return self.transport.rounds_run

    @property
    def now(self) -> float:
        return self.transport.now

    # ------------------------------------------------------------------
    # Driving the cluster.
    # ------------------------------------------------------------------

    def apply_update(self, node: int, delta_mutator: DeltaMutator) -> Lattice:
        """Run one workload update on ``node``, with cost accounting."""
        return self.runtimes[node].local_update(delta_mutator)

    def run_round(
        self,
        updates: Optional[Callable[[int], Sequence[DeltaMutator]]] = None,
    ) -> None:
        """Run one full round: updates, sync tick, delivery, sampling.

        ``updates`` maps a node index to the δ-mutators it applies this
        round (``None`` for a synchronization-only drain round).
        """
        self.transport.run_round(updates)

    def run_rounds(
        self,
        rounds: int,
        updates_for: Callable[[int, int], Sequence[DeltaMutator]],
    ) -> None:
        """Run ``rounds`` update rounds; ``updates_for(round, node)``."""
        for round_index in range(rounds):
            self.run_round(lambda node, r=round_index: updates_for(r, node))

    def drain(self) -> int:
        """Run sync-only rounds until global convergence; return count.

        Raises ``RuntimeError`` if convergence is not reached within the
        configured cap — that would indicate a protocol bug, and hiding
        it would corrupt every downstream measurement.
        """
        for extra in range(self.config.max_drain_rounds):
            if self.converged():
                return extra
            self.run_round(updates=None)
        if not self.converged():
            raise RuntimeError(
                f"no convergence after {self.config.max_drain_rounds} drain rounds "
                f"({type(self.nodes[0]).__name__})"
            )
        return self.config.max_drain_rounds

    def converged(self) -> bool:
        """True when every live replica holds the same lattice state."""
        live = [
            runtime.synchronizer
            for index, runtime in enumerate(self.runtimes)
            if index not in self.down
        ]
        if len(live) < 2:
            return True
        first = live[0].state
        return all(node.state == first for node in live[1:])

    def close(self) -> None:
        """Release transport resources (sockets, loops); idempotent."""
        self.transport.close()

    # ------------------------------------------------------------------
    # Fault injection: crashes and network partitions.
    # ------------------------------------------------------------------

    def crash(self, node: int, lose_state: bool = False) -> None:
        """Take ``node`` down: it stops ticking, sending, and receiving.

        With ``lose_state`` the replica loses its in-memory state and is
        rebuilt fresh; what the rebuilt replica comes back *holding* is
        the recovery policy's call (:meth:`_restore_for`) — the base
        cluster has no durable layer, so it restarts from bottom and
        leans entirely on protocol-level repair.  Without ``lose_state``
        it resumes from the state it crashed with (process restart).
        """
        self.transport.crash(node)
        if lose_state:
            self.runtimes[node].replace(
                self._build_synchronizer(node), restore=self._restore_for(node)
            )

    def _restore_for(self, node: int):
        """The recovery policy of a lose-state rebuild.

        Returns a callable applied to the freshly built synchronizer
        before it goes live, or ``None`` for a bottom restart.
        Subclasses with a durability layer override this —
        :class:`~repro.kv.cluster.KVCluster` replays the replica's
        per-shard write-ahead log here.
        """
        return None

    def recover(self, node: int) -> None:
        """Bring a crashed node back into the cluster.

        Down nodes do not tick, so whether the replica kept its state
        or was rebuilt from bottom, its internal clocks lag the cluster
        by the whole downtime.  Realigning here keeps periodic
        machinery (anti-entropy repair phases, coldness thresholds)
        synchronized with the replicas that kept running.
        """
        self.transport.recover(node)
        self.runtimes[node].restore_clock(self.rounds_run)

    def partition(self, *groups: Iterable[int]) -> None:
        """Sever every link between nodes of different ``groups``.

        Nodes not named in any group form one implicit extra group, so
        ``partition([0, 1])`` isolates nodes 0-1 from everyone else.
        """
        self.transport.partition(*groups)

    def heal(self) -> None:
        """Restore full connectivity (crashed nodes stay down)."""
        self.transport.heal()

    @property
    def partitioned(self) -> bool:
        return self.transport.partitioned

    def link_up(self, src: int, dst: int) -> bool:
        """True when a message can currently travel ``src → dst``."""
        return self.transport.link_up(src, dst)

    def _dispatch(self, src: int, sends: Sequence[Send]) -> None:
        """Hand outbound messages to the transport (testing hook)."""
        self.transport.send(src, sends)
