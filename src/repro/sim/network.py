"""The simulated cluster: nodes, links, timers, and delivery.

Reproduces the paper's experimental harness (Section V-A/B): every node
holds one replica behind a synchronization protocol, applies workload
updates, and synchronizes with its overlay neighbours once per interval
(the paper uses one second).  Link latency is small relative to the
interval, so a message sent in round *k* — and any replies it triggers,
such as Scuttlebutt's delta responses — is processed well before round
*k+1* begins, exactly as in the paper's deployment.

The cluster is event-driven and fully deterministic: node timers are
staggered by a microscopic offset so "simultaneous" ticks have a stable
order, and message delivery preserves per-link FIFO.  After the
workload's update rounds finish, the cluster keeps running
synchronization-only *drain* rounds until every replica holds the same
state (global convergence), which is the cross-algorithm comparison
point for total transmission.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.lattice.base import Lattice
from repro.sim.events import EventQueue
from repro.sim.metrics import MemorySample, MessageRecord, MetricsCollector
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sim.topology import Topology
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer


@dataclass(frozen=True)
class ClusterConfig:
    """Simulation parameters.

    Attributes:
        topology: The overlay graph (Figure 6).
        sync_interval_ms: Period of each node's synchronization timer;
            the paper synchronizes every second.
        latency_ms: One-way link latency; must be well below the
            interval (the paper's cluster had sub-millisecond LAN
            latency against a 1 s interval).
        size_model: Byte accounting model.
        max_drain_rounds: Safety cap on synchronization-only rounds run
            after the workload ends while waiting for convergence.
    """

    topology: Topology
    sync_interval_ms: float = 1000.0
    latency_ms: float = 25.0
    size_model: SizeModel = DEFAULT_SIZE_MODEL
    max_drain_rounds: int = 200
    #: Probability that any message is silently dropped in transit.
    #: The paper's Algorithm 1 assumes 0; the acked variant
    #: (:class:`repro.sync.reliable.DeltaBasedAcked`) tolerates > 0.
    loss_rate: float = 0.0
    #: Seed for the (deterministic) loss coin flips.
    loss_seed: int = 0

    def __post_init__(self) -> None:
        if self.latency_ms * 2 >= self.sync_interval_ms:
            raise ValueError(
                "round-trip latency must fit inside the sync interval: "
                f"{self.latency_ms}ms vs {self.sync_interval_ms}ms"
            )


class Cluster:
    """A set of replicas synchronizing over a topology."""

    def __init__(
        self,
        config: ClusterConfig,
        factory: Callable[..., Synchronizer],
        bottom: Lattice,
    ) -> None:
        self.config = config
        self.topology = config.topology
        self.nodes: List[Synchronizer] = [
            factory(
                node,
                config.topology.neighbors(node),
                bottom,
                config.topology.n,
                config.size_model,
            )
            for node in range(config.topology.n)
        ]
        self.metrics = MetricsCollector(config.topology.n)
        self.queue = EventQueue()
        self._round = 0
        self._loss_rng = random.Random(config.loss_seed)
        #: Transmitted messages eaten by random network loss
        #: (``loss_rate`` coin flips) — actual packet loss.
        self.messages_dropped = 0
        #: In-flight messages killed because their destination crashed
        #: or the link was severed mid-transit.  Kept separate from
        #: ``messages_dropped`` so fault experiments can report network
        #: loss and fault-induced kills independently.
        self.messages_severed = 0
        #: Sends refused before transmission (down peer / severed link).
        self.messages_blocked = 0
        #: Workload updates discarded because their node was down.
        self.updates_skipped = 0
        self._factory = factory
        self._bottom = bottom
        #: Nodes currently crashed: they neither tick nor receive.
        self.down: set = set()
        #: Active partition as disjoint node groups (``None`` = healthy).
        self._groups: Optional[Tuple[FrozenSet[int], ...]] = None

    # ------------------------------------------------------------------
    # Driving the simulation.
    # ------------------------------------------------------------------

    def apply_update(self, node: int, delta_mutator: DeltaMutator) -> Lattice:
        """Run one workload update on ``node``, with cost accounting."""
        synchronizer = self.nodes[node]
        started = _time.perf_counter()
        delta = synchronizer.local_update(delta_mutator)
        elapsed = _time.perf_counter() - started
        self.metrics.record_processing(node, delta.size_units(), elapsed)
        return delta

    def run_round(
        self,
        updates: Optional[Callable[[int], Sequence[DeltaMutator]]] = None,
    ) -> None:
        """Run one full round: updates, sync tick, delivery, sampling.

        ``updates`` maps a node index to the δ-mutators it applies this
        round (``None`` for a synchronization-only drain round).
        """
        base = self._round * self.config.sync_interval_ms
        stagger = 1e-3

        if updates is not None:
            for node in range(self.topology.n):
                mutators = updates(node)
                if not mutators:
                    continue
                self.queue.schedule(
                    base + node * stagger,
                    self._update_action,
                    payload=(node, tuple(mutators)),
                )

        sync_at = base + self.config.sync_interval_ms / 2
        for node in range(self.topology.n):
            self.queue.schedule(sync_at + node * stagger, self._sync_action, payload=node)

        end_of_round = base + self.config.sync_interval_ms - stagger
        self.queue.run(until=end_of_round)
        self._sample_memory(end_of_round)
        self._round += 1

    def run_rounds(
        self,
        rounds: int,
        updates_for: Callable[[int, int], Sequence[DeltaMutator]],
    ) -> None:
        """Run ``rounds`` update rounds; ``updates_for(round, node)``."""
        for round_index in range(rounds):
            self.run_round(lambda node, r=round_index: updates_for(r, node))

    def drain(self) -> int:
        """Run sync-only rounds until global convergence; return count.

        Raises ``RuntimeError`` if convergence is not reached within the
        configured cap — that would indicate a protocol bug, and hiding
        it would corrupt every downstream measurement.
        """
        for extra in range(self.config.max_drain_rounds):
            if self.converged():
                return extra
            self.run_round(updates=None)
        if not self.converged():
            raise RuntimeError(
                f"no convergence after {self.config.max_drain_rounds} drain rounds "
                f"({type(self.nodes[0]).__name__})"
            )
        return self.config.max_drain_rounds

    def converged(self) -> bool:
        """True when every live replica holds the same lattice state."""
        live = [node for i, node in enumerate(self.nodes) if i not in self.down]
        if len(live) < 2:
            return True
        first = live[0].state
        return all(node.state == first for node in live[1:])

    # ------------------------------------------------------------------
    # Fault injection: crashes and network partitions.
    # ------------------------------------------------------------------

    def crash(self, node: int, lose_state: bool = False) -> None:
        """Take ``node`` down: it stops ticking, sending, and receiving.

        With ``lose_state`` the replica also loses its durable state and
        comes back as a fresh bottom replica (disk loss); otherwise it
        resumes from the state it crashed with (process restart).
        """
        if not 0 <= node < self.topology.n:
            raise ValueError(f"no such node {node}")
        self.down.add(node)
        if lose_state:
            self.nodes[node] = self._factory(
                node,
                self.topology.neighbors(node),
                self._bottom,
                self.topology.n,
                self.config.size_model,
            )

    def recover(self, node: int) -> None:
        """Bring a crashed node back into the cluster.

        Down nodes do not tick, so whether the replica kept its state
        or was rebuilt from bottom, its internal clocks lag the cluster
        by the whole downtime.  Realigning here keeps periodic
        machinery (anti-entropy repair phases, coldness thresholds)
        synchronized with the replicas that kept running.
        """
        self.down.discard(node)
        restore = getattr(self.nodes[node], "restore_clock", None)
        if restore is not None:
            restore(self._round)

    def partition(self, *groups: Iterable[int]) -> None:
        """Sever every link between nodes of different ``groups``.

        Nodes not named in any group form one implicit extra group, so
        ``partition([0, 1])`` isolates nodes 0-1 from everyone else.
        """
        explicit = [frozenset(group) for group in groups]
        seen: set = set()
        for group in explicit:
            out_of_range = [n for n in group if not 0 <= n < self.topology.n]
            if out_of_range:
                raise ValueError(f"no such nodes {sorted(out_of_range)}")
            if group & seen:
                raise ValueError("partition groups must be disjoint")
            seen |= group
        rest = frozenset(range(self.topology.n)) - seen
        if rest:
            explicit.append(rest)
        self._groups = tuple(explicit)

    def heal(self) -> None:
        """Restore full connectivity (crashed nodes stay down)."""
        self._groups = None

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def link_up(self, src: int, dst: int) -> bool:
        """True when a message can currently travel ``src → dst``."""
        if src in self.down or dst in self.down:
            return False
        if self._groups is None:
            return True
        for group in self._groups:
            if src in group:
                return dst in group
        return True

    @property
    def rounds_run(self) -> int:
        return self._round

    @property
    def now(self) -> float:
        return self.queue.now

    # ------------------------------------------------------------------
    # Event actions.
    # ------------------------------------------------------------------

    def _update_action(self, event) -> None:
        node, mutators = event.payload
        if node in self.down:
            # The client's replica is gone; its scheduled operations
            # are lost, and visibly so.
            self.updates_skipped += len(mutators)
            return
        for mutator in mutators:
            self.apply_update(node, mutator)

    def _sync_action(self, event) -> None:
        node: int = event.payload
        if node in self.down:
            return
        synchronizer = self.nodes[node]
        started = _time.perf_counter()
        sends = synchronizer.sync_messages()
        elapsed = _time.perf_counter() - started
        produced = sum(send.message.payload_units for send in sends)
        self.metrics.record_processing(node, produced, elapsed)
        self._dispatch(node, sends)

    def _deliver_action(self, event) -> None:
        src, dst, message = event.payload
        if not self.link_up(src, dst):
            # The destination crashed — or the link was severed — while
            # the message was in flight.
            self.messages_severed += 1
            return
        synchronizer = self.nodes[dst]
        started = _time.perf_counter()
        replies = synchronizer.handle_message(src, message)
        elapsed = _time.perf_counter() - started
        self.metrics.record_processing(dst, message.payload_units, elapsed)
        self._dispatch(dst, replies)

    def _dispatch(self, src: int, sends: Sequence[Send]) -> None:
        """Record and schedule delivery of outbound messages."""
        for send in sends:
            if send.dst not in self.nodes[src].neighbors:
                raise ValueError(
                    f"node {src} attempted to message non-neighbour {send.dst}"
                )
            if not self.link_up(src, send.dst):
                # Connection refused: nothing crossed the wire, so the
                # send is not recorded as transmission.  The sender does
                # learn the peer is unreachable — the signal stores feed
                # into divergence-driven repair scheduling.
                self.messages_blocked += 1
                note_blocked = getattr(self.nodes[src], "note_send_blocked", None)
                if note_blocked is not None:
                    note_blocked(send.dst)
                continue
            self.metrics.record_message(
                MessageRecord(
                    time=self.queue.now,
                    src=src,
                    dst=send.dst,
                    kind=send.message.kind,
                    payload_units=send.message.payload_units,
                    payload_bytes=send.message.payload_bytes,
                    metadata_bytes=send.message.metadata_bytes,
                    metadata_units=send.message.metadata_units,
                )
            )
            if (
                self.config.loss_rate > 0.0
                and self._loss_rng.random() < self.config.loss_rate
            ):
                # The message was transmitted (and counted) but the
                # network ate it.
                self.messages_dropped += 1
                continue
            self.queue.schedule_in(
                self.config.latency_ms,
                self._deliver_action,
                payload=(src, send.dst, send.message),
            )

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------

    def _sample_memory(self, at: float) -> None:
        for index, node in enumerate(self.nodes):
            if index in self.down:
                continue
            self.metrics.record_memory(
                MemorySample(
                    time=at,
                    node=index,
                    state_units=node.state_units(),
                    buffer_units=node.buffer_units(),
                    state_bytes=node.state_bytes(),
                    buffer_bytes=node.buffer_bytes(),
                    metadata_bytes=node.metadata_bytes(),
                    metadata_units=node.metadata_units(),
                )
            )
