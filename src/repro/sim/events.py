"""Deterministic discrete-event queue.

A minimal priority queue of timestamped events with a monotone sequence
tiebreaker, so that two events scheduled for the same instant always
fire in scheduling order.  Determinism matters: every experiment in the
benchmark suite must produce identical traces across runs and machines,
so that the paper's figures are exactly regenerable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled event: fires at ``time`` with a stable tiebreak order.

    Attributes:
        time: Simulation timestamp in milliseconds.
        seq: Scheduling sequence number; breaks ties deterministically.
        action: Callback invoked when the event fires.
        payload: Optional data passed to the callback.
    """

    time: float
    seq: int
    action: Callable[["Event"], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """A heap-based future event list with deterministic ordering.

    >>> q = EventQueue()
    >>> fired = []
    >>> _ = q.schedule(5.0, lambda e: fired.append("b"))
    >>> _ = q.schedule(1.0, lambda e: fired.append("a"))
    >>> q.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, action: Callable[[Event], None], payload: Any = None) -> Event:
        """Schedule ``action`` to fire at absolute ``time``.

        Scheduling in the past is rejected — it would silently reorder
        causality inside an experiment.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before current time {self._now}")
        event = Event(time=time, seq=next(self._counter), action=action, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, action: Callable[[Event], None], payload: Any = None) -> Event:
        """Schedule ``action`` to fire ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, action, payload)

    def pop(self) -> Optional[Event]:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self.pop()
        if event is None:
            return False
        event.action(event)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Fire events until exhaustion, a time horizon, or an event cap.

        Returns the number of events fired.  ``until`` is inclusive: an
        event at exactly ``until`` still fires.
        """
        fired = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        return fired

    def drain_iter(self) -> Iterator[Event]:
        """Yield events in firing order without invoking their actions."""
        while self._heap:
            event = self.pop()
            if event is not None:
                yield event
