"""The rule engine: modules, projects, suppressions, and the runner.

A lint pass parses every target file once into a :class:`Module`
(source, AST, and the ``# repro: lint-ok[...]`` suppressions found by
the tokenizer), bundles them into a :class:`Project` so cross-file
rules can see registries and their use sites together, runs every
:class:`Rule` over the project, and then applies suppressions.  The
engine itself contributes two rule ids: ``parse-error`` for files the
compiler rejects and ``suppression`` for malformed, unknown-rule, or
unused ``lint-ok`` comments — a suppression that stops matching
anything is stale armour and gets reported like any other finding.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Matches ``repro: lint-ok[rule-a, rule-b] why this is sanctioned``
#: after a ``#``.  The reason is mandatory: a suppression without one
#: is itself a finding, so every sanctioned site documents itself.
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)

#: Rule ids emitted by the engine itself (always valid suppression
#: targets even though they are not in the rule set).
ENGINE_RULE_IDS = ("parse-error", "suppression")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``lint-ok`` comment.

    ``covers`` is the set of physical lines the suppression shields: the
    comment's own line, plus — when the comment stands alone — the next
    line, so multi-line calls can carry the pragma just above them.
    """

    path: str
    line: int
    rules: Tuple[str, ...]
    reason: str
    covers: Tuple[int, ...]

    def shields(
        self,
        finding: Finding,
        alias_of: Optional[Dict[str, str]] = None,
    ) -> bool:
        rules = self.rules
        if alias_of:
            rules = tuple(alias_of.get(rule, rule) for rule in rules)
        return finding.line in self.covers and finding.rule in rules


@dataclass
class Module:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def line_text(self, line: int) -> str:
        lines = self.lines
        return lines[line - 1] if 1 <= line <= len(lines) else ""


@dataclass
class Project:
    """Every module of one lint pass, plus files that failed to parse."""

    modules: List[Module]
    parse_failures: List[Finding] = field(default_factory=list)
    #: Scratch space for the project-analysis phase: expensive
    #: whole-project structures (the call graph) are built once per
    #: pass and shared by every interprocedural rule.  Keyed by
    #: analysis name; see :func:`repro.lint.callgraph.project_analysis`.
    _analysis_cache: Dict[str, object] = field(default_factory=dict)

    def module_named(self, suffix: str) -> Optional[Module]:
        """The module whose normalized path ends with ``suffix``."""
        normalized = suffix.replace(os.sep, "/")
        for module in self.modules:
            if module.path.replace(os.sep, "/").endswith(normalized):
                return module
        return None

    def assignments(self, name: str) -> Iterator[Tuple[Module, ast.Assign]]:
        """Module-level ``name = ...`` assignments across the project."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.Assign) and any(
                    isinstance(target, ast.Name) and target.id == name
                    for target in node.targets
                ):
                    yield module, node


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id`` (the suppression/baseline key), ``severity``,
    and a one-line ``summary`` for ``lint --list-rules``, and implement
    :meth:`check` over the whole project — single-file rules just loop
    ``project.modules``.  ``aliases`` are retired ids this rule
    subsumes: a ``lint-ok`` naming an alias shields the canonical
    rule's findings, so demoting a rule never invalidates existing
    suppressions.
    """

    id: str = ""
    severity: str = "error"
    summary: str = ""
    aliases: Tuple[str, ...] = ()

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


@dataclass
class LintResult:
    """What one pass produced, before baseline filtering.

    ``findings`` are the live ones; ``suppressed`` kept for reporting
    (the text reporter prints counts, the JSON reporter the full list).
    """

    findings: List[Finding]
    suppressed: List[Finding]
    files: int

    @property
    def clean(self) -> bool:
        return not self.findings


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    """Extract ``lint-ok`` comments with the tokenizer.

    Tokenizing (rather than regex over raw lines) keeps ``#`` inside
    string literals from being misread as comments.  Unreadable files
    are the parser's problem, not ours: tokenizer errors yield no
    suppressions and the compile step reports the file.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        rules = tuple(
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        standalone = token.line[: token.start[1]].strip() == ""
        covers = (line, line + 1) if standalone else (line,)
        suppressions.append(
            Suppression(
                path=path,
                line=line,
                rules=rules,
                reason=match.group("reason").strip(),
                covers=covers,
            )
        )
    return suppressions


def load_module(path: str, source: Optional[str] = None) -> Module:
    """Parse one file; raises ``SyntaxError`` on unparseable source."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    return Module(
        path=path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(path, source),
    )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif path.endswith(".py") or os.path.isfile(path):
            found.append(path)
        else:
            raise FileNotFoundError(f"lint target {path!r} does not exist")
    # De-duplicate while preserving order (a file passed twice, or both
    # directly and via its directory, is linted once).
    seen: Dict[str, None] = {}
    for path in found:
        seen.setdefault(os.path.normpath(path), None)
    return list(seen)


def load_project(paths: Sequence[str]) -> Project:
    modules: List[Module] = []
    failures: List[Finding] = []
    for path in discover_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
        except (OSError, UnicodeDecodeError) as exc:
            failures.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=1,
                    col=0,
                    message=f"file cannot be read: {exc}",
                )
            )
    return Project(modules=modules, parse_failures=failures)


def _suppression_findings(
    project: Project,
    known_rules: Iterable[str],
    raw_findings: Sequence[Finding],
    alias_of: Optional[Dict[str, str]] = None,
) -> List[Finding]:
    """The engine's own rule: every ``lint-ok`` must be well-formed
    (non-empty rule list, known ids, a stated reason) and must still
    shield at least one finding — otherwise it is stale and reported.
    Rule aliases are valid ids (they canonicalize before matching);
    anything else — including a typoed alias — is unknown.
    """
    known = set(known_rules) | set(ENGINE_RULE_IDS) | set(alias_of or ())
    findings: List[Finding] = []
    for module in project.modules:
        for suppression in module.suppressions:
            problems: List[str] = []
            if not suppression.rules:
                problems.append("names no rule ids")
            unknown = [r for r in suppression.rules if r not in known]
            if unknown:
                problems.append(f"names unknown rule(s) {', '.join(unknown)}")
            if not suppression.reason:
                problems.append("carries no reason")
            if problems:
                findings.append(
                    Finding(
                        rule="suppression",
                        path=module.path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "malformed lint-ok: " + "; ".join(problems) +
                            " (syntax: # repro: lint-ok[rule-id] reason)"
                        ),
                    )
                )
                continue
            if not any(
                suppression.shields(f, alias_of) for f in raw_findings
            ):
                findings.append(
                    Finding(
                        rule="suppression",
                        path=module.path,
                        line=suppression.line,
                        col=0,
                        message=(
                            "unused lint-ok["
                            + ", ".join(suppression.rules)
                            + "]: no finding on the covered line(s); "
                            "delete the stale suppression"
                        ),
                        severity="warning",
                    )
                )
    return findings


def run_rules(project: Project, rules: Sequence[Rule]) -> LintResult:
    """Run every rule, then apply suppressions.

    Suppressions shield rule findings; ``suppression`` findings (stale
    or malformed pragmas) and ``parse-error`` findings cannot be
    suppressed in place — they indicate the armour itself is broken —
    but both can be baselined by the caller.
    """
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project))
    alias_of = {
        alias: rule.id for rule in rules for alias in rule.aliases
    }
    suppressions = [
        s for module in project.modules for s in module.suppressions
    ]
    live: List[Finding] = []
    shielded: List[Finding] = []
    for finding in raw:
        if any(
            s.path == finding.path and s.shields(finding, alias_of)
            for s in suppressions
        ):
            shielded.append(finding)
        else:
            live.append(finding)
    live.extend(
        _suppression_findings(
            project, (r.id for r in rules), raw, alias_of
        )
    )
    live.extend(project.parse_failures)
    live.sort(key=Finding.sort_key)
    shielded.sort(key=Finding.sort_key)
    return LintResult(
        findings=live,
        suppressed=shielded,
        files=len(project.modules) + len(project.parse_failures),
    )


def lint_paths(paths: Sequence[str], rules: Sequence[Rule]) -> LintResult:
    """Convenience: discover, parse, and check in one call."""
    return run_rules(load_project(paths), rules)
