"""The rule catalogue.

Rules are instantiated fresh per pass (they are stateless, but the
list is cheap and a future configurable rule may not be).  The ids
here — plus the engine's own ``parse-error`` and ``suppression``, plus
any :attr:`~repro.lint.engine.Rule.aliases` — are the valid targets of
``# repro: lint-ok[rule-id] reason`` comments and the keys of baseline
entries.

Two profiles exist: ``full`` (the CI gate on ``src``) and ``relaxed``
for ``tests/`` and ``benchmarks/`` — there only seeded-RNG discipline
and broad-except hygiene apply, because test harnesses legitimately
touch wall clocks, spawn subprocesses from sync code, and poke frozen
objects, but an unseeded ``random.Random()`` in a test still silently
breaks every seed-reproducibility claim the suite makes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.determinism import GlobalRngRule, WallClockRule
from repro.lint.rules.frozen import FrozenMutationRule
from repro.lint.rules.hygiene import BroadExceptRule
from repro.lint.rules.interproc import (
    DetTaintRule,
    ResourceTypestateRule,
    TransitiveBlockingRule,
)
from repro.lint.rules.pairing import TracePairingRule
from repro.lint.rules.registries import (
    EventRegistryRule,
    VerbRegistryRule,
    WireRegistryRule,
)

RULE_CLASSES = (
    GlobalRngRule,
    WallClockRule,
    DetTaintRule,
    WireRegistryRule,
    VerbRegistryRule,
    EventRegistryRule,
    TracePairingRule,
    FrozenMutationRule,
    TransitiveBlockingRule,
    ResourceTypestateRule,
    BroadExceptRule,
)

#: Rule sets by profile name.  ``relaxed`` gates tests/benchmarks.
PROFILES = {
    "full": RULE_CLASSES,
    "relaxed": (GlobalRngRule, BroadExceptRule),
}


def ALL_RULES() -> List[Rule]:
    """A fresh instance of every rule, in catalogue order."""
    return [rule_class() for rule_class in RULE_CLASSES]


def rules_for_profile(profile: str = "full") -> List[Rule]:
    """Fresh rule instances for one profile; raises on unknown names."""
    try:
        classes = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown lint profile {profile!r}; "
            f"choose from {', '.join(sorted(PROFILES))}"
        ) from None
    return [rule_class() for rule_class in classes]


def rule_aliases() -> Dict[str, str]:
    """retired id → canonical id, across the full catalogue."""
    return {
        alias: rule_class.id
        for rule_class in RULE_CLASSES
        for alias in rule_class.aliases
    }


def rule_catalogue() -> Dict[str, str]:
    """rule id → one-line summary, for ``lint --list-rules``."""
    return {rule.id: rule.summary for rule in ALL_RULES()}
