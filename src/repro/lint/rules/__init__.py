"""The rule catalogue.

Rules are instantiated fresh per pass (they are stateless, but the
list is cheap and a future configurable rule may not be).  The ids
here — plus the engine's own ``parse-error`` and ``suppression`` — are
the valid targets of ``# repro: lint-ok[rule-id] reason`` comments and
the keys of baseline entries.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.determinism import GlobalRngRule, WallClockRule
from repro.lint.rules.frozen import FrozenMutationRule
from repro.lint.rules.hygiene import AsyncBlockingRule, BroadExceptRule
from repro.lint.rules.pairing import TracePairingRule
from repro.lint.rules.registries import (
    EventRegistryRule,
    VerbRegistryRule,
    WireRegistryRule,
)

RULE_CLASSES = (
    GlobalRngRule,
    WallClockRule,
    WireRegistryRule,
    VerbRegistryRule,
    EventRegistryRule,
    TracePairingRule,
    FrozenMutationRule,
    AsyncBlockingRule,
    BroadExceptRule,
)


def ALL_RULES() -> List[Rule]:
    """A fresh instance of every rule, in catalogue order."""
    return [rule_class() for rule_class in RULE_CLASSES]


def rule_catalogue() -> Dict[str, str]:
    """rule id → one-line summary, for ``lint --list-rules``."""
    return {rule.id: rule.summary for rule in ALL_RULES()}
