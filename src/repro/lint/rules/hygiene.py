"""Exception hygiene, plus the blocking-call surface shared with the
interprocedural rules.

The direct-call ``async-blocking`` rule PR 9 shipped lives on only as
the :data:`BLOCKING_CALLS`/:data:`BLOCKING_CALLEE_NAMES` tables below
and as an *alias* of
:class:`repro.lint.rules.interproc.TransitiveBlockingRule`, which
subsumes it: the blocking effect now propagates through the call
graph, so wrapping ``flock`` in a helper no longer hides it from the
gate.  Suppressions written against ``async-blocking`` keep working
through the alias.

``broad-except``
    ``except Exception`` (or broader) that silently swallows is how a
    real fault becomes a multi-day hunt: the system keeps running with
    corrupted assumptions and zero evidence.  Broad handlers are
    allowed only when they visibly do something with the failure —
    re-raise, bind and use the exception object, or push a note into
    the trace/metrics/warnings machinery.  Anything else needs a
    narrowed type or a reasoned suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, Project, Rule

#: Known-blocking callables by qualified name.
BLOCKING_CALLS = frozenset(
    (
        "time.sleep",
        "fcntl.flock",
        "fcntl.lockf",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    )
)

#: Blocking helpers/methods matched by bare callee name: the repo's own
#: synchronous frame helpers, and socket methods no asyncio stream
#: object shares a name with.
BLOCKING_CALLEE_NAMES = frozenset(("send_frame", "recv_frame", "sendall"))

#: Exception types too broad to swallow silently.
BROAD_EXCEPTIONS = frozenset(("Exception", "BaseException"))

#: Handler calls that count as "the failure was recorded somewhere a
#: human or a metric will see it".
REPORTING_ATTRS = frozenset(("emit", "inc", "warn", "warning", "exception"))


def _is_broad(handler_type: Optional[ast.expr]) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in BROAD_EXCEPTIONS
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


class BroadExceptRule(Rule):
    id = "broad-except"
    summary = (
        "broad except handlers must re-raise, use the bound exception, "
        "or record via trace/metrics/warnings"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_broad(node.type):
                    continue
                if self._handled(node):
                    continue
                label = (
                    ast.unparse(node.type)
                    if node.type is not None
                    else "bare except"
                )
                yield self.finding(
                    module,
                    node,
                    f"except {label} swallows the failure silently: "
                    "re-raise, narrow to the expected exceptions, or "
                    "record it (trace emit / metrics inc / warnings)",
                )

    def _handled(self, handler: ast.ExceptHandler) -> bool:
        for node in handler.body:
            for child in ast.walk(node):
                if isinstance(child, ast.Raise):
                    return True
                if (
                    handler.name is not None
                    and isinstance(child, ast.Name)
                    and child.id == handler.name
                ):
                    return True
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in REPORTING_ATTRS
                ):
                    return True
        return False
