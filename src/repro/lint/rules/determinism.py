"""Determinism rules: seeded randomness everywhere, pure clocks in core.

The experiment fingerprints (``benchmarks/fingerprint_sim_records.py``)
assert that whole simulations are byte-identical functions of their
seeds.  One module-level ``random.random()`` or ``time.time()`` inside
the deterministic core silently breaks that, and the failure surfaces
days later as an unexplainable fingerprint drift.  Two rules enforce
the discipline:

``det-rng``
    Repo-wide: never the process-global RNG (``random.random`` and
    friends mutate interpreter-wide hidden state; two call sites that
    *each* look deterministic interleave nondeterministically), and
    never an unseeded ``random.Random()``.  Every stream must be
    ``random.Random(seed)`` derived from configuration.

``det-clock``
    Inside the deterministic core only (lattices, causal machinery,
    synchronizers, codec, kv store, simulator, WAL, and the sim-side
    transport seam): no wall clocks, no environment reads, no OS
    entropy.  The serving stack, benchmarks, and hot-path timers are
    real-time by design and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, Module, Project, Rule
from repro.lint.rules.common import import_aliases, qualified_name

#: Module-level functions of :mod:`random` that draw from the shared
#: process-global stream.
GLOBAL_RNG_CALLS = frozenset(
    f"random.{name}"
    for name in (
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
    )
)

#: Wall clocks, entropy, and environment reads banned from the core.
IMPURE_CALLS = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getenv",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    )
)

#: Path fragments that place a module inside the deterministic core.
#: ``net/`` is split: the sim/clock/freerun/transport seam must stay
#: pure (the round clock *is* simulated time), while ``net/tcp.py``
#: and ``net/runtime.py`` legitimately touch real time (socket
#: deadlines, hot-path wall timers).
DETERMINISTIC_CORE = (
    "repro/lattice/",
    "repro/causal/",
    "repro/sync/",
    "repro/kv/",
    "repro/sim/",
    "repro/wal/",
    "repro/codec.py",
    "repro/net/sim.py",
    "repro/net/transport.py",
    "repro/net/clock.py",
    "repro/net/freerun.py",
)


def in_deterministic_core(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in DETERMINISTIC_CORE)


class GlobalRngRule(Rule):
    id = "det-rng"
    summary = (
        "no process-global random.* calls or unseeded random.Random() "
        "anywhere; every stream is random.Random(seed)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            aliases = import_aliases(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = qualified_name(node.func, aliases)
                if name in GLOBAL_RNG_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() draws from the process-global RNG; "
                        "derive a stream with random.Random(seed) so "
                        "replays are pure functions of configuration",
                    )
                elif (
                    name == "random.Random"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed falls back to OS "
                        "entropy; pass a seed derived from configuration",
                    )


class WallClockRule(Rule):
    id = "det-clock"
    summary = (
        "no wall clocks, OS entropy, or environment reads inside the "
        "deterministic core (lattice/causal/sync/kv/sim/wal/codec and "
        "the sim transport seam)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not in_deterministic_core(module.path):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, aliases)
                if name in IMPURE_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() inside the deterministic core: sim "
                        "fingerprints must be pure functions of seeds — "
                        "inject the value through config or a clock seam",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr == "environ"
                    and qualified_name(node, aliases) == "os.environ"
                ):
                    yield self.finding(
                        module,
                        node,
                        "os.environ read inside the deterministic core: "
                        "environment state is invisible to seeds; thread "
                        "the setting through configuration",
                    )
