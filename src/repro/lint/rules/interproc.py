"""Interprocedural rules: blocking reachability, determinism taint,
and resource typestate.

PR 9's lexical rules judged one line at a time, so one helper function
was enough to hide each violation class this module closes:

``async-blocking-transitive``
    The blocking effect of ``time.sleep``/``flock``/``send_frame``/
    ``sendall``/subprocess propagates through the call graph
    (:mod:`repro.lint.callgraph`): any helper *reachable* from an
    ``async def`` through resolved call edges is caught, not just
    direct calls.  An async callee's effect travels only through
    ``await`` sites (calling an async function merely creates the
    coroutine), and findings report the frontier — the async function
    whose call site reaches a blocking *sync* chain — with the chain
    spelled out.  The rule subsumes PR 9's ``async-blocking`` (now an
    alias, so existing suppressions keep working).

``det-taint``
    Values sourced from wall clocks, OS entropy, or ``os.environ``
    anywhere in the repo must not flow into the deterministic core
    (``lattice``/``causal``/``sync``/``kv``/``sim``/``wal``/``codec``
    and the sim transport seam).  Function *returns* are summarized to
    a fixpoint over the SCC condensation, so ``helper() →
    time.time()`` taints every caller of ``helper``; sinks are (a) a
    tainted argument at a call resolving into the core, (b) a core
    function calling a tainted-return helper, and (c) a tainted value
    stored onto an attribute of a core-typed object.  Local taint is
    flow-insensitive (a variable once tainted stays tainted), which
    over-approximates — the safe direction for this property.

``resource-typestate``
    CFG-path pairing of lifecycles: ``fence``/``unfence``, ``flock``
    acquire/release, ``open``/``close`` (files, sockets, trace sinks,
    tracers).  A finding means the function *does* release the
    resource on some path but a CFG path — usually an exception edge —
    escapes with it still held.  Functions that never release
    (ownership transfer: handles stored on ``self``, returned, or
    handed to a constructor) are deliberately out of scope, as are
    ``with``-managed and loop-carried acquires.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, Module, Project, Rule
from repro.lint.callgraph import (
    CallGraph,
    CallSite,
    FunctionDecl,
    _direct_statements,
    project_analysis,
    propagate_effect,
)
from repro.lint.flow import CfgNode, build_cfg, solve_forward
from repro.lint.rules.common import FunctionNode, import_aliases, qualified_name
from repro.lint.rules.determinism import IMPURE_CALLS, in_deterministic_core
from repro.lint.rules.hygiene import BLOCKING_CALLS, BLOCKING_CALLEE_NAMES


def _modules_by_path(project: Project) -> Dict[str, Module]:
    return {module.path: module for module in project.modules}


def _node_finding(
    rule: Rule, path: str, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule=rule.id,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        severity=rule.severity,
    )


# ---------------------------------------------------------------------
# async-blocking-transitive
# ---------------------------------------------------------------------


def _blocking_label(site: CallSite) -> Optional[str]:
    """The leaf label if this call site blocks directly, else None."""
    if site.external in BLOCKING_CALLS:
        return site.external
    if site.callee_name in BLOCKING_CALLEE_NAMES:
        return site.callee_name
    return None


def _blocking_edge_admits(
    caller: FunctionDecl,
    site: CallSite,
    target: Optional[FunctionDecl],
) -> bool:
    # Calling an async function without awaiting it only builds the
    # coroutine — its body (and its blocking call) does not run here.
    if target is not None and target.is_async:
        return site.awaited
    return True


class TransitiveBlockingRule(Rule):
    id = "async-blocking-transitive"
    aliases = ("async-blocking",)
    summary = (
        "no blocking calls (time.sleep, flock, send_frame/recv_frame, "
        "sendall, subprocess) inside async def, directly or through "
        "any reachable helper (alias: async-blocking)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project_analysis(project)
        modules = _modules_by_path(project)
        # Seeds: functions whose own body blocks; remember the leaf.
        seeds: Dict[str, str] = {}
        for fn_id in sorted(graph.calls):
            for site in graph.calls[fn_id]:
                label = _blocking_label(site)
                if label is not None:
                    seeds[fn_id] = label
                    break
        effected, witness = propagate_effect(
            graph, set(seeds), edge_admits=_blocking_edge_admits
        )
        for fn_id in sorted(graph.functions):
            fn = graph.functions[fn_id]
            if not fn.is_async or fn.module_path not in modules:
                continue
            for site in graph.calls.get(fn_id, ()):
                direct = _blocking_label(site)
                if direct is not None:
                    yield _node_finding(
                        self,
                        fn.module_path,
                        site.node,
                        f"blocking call {direct}() inside async def "
                        f"{fn.name}: it stalls the event loop and every "
                        "peer connection with it; use the asyncio "
                        "equivalent or move it off-loop",
                    )
                    continue
                # Frontier reporting: a resolved *sync* callee that
                # blocks (transitively).  Blocking async callees are
                # reported at their own frontier sites instead.
                for target in site.targets:
                    callee = graph.functions[target]
                    if callee.is_async or target not in effected:
                        continue
                    chain = self._chain(graph, target, seeds, witness)
                    yield _node_finding(
                        self,
                        fn.module_path,
                        site.node,
                        f"async def {fn.name} reaches a blocking call "
                        f"through {chain}: the event loop stalls for "
                        "the whole chain; use the asyncio equivalent "
                        "or move the blocking step off-loop",
                    )
                    break

    @staticmethod
    def _chain(
        graph: CallGraph,
        start: str,
        seeds: Dict[str, str],
        witness: Dict[str, Tuple[CallSite, str]],
    ) -> str:
        parts = [graph.functions[start].name + "()"]
        current = start
        for _ in range(32):  # bounded: witness chains are acyclic
            if current in seeds:
                parts.append(seeds[current] + "()")
                break
            step = witness.get(current)
            if step is None:
                break
            _, current = step
            parts.append(graph.functions[current].name + "()")
        return " -> ".join(parts)


# ---------------------------------------------------------------------
# det-taint
# ---------------------------------------------------------------------

#: Builtins that pass a tainted operand through unchanged in substance
#: — the usual laundering wrappers around a clock read.
_TRANSPARENT_CALLS = frozenset(
    ("int", "float", "str", "bytes", "round", "abs", "min", "max", "divmod")
)

#: Expression nodes whose taint is the union of their children's.
_TAINT_THROUGH = (
    ast.BinOp,
    ast.UnaryOp,
    ast.IfExp,
    ast.Tuple,
    ast.List,
    ast.Set,
    ast.Dict,
    ast.Subscript,
    ast.Starred,
    ast.Await,
    ast.FormattedValue,
    ast.JoinedStr,
)


class _FunctionTaint:
    """Flow-insensitive local taint for one function."""

    def __init__(self, graph: CallGraph, fn: FunctionDecl) -> None:
        self.graph = graph
        self.fn = fn
        self.resolver = graph.resolver_for(fn.id)
        self.aliases = self.resolver.summary.aliases
        self.sites = {
            id(site.node): site for site in graph.calls.get(fn.id, ())
        }
        self.tainted_vars: Dict[str, str] = {}

    def expr_taint(
        self, expr: ast.expr, tainted_returns: Dict[str, str]
    ) -> Optional[str]:
        """The source label if ``expr`` may carry impure data."""
        if isinstance(expr, ast.Call):
            site = self.sites.get(id(expr))
            if site is not None:
                if site.external in IMPURE_CALLS:
                    return site.external
                for target in site.targets:
                    if target in tainted_returns:
                        return tainted_returns[target]
            callee = expr.func
            if (
                isinstance(callee, ast.Name)
                and callee.id in _TRANSPARENT_CALLS
            ):
                for arg in list(expr.args) + [k.value for k in expr.keywords]:
                    reason = self.expr_taint(arg, tainted_returns)
                    if reason is not None:
                        return reason
            if isinstance(callee, ast.Attribute):
                # A method call on a tainted object yields tainted
                # data (os.environ.get, tainted_dt.timestamp(), ...).
                return self.expr_taint(callee.value, tainted_returns)
            return None
        if isinstance(expr, ast.Attribute):
            if qualified_name(expr, self.aliases) == "os.environ":
                return "os.environ"
            receiver = self.resolver.type_of(expr.value)
            if receiver is not None and self.graph.linker is not None:
                for target in self.graph.linker.property_targets(
                    receiver, expr.attr
                ):
                    if target in tainted_returns:
                        return tainted_returns[target]
            return self.expr_taint(expr.value, tainted_returns)
        if isinstance(expr, ast.Name):
            return self.tainted_vars.get(expr.id)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_taint(expr.value, tainted_returns)
        if isinstance(expr, _TAINT_THROUGH):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    reason = self.expr_taint(child, tainted_returns)
                    if reason is not None:
                        return reason
        return None

    def solve_locals(self, tainted_returns: Dict[str, str]) -> None:
        """Fixpoint the tainted-variable set (flow-insensitive)."""
        changed = True
        while changed:
            changed = False
            for node in _direct_statements(self.fn.node):
                targets: List[str] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    value = node.value
                    targets = [
                        t.id
                        for t in node.targets
                        if isinstance(t, ast.Name)
                    ]
                elif isinstance(node, ast.AnnAssign) and node.value:
                    value = node.value
                    if isinstance(node.target, ast.Name):
                        targets = [node.target.id]
                elif isinstance(node, ast.AugAssign):
                    value = node.value
                    if isinstance(node.target, ast.Name):
                        targets = [node.target.id]
                elif isinstance(node, ast.NamedExpr):
                    value = node.value
                    if isinstance(node.target, ast.Name):
                        targets = [node.target.id]
                if value is None or not targets:
                    continue
                reason = self.expr_taint(value, tainted_returns)
                if reason is None:
                    continue
                for name in targets:
                    if name not in self.tainted_vars:
                        self.tainted_vars[name] = reason
                        changed = True

    def return_taint(
        self, tainted_returns: Dict[str, str]
    ) -> Optional[str]:
        for node in _direct_statements(self.fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                reason = self.expr_taint(node.value, tainted_returns)
                if reason is not None:
                    return reason
        return None


class DetTaintRule(Rule):
    id = "det-taint"
    summary = (
        "wall-clock / OS-entropy / os.environ values must not flow "
        "(via returns, arguments, or attribute stores) into the "
        "deterministic core"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project_analysis(project)
        modules = _modules_by_path(project)
        analyzers = {
            fn_id: _FunctionTaint(graph, graph.functions[fn_id])
            for fn_id in graph.calls
        }
        #: fn id → label of the impure source its return derives from.
        tainted_returns: Dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            # SCCs arrive callees-first, so taint flows caller-ward in
            # one sweep; the outer loop closes mutual recursion.
            for scc in graph.sccs:
                for fn_id in scc:
                    analyzer = analyzers[fn_id]
                    analyzer.solve_locals(tainted_returns)
                    if fn_id in tainted_returns:
                        continue
                    reason = analyzer.return_taint(tainted_returns)
                    if reason is not None:
                        tainted_returns[fn_id] = reason
                        changed = True
        for fn_id in sorted(graph.calls):
            fn = graph.functions[fn_id]
            if fn.module_path not in modules:
                continue
            analyzer = analyzers[fn_id]
            caller_in_core = in_deterministic_core(fn.module_path)
            for site in graph.calls[fn_id]:
                core_targets = [
                    t
                    for t in site.targets
                    if in_deterministic_core(
                        graph.functions[t].module_path
                    )
                ]
                if core_targets and not caller_in_core:
                    # Sink (a): tainted argument crossing into core.
                    reason = None
                    for arg in list(site.node.args) + [
                        k.value for k in site.node.keywords
                    ]:
                        reason = analyzer.expr_taint(arg, tainted_returns)
                        if reason is not None:
                            break
                    if reason is not None:
                        callee = graph.functions[core_targets[0]]
                        yield _node_finding(
                            self,
                            fn.module_path,
                            site.node,
                            f"value derived from {reason} passed into "
                            f"deterministic-core function "
                            f"{callee.qualname}(): core state must be "
                            "a pure function of seeds — thread the "
                            "value through config or a clock seam",
                        )
                if caller_in_core:
                    # Sink (b): core pulls taint through a helper.
                    for target in site.targets:
                        if target in tainted_returns and not (
                            in_deterministic_core(
                                graph.functions[target].module_path
                            )
                        ):
                            yield _node_finding(
                                self,
                                fn.module_path,
                                site.node,
                                f"deterministic-core function {fn.qualname} "
                                f"calls {graph.functions[target].qualname}() "
                                f"whose return derives from "
                                f"{tainted_returns[target]}; inject the "
                                "value through config or a clock seam",
                            )
                            break
            if not caller_in_core:
                # Sink (c): tainted value stored on a core-typed object.
                yield from self._attribute_store_sinks(
                    graph, fn, analyzer, tainted_returns
                )

    def _attribute_store_sinks(
        self,
        graph: CallGraph,
        fn: FunctionDecl,
        analyzer: _FunctionTaint,
        tainted_returns: Dict[str, str],
    ) -> Iterator[Finding]:
        for node in _direct_statements(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                receiver = analyzer.resolver.type_of(target.value)
                if receiver is None:
                    continue
                decl = graph.classes.get(receiver)
                if decl is None:
                    continue
                class_path = decl.module_dotted.replace(".", "/") + ".py"
                if not in_deterministic_core(class_path):
                    continue
                reason = analyzer.expr_taint(node.value, tainted_returns)
                if reason is not None:
                    yield _node_finding(
                        self,
                        fn.module_path,
                        node,
                        f"value derived from {reason} stored on "
                        f".{target.attr} of deterministic-core type "
                        f"{decl.name}: core state must be a pure "
                        "function of seeds",
                    )


# ---------------------------------------------------------------------
# resource-typestate
# ---------------------------------------------------------------------

#: Qualified callables whose result is an owned, closeable resource.
_OPEN_CALLS = frozenset(
    ("open", "socket.socket", "socket.create_connection")
)

#: Project classes whose *construction* opens a resource the holder
#: must close (trace sinks hold file handles; tracers own their sink).
_RESOURCE_CLASSES = frozenset(("FileTraceSink", "Tracer"))

#: Method/attr names that transfer ownership of an argument.
_OWNERSHIP_SINK_ATTRS = frozenset(
    ("append", "add", "put", "register", "push", "extend", "closing")
)

_LOCK_ACQUIRE_FLAGS = frozenset(("LOCK_EX", "LOCK_SH"))
_LOCK_RELEASE_FLAG = "LOCK_UN"


def _names_in(node: ast.AST, tracked: FrozenSet[str]) -> Set[str]:
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and sub.id in tracked
    }


def _flag_names(flags_expr: ast.expr) -> Set[str]:
    """LOCK_* identifiers in a flags expression, however imported."""
    names: Set[str] = set()
    for sub in ast.walk(flags_expr):
        if isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Name):
            names.add(sub.id)
    return names


class _ProtocolScan:
    """Gen/kill extraction for one function's resource protocols."""

    def __init__(self, aliases: Dict[str, str], fn: FunctionNode) -> None:
        self.aliases = aliases
        self.fn = fn
        #: statements inside loop bodies (their acquires are exempt:
        #: the per-iteration lifecycle is out of scope for a
        #: path-insensitive key set).
        self.loop_stmts: Set[int] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                for stmt in node.body + node.orelse:
                    for sub in ast.walk(stmt):
                        self.loop_stmts.add(id(sub))
        #: key → list of acquire AST nodes (for finding locations).
        self.acquire_sites: Dict[str, List[ast.AST]] = {}
        #: keys with at least one *real* release (close/unfence/UN).
        self.released: Set[str] = set()
        self.value_names: Set[str] = set()

    # -- per-statement shallow parts ----------------------------------

    def shallow_parts(self, stmt: ast.stmt) -> List[ast.AST]:
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
            return []
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return []
        return [stmt]

    # -- acquire / release classification -----------------------------

    def _call_acquire_key(self, call: ast.Call) -> Optional[str]:
        """State-resource acquires: fence / flock LOCK_EX."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "fence":
            return "fence:" + self._pair_key(call)
        name = qualified_name(func, self.aliases)
        if name in ("fcntl.flock", "fcntl.lockf") and len(call.args) > 1:
            if _flag_names(call.args[1]) & _LOCK_ACQUIRE_FLAGS:
                return "flock:" + ast.unparse(call.args[0])
        return None

    def _call_release_key(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "unfence":
            return "fence:" + self._pair_key(call)
        name = qualified_name(func, self.aliases)
        if name in ("fcntl.flock", "fcntl.lockf") and len(call.args) > 1:
            if _LOCK_RELEASE_FLAG in _flag_names(call.args[1]):
                return "flock:" + ast.unparse(call.args[0])
        return None

    @staticmethod
    def _pair_key(call: ast.Call) -> str:
        receiver = (
            ast.unparse(call.func.value)
            if isinstance(call.func, ast.Attribute)
            else ""
        )
        args = ",".join(ast.unparse(arg) for arg in call.args)
        return f"{receiver}({args})"

    def _value_acquire(self, stmt: ast.AST) -> Optional[Tuple[str, ast.AST]]:
        """``name = open(...)`` style acquisitions (single Name target)."""
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            return None
        func = stmt.value.func
        name = qualified_name(func, self.aliases)
        tail = name.split(".")[-1] if name else None
        opens = (
            name in _OPEN_CALLS
            or tail in _RESOURCE_CLASSES
            or (isinstance(func, ast.Attribute) and func.attr == "open")
        )
        if not opens:
            return None
        return stmt.targets[0].id, stmt

    # -- the gen/kill tables ------------------------------------------

    def scan(self) -> None:
        """First pass: collect keys, acquire sites, and real releases."""
        for node in _direct_statements(self.fn):
            if not isinstance(node, (ast.stmt,)):
                continue
            for part in self.shallow_parts(node):
                acquired = self._value_acquire(part)
                if acquired is not None and id(node) not in self.loop_stmts:
                    name, site = acquired
                    if not isinstance(
                        node, (ast.With, ast.AsyncWith)
                    ):
                        self.value_names.add(name)
                        self.acquire_sites.setdefault(
                            "value:" + name, []
                        ).append(site)
                for call in ast.walk(part):
                    if not isinstance(call, ast.Call):
                        continue
                    key = self._call_acquire_key(call)
                    if key is not None and id(node) not in self.loop_stmts:
                        if not isinstance(node, (ast.With, ast.AsyncWith)):
                            self.acquire_sites.setdefault(key, []).append(
                                call
                            )
                    rkey = self._call_release_key(call)
                    if rkey is not None:
                        self.released.add(rkey)
                    if (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr == "close"
                        and isinstance(call.func.value, ast.Name)
                    ):
                        self.released.add("value:" + call.func.value.id)

    def gen_kill(
        self, node: CfgNode, tracked: FrozenSet[str]
    ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """The (gen, kill) key sets of one CFG node.

        Kills include real releases *and* escapes (return/yield, store
        to attribute or subscript, hand-off to a constructor or a
        collection) — after an ownership transfer the function is no
        longer responsible for the close.
        """
        if node.stmt is None:
            return frozenset(), frozenset()
        stmt = node.stmt
        gens: Set[str] = set()
        kills: Set[str] = set()
        tracked_names = frozenset(
            key.split(":", 1)[1]
            for key in tracked
            if key.startswith("value:")
        )
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # A nested scope capturing the handle may close it later:
            # ownership escaped into the closure.
            for name in _names_in(stmt, tracked_names):
                kills.add("value:" + name)
            return frozenset(), frozenset(kills)
        for part in self.shallow_parts(stmt):
            acquired = self._value_acquire(part)
            if (
                acquired is not None
                and id(stmt) not in self.loop_stmts
                and not isinstance(stmt, (ast.With, ast.AsyncWith))
            ):
                key = "value:" + acquired[0]
                if key in tracked:
                    gens.add(key)
            for call in ast.walk(part):
                if not isinstance(call, ast.Call):
                    continue
                key = self._call_acquire_key(call)
                if (
                    key is not None
                    and key in tracked
                    and id(stmt) not in self.loop_stmts
                    and not isinstance(stmt, (ast.With, ast.AsyncWith))
                ):
                    gens.add(key)
                rkey = self._call_release_key(call)
                if rkey is not None:
                    kills.add(rkey)
                if (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.attr == "close"
                ):
                    kills.add("value:" + call.func.value.id)
            kills.update(
                "value:" + name
                for name in self._escapes(part, tracked_names)
            )
        return frozenset(gens), frozenset(kills)

    def _escapes(
        self, part: ast.AST, tracked_names: FrozenSet[str]
    ) -> Set[str]:
        escaped: Set[str] = set()
        if not tracked_names:
            return escaped
        for sub in ast.walk(part):
            if isinstance(sub, ast.Return) and sub.value is not None:
                escaped |= _names_in(sub.value, tracked_names)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                if sub.value is not None:
                    escaped |= _names_in(sub.value, tracked_names)
            elif isinstance(sub, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in sub.targets
                ):
                    escaped |= _names_in(sub.value, tracked_names)
            elif isinstance(sub, ast.Call):
                func = sub.func
                constructorish = (
                    isinstance(func, ast.Name) and func.id[:1].isupper()
                ) or (
                    isinstance(func, ast.Attribute)
                    and (
                        func.attr in _OWNERSHIP_SINK_ATTRS
                        or func.attr[:1].isupper()
                    )
                )
                if constructorish:
                    for arg in list(sub.args) + [
                        k.value for k in sub.keywords
                    ]:
                        escaped |= _names_in(arg, tracked_names)
        return escaped


class ResourceTypestateRule(Rule):
    id = "resource-typestate"
    summary = (
        "fence/unfence, flock acquire/release, and open/close "
        "lifecycles must pair on every CFG path, including exception "
        "paths"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            aliases = import_aliases(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield from self._check_function(module, aliases, node)

    def _check_function(
        self,
        module: Module,
        aliases: Dict[str, str],
        fn: FunctionNode,
    ) -> Iterator[Finding]:
        scan = _ProtocolScan(aliases, fn)
        scan.scan()
        # Precondition: the function both acquires AND really releases
        # the key — release-only helpers (``release_lock``) and
        # ownership transfers (acquire, stash on self) are exempt.
        tracked = frozenset(
            key
            for key, sites in scan.acquire_sites.items()
            if sites and key in scan.released
        )
        if not tracked:
            return
        cfg = build_cfg(fn)
        tables = {
            n.index: scan.gen_kill(n, tracked) for n in cfg.nodes
        }

        def transfer(node: CfgNode, state: FrozenSet) -> FrozenSet:
            gens, kills = tables[node.index]
            return (state - kills) | gens

        def raise_transfer(node: CfgNode, state: FrozenSet) -> FrozenSet:
            # If the statement raises, its releases still count (a
            # failing close() released what it could) but its acquire
            # never happened (``x = open(...)`` raising binds nothing).
            _, kills = tables[node.index]
            return state - kills

        in_state = solve_forward(
            cfg, transfer, mode="may", raise_transfer=raise_transfer
        )
        leaks: Dict[str, List[str]] = {}
        for exit_index, label in (
            (cfg.error_exit, "an exception path"),
            (cfg.normal_exit, "a normal exit path"),
        ):
            for key in in_state.get(exit_index, frozenset()):
                leaks.setdefault(key, []).append(label)
        for key in sorted(leaks):
            paths = " and ".join(leaks[key])
            for site in scan.acquire_sites.get(key, []):
                kind, _, detail = key.partition(":")
                if kind == "value":
                    what = (
                        f"resource {detail!r} acquired here may never "
                        f"be closed on {paths}"
                    )
                elif kind == "fence":
                    what = (
                        f"fence acquired here ({detail}) may have no "
                        f"matching unfence() on {paths}"
                    )
                else:
                    what = (
                        f"flock acquired here ({detail}) may have no "
                        f"LOCK_UN on {paths}"
                    )
                yield _node_finding(
                    self,
                    module.path,
                    site,
                    what
                    + "; release in a finally/with block so exception "
                    "paths cannot strand it",
                )
