"""``frozen-mutation``: ``object.__setattr__`` only where sanctioned.

Lattice values, causal contexts, and protocol :class:`Message` objects
are immutable by contract — equality, hashing, sharing across
neighbours, and the frame memo all lean on it.  ``object.__setattr__``
is the one escape hatch, legitimate in exactly two shapes:

* **construction** — ``__init__`` / ``__post_init__`` writing ``self``
  before the instance escapes, and methods writing a *fresh* instance
  they just made with ``SomeClass.__new__(...)`` (the allocation idiom
  of ``MapLattice.join``);
* **sanctioned memo sites** — lazy caches of pure functions of the
  frozen value (``_bytes_cache``, ``Message._frame_memo``), which must
  each carry a ``# repro: lint-ok[frozen-mutation] reason`` so the
  full allowlist is greppable and every entry explains itself.

Everything else is a finding: an unsanctioned write to a frozen object
is how "byte-identical" silently stops being true.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.engine import Finding, Project, Rule
from repro.lint.rules.common import FunctionNode, walk_with_function

CONSTRUCTOR_NAMES = frozenset(("__init__", "__post_init__", "__new__"))


def _fresh_locals(function: FunctionNode) -> Set[str]:
    """Names bound in ``function`` from a ``X.__new__(...)`` call."""
    fresh: Set[str] = set()
    for node in ast.walk(function):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        callee = node.value.func
        if isinstance(callee, ast.Attribute) and callee.attr == "__new__":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fresh.add(target.id)
    return fresh


class FrozenMutationRule(Rule):
    id = "frozen-mutation"
    summary = (
        "object.__setattr__ only in constructors, on fresh __new__ "
        "instances, or at suppression-sanctioned memo sites"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node, function in walk_with_function(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "__setattr__"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "object"
                    and node.args
                ):
                    continue
                if self._sanctioned(node.args[0], function):
                    continue
                target = (
                    ast.unparse(node.args[0])
                    if hasattr(ast, "unparse")
                    else "<target>"
                )
                yield self.finding(
                    module,
                    node,
                    f"object.__setattr__ on {target} outside a "
                    "constructor or fresh __new__ instance mutates a "
                    "frozen object; sanctioned memo sites must carry "
                    "`# repro: lint-ok[frozen-mutation] reason`",
                )

    def _sanctioned(
        self, target: ast.expr, function: Optional[FunctionNode]
    ) -> bool:
        if function is None or not isinstance(target, ast.Name):
            return False
        if target.id == "self" and function.name in CONSTRUCTOR_NAMES:
            return True
        return target.id in _fresh_locals(function)
