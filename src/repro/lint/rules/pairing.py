"""``trace-pairing``: metrics and trace must account the same bytes.

The observability contract since PR 6: ``trace_totals(events)`` equals
the live :class:`MetricsCollector`'s payload/metadata/message totals
*exactly*, on sim and on TCP.  That only holds because every transport
site that constructs a :class:`MessageRecord` also emits a ``send``
trace event at the same point with the *identical byte expressions*.
The rule checks exactly that, lexically: each
``<collector>.record_message(MessageRecord(...))`` call must share its
enclosing function with a ``.emit("send", ...)`` whose
``payload_bytes`` / ``metadata_bytes`` / ``payload_units`` /
``metadata_units`` keyword expressions are AST-identical to the
record's.  Forwarding calls that pass an existing record object along
(``TeeCollector``) construct nothing and are out of scope by design.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.engine import Finding, Project, Rule
from repro.lint.rules.common import emit_call_type, walk_with_function

#: The byte/unit arguments whose expressions must match between the
#: MessageRecord constructor and the paired ``send`` emit.
PAIRED_ARGUMENTS = (
    "payload_bytes",
    "metadata_bytes",
    "payload_units",
    "metadata_units",
)


def _callee_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _keyword_map(call: ast.Call) -> Dict[str, ast.expr]:
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


class TracePairingRule(Rule):
    id = "trace-pairing"
    summary = (
        "every record_message(MessageRecord(...)) site emits a paired "
        'send trace event with identical byte expressions'
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node, function in walk_with_function(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "record_message"
                    and node.args
                    and isinstance(node.args[0], ast.Call)
                    and _callee_name(node.args[0].func) == "MessageRecord"
                ):
                    continue
                record = node.args[0]
                if function is None:
                    yield self.finding(
                        module,
                        node,
                        "record_message(MessageRecord(...)) at module "
                        "level cannot be paired with a send trace emit",
                    )
                    continue
                in_function = [
                    candidate
                    for candidate in ast.walk(function)
                    if isinstance(candidate, ast.Call)
                    and emit_call_type(candidate) == "send"
                ]
                if not in_function:
                    yield self.finding(
                        module,
                        node,
                        "record_message(MessageRecord(...)) has no "
                        '.emit("send", ...) in the same function: trace '
                        "totals will drift from collector totals",
                    )
                    continue
                yield from self._check_arguments(
                    module, node, record, in_function
                )

    def _check_arguments(
        self,
        module,
        site: ast.Call,
        record: ast.Call,
        emits: List[ast.Call],
    ) -> Iterator[Finding]:
        record_kwargs = _keyword_map(record)
        # One emit must match *all* paired arguments; report against
        # the best candidate (the one with the fewest mismatches).
        best_problems: Optional[List[str]] = None
        for emit in emits:
            emit_kwargs = _keyword_map(emit)
            problems: List[str] = []
            for argument in PAIRED_ARGUMENTS:
                record_expr = record_kwargs.get(argument)
                emit_expr = emit_kwargs.get(argument)
                if record_expr is None or emit_expr is None:
                    missing_side = (
                        "MessageRecord" if record_expr is None else "emit"
                    )
                    problems.append(
                        f"{argument} is not a keyword argument of the "
                        f"{missing_side} call"
                    )
                elif ast.dump(record_expr) != ast.dump(emit_expr):
                    problems.append(
                        f"{argument} differs between MessageRecord "
                        f"({ast.unparse(record_expr)}) and the send "
                        f"emit ({ast.unparse(emit_expr)})"
                    )
            if not problems:
                return
            if best_problems is None or len(problems) < len(best_problems):
                best_problems = problems
        for problem in best_problems or []:
            yield self.finding(
                module,
                site,
                f"record_message/send trace pairing broken: {problem}",
            )
