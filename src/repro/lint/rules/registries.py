"""Registry-completeness rules.

Three registries drive runtime dispatch by data, so a new entry that
misses its handler fails deep inside a run — a ``KeyError`` three
layers under a TCP settle loop, or a ``Tracer.emit`` rejection halfway
through a fault schedule.  These rules move that failure to lint time:

``wire-registry``
    Every :data:`WIRE_KINDS` entry must have a ``(writer, reader)``
    pair in ``_WIRE_CODECS`` — the one table both ``encode_message``
    and ``decode_message`` dispatch through — and the table must not
    carry kinds missing from the wire registry (their uvarint tag
    would be unassigned).

``verb-registry``
    Every verb in ``serve.frames._VERB_NAMES`` must appear in an
    equality dispatch somewhere in the scanned tree (the replica's
    ``verb == frames.X`` chain).  A verb with a frame codec but no
    handler answers every request with ``ERR_BAD_REQUEST``.

``event-registry``
    Every literal ``.emit("type", ...)`` must name a catalogued
    :data:`EVENT_TYPES` entry (``Tracer.emit`` raises on unknown types
    at runtime — this catches the typo before a traced run does), and
    every catalogued entry must be referenced by some call argument in
    the tree, so the catalogue cannot grow orphans.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, Module, Project, Rule
from repro.lint.rules.common import (
    call_argument_strings,
    emit_call_type,
    string_tuple_assignment,
)


def _find_string_tuple(
    project: Project, name: str
) -> Optional[Tuple[Module, ast.Assign, Tuple[str, ...], Tuple[ast.Constant, ...]]]:
    for module, node in project.assignments(name):
        decoded = string_tuple_assignment(node)
        if decoded is not None:
            texts, elements = decoded
            return module, node, texts, elements
    return None


class WireRegistryRule(Rule):
    id = "wire-registry"
    summary = (
        "every WIRE_KINDS entry has a (writer, reader) pair in "
        "_WIRE_CODECS and vice versa"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        kinds = _find_string_tuple(project, "WIRE_KINDS")
        if kinds is None:
            return
        module, kinds_node, kind_names, kind_elements = kinds
        codecs = self._codec_table(module)
        if codecs is None:
            yield self.finding(
                module,
                kinds_node,
                "WIRE_KINDS is defined but no _WIRE_CODECS dispatch "
                "table was found in the same module",
            )
            return
        entries, table_keys = codecs
        for name, element in zip(kind_names, kind_elements):
            if name not in entries:
                yield self.finding(
                    module,
                    element,
                    f"wire kind {name!r} has no (writer, reader) entry "
                    "in _WIRE_CODECS: it cannot be encoded or decoded",
                )
                continue
            value = entries[name]
            if not (
                isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == 2
            ):
                yield self.finding(
                    module,
                    value,
                    f"wire kind {name!r} must map to a (writer, reader) "
                    "pair so both encode and decode dispatch reach it",
                )
        for name, key_node in table_keys:
            if name not in kind_names:
                yield self.finding(
                    module,
                    key_node,
                    f"_WIRE_CODECS entry {name!r} is not in WIRE_KINDS: "
                    "it has no uvarint tag and can never be dispatched",
                )

    def _codec_table(
        self, module: Module
    ) -> Optional[Tuple[Dict[str, ast.AST], List[Tuple[str, ast.AST]]]]:
        for node in module.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_WIRE_CODECS"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Dict)
            ):
                continue
            entries: Dict[str, ast.AST] = {}
            keys: List[Tuple[str, ast.AST]] = []
            for key, value in zip(node.value.keys, node.value.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    entries[key.value] = value
                    keys.append((key.value, key))
            return entries, keys
        return None


class VerbRegistryRule(Rule):
    id = "verb-registry"
    summary = (
        "every serve.frames verb (the _VERB_NAMES keys) appears in an "
        "equality dispatch somewhere in the scanned tree"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        table = self._verb_table(project)
        if table is None:
            return
        module, node, verbs = table
        compared = self._compared_names(project)
        # Gate: if *no* verb is dispatched anywhere, the handler module
        # is outside the scan (e.g. linting frames.py alone) and the
        # rule has nothing sound to say.
        if not (verbs & compared):
            return
        for verb in sorted(verbs - compared):
            yield self.finding(
                module,
                node,
                f"verb {verb} has a frame name but no `== frames.{verb}` "
                "dispatch anywhere in the scanned tree: requests with it "
                "die as ERR_BAD_REQUEST",
            )

    def _verb_table(
        self, project: Project
    ) -> Optional[Tuple[Module, ast.Assign, Set[str]]]:
        for module, node in project.assignments("_VERB_NAMES"):
            if not isinstance(node.value, ast.Dict):
                continue
            verbs = {
                key.id
                for key in node.value.keys
                if isinstance(key, ast.Name)
            }
            if verbs:
                return module, node, verbs
        return None

    def _compared_names(self, project: Project) -> Set[str]:
        names: Set[str] = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Compare):
                    continue
                for side in [node.left] + list(node.comparators):
                    if isinstance(side, ast.Attribute):
                        names.add(side.attr)
                    elif isinstance(side, ast.Name):
                        names.add(side.id)
        return names


class EventRegistryRule(Rule):
    id = "event-registry"
    summary = (
        "every literal .emit(type) is catalogued in EVENT_TYPES, and "
        "no catalogue entry is an orphan nothing references"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        catalogue = _find_string_tuple(project, "EVENT_TYPES")
        if catalogue is None:
            return
        module, _, names, elements = catalogue
        known = set(names)
        emitted: Set[str] = set()
        for emitting, node, event_type in self._literal_emits(project):
            emitted.add(event_type)
            if event_type not in known:
                yield self.finding(
                    emitting,
                    node,
                    f"emit({event_type!r}) is not in EVENT_TYPES: "
                    "Tracer.emit will reject it at runtime — catalogue "
                    "the type or fix the typo",
                )
        # Orphan check only when the emitting side of the codebase is
        # in scope at all; linting the catalogue module alone proves
        # nothing about use.
        if not (emitted & known):
            return
        used: Set[str] = set()
        for scanned in project.modules:
            used.update(call_argument_strings(scanned.tree))
        for name, element in zip(names, elements):
            if name not in used:
                yield self.finding(
                    module,
                    element,
                    f"EVENT_TYPES entry {name!r} is referenced by no "
                    "call in the scanned tree: dead catalogue entries "
                    "hide real coverage gaps — emit it or retire it",
                )

    def _literal_emits(
        self, project: Project
    ) -> Iterator[Tuple[Module, ast.Call, str]]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    event_type = emit_call_type(node)
                    if event_type is not None:
                        yield module, node, event_type
