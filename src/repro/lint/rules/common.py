"""Shared AST plumbing — re-exported from :mod:`repro.lint.astutil`.

The helpers moved up a package level when the interprocedural layer
arrived: :mod:`repro.lint.callgraph` and :mod:`repro.lint.flow` need
them too, and importing anything from ``repro.lint.rules.*`` runs the
rule-catalogue ``__init__`` — a circular import once the catalogue
lists the interprocedural rules.  Existing rule modules keep importing
from here.
"""

from repro.lint.astutil import (
    FunctionNode,
    call_argument_strings,
    emit_call_type,
    import_aliases,
    qualified_name,
    string_tuple_assignment,
    walk_with_function,
)

__all__ = [
    "FunctionNode",
    "call_argument_strings",
    "emit_call_type",
    "import_aliases",
    "qualified_name",
    "string_tuple_assignment",
    "walk_with_function",
]
