"""Shared AST plumbing for the rule catalogue.

Rules match *qualified names*: ``import random as r; r.choice(...)``
must be recognized as ``random.choice``.  :func:`import_aliases` builds
the local-name → dotted-name map from a module's imports and
:func:`qualified_name` resolves an expression through it.  The helpers
deliberately stop at static resolution — a name rebound at runtime is
invisible, which is the standard (and documented) blind spot of every
AST linter.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map each locally bound import name to its dotted origin.

    ``import random`` → ``{"random": "random"}``; ``import numpy as
    np`` → ``{"np": "numpy"}``; ``from random import Random as R`` →
    ``{"R": "random.Random"}``.  Relative imports keep their module
    text (``from .frames import GET`` → ``frames.GET``), which is what
    the registry rules match on.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                bound = name.asname or name.name.split(".")[0]
                aliases[bound] = name.name if name.asname else bound
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname or name.name
                aliases[bound] = f"{node.module}.{name.name}"
    return aliases


def qualified_name(
    node: ast.AST, aliases: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """The dotted name of an expression, or ``None`` if it has none."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases is not None:
        root = aliases.get(root, root)
    parts.append(root)
    return ".".join(reversed(parts))


def walk_with_function(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[FunctionNode]]]:
    """Yield every node along with its innermost enclosing function."""

    def visit(
        node: ast.AST, function: Optional[FunctionNode]
    ) -> Iterator[Tuple[ast.AST, Optional[FunctionNode]]]:
        for child in ast.iter_child_nodes(node):
            yield child, function
            inner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else function
            )
            yield from visit(child, inner)

    yield from visit(tree, None)


def string_tuple_assignment(
    node: ast.Assign,
) -> Optional[Tuple[Tuple[str, ...], Tuple[ast.Constant, ...]]]:
    """Decode ``NAME = ("a", "b", ...)``; ``None`` if not that shape."""
    value = node.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    texts: List[str] = []
    elements: List[ast.Constant] = []
    for element in value.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        texts.append(element.value)
        elements.append(element)
    return tuple(texts), tuple(elements)


def call_argument_strings(tree: ast.Module) -> Dict[str, int]:
    """Every string constant used as a call argument, with counts.

    This is the "is this registry entry referenced anywhere" oracle:
    catalogue strings travel as arguments (``tracer.emit("send", ...)``,
    ``observer("wal-commit", n)``), while docstrings and the registry
    tuples themselves do not.
    """
    used: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(argument, ast.Constant) and isinstance(
                argument.value, str
            ):
                used[argument.value] = used.get(argument.value, 0) + 1
    return used


def emit_call_type(node: ast.Call) -> Optional[str]:
    """The literal event type of a ``<x>.emit("type", ...)`` call.

    Returns ``None`` for non-emit calls *and* for emits whose type is
    computed — the dynamic relay in ``wal.log`` forwards types it was
    handed, which static analysis cannot judge (its *callers* pass
    literals, and those are checked as call arguments).
    """
    if not (
        isinstance(node.func, ast.Attribute) and node.func.attr == "emit"
    ):
        return None
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None
