"""A conservative project call graph for the interprocedural rules.

PR 9's rules judged every site lexically, so one helper function was
enough to hide a violation: a blocking ``flock`` wrapped in a utility
and called from ``async def`` passed ``async-blocking``, and a
``time.time()`` laundered through a return value reached the lattice
core unseen.  This module gives the rules the missing whole-program
view: every function and method defined in the linted tree becomes a
node, every call site is resolved to the set of project functions it
*may* reach, and effects propagate over the SCC condensation so cycles
and mutual recursion converge.

Resolution is deliberately static and deliberately honest about what
it gives up:

* **names** resolve through local scopes and the import-alias map
  (``from repro.serve import frames; frames.send_frame(...)``);
* **self/cls method calls** resolve through the project MRO *plus all
  project subclass overrides* — dynamic dispatch is modelled as
  may-call over the subtree;
* **typed receivers** — ``self.storage.release_lock()`` — resolve when
  the attribute's class is inferrable from constructor assignments
  (``self.storage = FileStorage(...)``), ``self.x: T`` annotations, or
  parameter annotations;
* everything else — ``getattr`` dispatch, callbacks, rebound names,
  untyped receivers — is recorded as an **unknown (⊤) call site**.
  Effect rules do not propagate through ⊤ (they would otherwise flag
  the world), which is the documented unsoundness of the analysis.

Module summaries are pure functions of a file's source, cached by
content hash (:data:`_SUMMARY_CACHE`), so repeated passes — the test
suite, a watch loop, the three rules sharing one pass — pay the
linking cost only.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.astutil import import_aliases, qualified_name
from repro.lint.engine import Module, Project

FunctionNode = ast.AST  # FunctionDef | AsyncFunctionDef

#: Decorator names that make a method an attribute read, not a call.
_PROPERTY_DECORATORS = frozenset(("property", "cached_property"))


def module_dotted(path: str) -> str:
    """A dotted module name derived from the file path.

    ``src/repro/kv/store.py`` → ``repro.kv.store`` (the part after the
    last ``src`` segment when one exists; the full path otherwise, so
    corpus fixtures like ``pkg/mod.py`` become ``pkg.mod``).  Package
    ``__init__`` files name the package itself.  Imports are resolved
    by *suffix match* against these names, so leading path junk never
    matters.
    """
    normalized = path.replace("\\", "/").lstrip("/")
    if normalized.endswith(".py"):
        normalized = normalized[: -len(".py")]
    parts = [part for part in normalized.split("/") if part and part != "."]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src") :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "module"


@dataclass
class FunctionDecl:
    """One function or method defined in the linted tree."""

    id: str  #: ``module.dotted.Class.method`` — globally unique.
    module_path: str
    module_dotted: str
    name: str
    qualname: str
    lineno: int
    col: int
    is_async: bool
    is_property: bool
    class_name: Optional[str]
    node: FunctionNode


@dataclass
class ClassDecl:
    """One class: bases, methods, and inferred attribute types."""

    id: str
    module_dotted: str
    name: str
    #: Base-class names as alias-resolved dotted text (unlinked).
    bases: Tuple[str, ...]
    methods: Dict[str, str] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    #: attribute name → alias-resolved dotted type text (unlinked).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything the linker needs from one module, AST-derived once."""

    path: str
    dotted: str
    aliases: Dict[str, str]
    functions: Dict[str, FunctionDecl] = field(default_factory=dict)
    classes: Dict[str, ClassDecl] = field(default_factory=dict)
    #: top-level name → function id (module-scope defs only).
    toplevel: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside one function."""

    node: ast.Call
    #: Project functions this call may reach (empty when unresolved).
    targets: Tuple[str, ...]
    #: Qualified name when the callee is outside the project
    #: (``time.sleep``); None for project or unknown callees.
    external: Optional[str]
    #: The bare callee name (attribute or identifier) — always set,
    #: used for lexical matching (``sendall``) and ⊤ diagnostics.
    callee_name: Optional[str]
    #: True when the call is wrapped in ``await``: async callees only
    #: propagate effects through awaited sites.
    awaited: bool
    #: True when neither a project target nor an external name could
    #: be determined — the ⊤ fallback.
    unknown: bool


@dataclass
class CallGraph:
    """The linked graph plus the per-function call sites."""

    functions: Dict[str, FunctionDecl]
    classes: Dict[str, ClassDecl]
    calls: Dict[str, Tuple[CallSite, ...]]
    callers: Dict[str, Set[str]]
    #: Condensation: SCCs in reverse topological order (callees first).
    sccs: List[Tuple[str, ...]]
    #: module path → summary, and the linker — retained so rules can
    #: build per-function resolvers (the taint rule types receivers).
    summaries: Dict[str, "ModuleSummary"] = field(default_factory=dict)
    linker: Optional["_Linker"] = None

    def call_sites(self) -> Iterator[Tuple[FunctionDecl, CallSite]]:
        for fn_id in sorted(self.calls):
            fn = self.functions[fn_id]
            for site in self.calls[fn_id]:
                yield fn, site

    def resolver_for(self, fn_id: str) -> "_FunctionResolver":
        """The resolution context of one function (lazily cached)."""
        cache = getattr(self, "_resolver_cache", None)
        if cache is None:
            cache = {}
            self._resolver_cache = cache
        if fn_id not in cache:
            fn = self.functions[fn_id]
            assert self.linker is not None
            cache[fn_id] = _FunctionResolver(
                self.linker, self.summaries[fn.module_path], fn
            )
        return cache[fn_id]


# ---------------------------------------------------------------------
# Per-module summaries (content-hash cached).
# ---------------------------------------------------------------------

#: content fingerprint → ModuleSummary.  Bounded: lint passes see at
#: most a few hundred modules; entries are evicted FIFO past the cap.
_SUMMARY_CACHE: Dict[str, ModuleSummary] = {}
_SUMMARY_CACHE_CAP = 2048


def _decorator_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    return None


def _dotted_text(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Alias-resolved dotted text of a Name/Attribute chain."""
    return qualified_name(node, aliases)


def summarize_module(module: Module) -> ModuleSummary:
    """Build (or fetch) the summary for one parsed module."""
    key = hashlib.sha256(
        (module.path + "\0" + module.source).encode("utf-8")
    ).hexdigest()
    cached = _SUMMARY_CACHE.get(key)
    if cached is not None:
        return cached
    dotted = module_dotted(module.path)
    aliases = import_aliases(module.tree)
    summary = ModuleSummary(path=module.path, dotted=dotted, aliases=aliases)
    _collect_scope(summary, module.tree.body, scope=(), class_decl=None)
    for decl in summary.classes.values():
        _collect_attr_types(summary, decl)
    if len(_SUMMARY_CACHE) >= _SUMMARY_CACHE_CAP:
        _SUMMARY_CACHE.pop(next(iter(_SUMMARY_CACHE)))
    _SUMMARY_CACHE[key] = summary
    return summary


def _collect_scope(
    summary: ModuleSummary,
    body: Sequence[ast.stmt],
    scope: Tuple[str, ...],
    class_decl: Optional[ClassDecl],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = ".".join(scope + (stmt.name,))
            fn_id = f"{summary.dotted}.{qualname}"
            decorators = {
                _decorator_name(d) for d in stmt.decorator_list
            }
            is_property = bool(decorators & _PROPERTY_DECORATORS)
            decl = FunctionDecl(
                id=fn_id,
                module_path=summary.path,
                module_dotted=summary.dotted,
                name=stmt.name,
                qualname=qualname,
                lineno=stmt.lineno,
                col=stmt.col_offset,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
                is_property=is_property,
                class_name=class_decl.name if class_decl is not None else None,
                node=stmt,
            )
            summary.functions[fn_id] = decl
            if class_decl is not None:
                # First definition wins (a conditional redefinition is
                # out of static scope); properties are attribute reads.
                class_decl.methods.setdefault(stmt.name, fn_id)
                if is_property:
                    class_decl.properties.add(stmt.name)
            elif not scope:
                summary.toplevel[stmt.name] = fn_id
            _collect_scope(
                summary, stmt.body, scope + (stmt.name,), class_decl=None
            )
        elif isinstance(stmt, ast.ClassDef):
            if class_decl is not None or scope:
                continue  # nested classes: out of scope, ⊤ at call sites
            bases = tuple(
                text
                for base in stmt.bases
                if (text := _dotted_text(base, summary.aliases)) is not None
            )
            decl = ClassDecl(
                id=f"{summary.dotted}.{stmt.name}",
                module_dotted=summary.dotted,
                name=stmt.name,
                bases=bases,
            )
            summary.classes[stmt.name] = decl
            _collect_scope(
                summary, stmt.body, scope + (stmt.name,), class_decl=decl
            )
            # Class-level annotations type the instance attributes.
            for inner in stmt.body:
                if isinstance(inner, ast.AnnAssign) and isinstance(
                    inner.target, ast.Name
                ):
                    text = _annotation_text(inner.annotation, summary.aliases)
                    if text is not None:
                        decl.attr_types.setdefault(inner.target.id, text)


def _annotation_text(
    annotation: Optional[ast.expr], aliases: Dict[str, str]
) -> Optional[str]:
    """The class-naming part of an annotation (Optional[T] → T)."""
    if annotation is None:
        return None
    node = annotation
    # Unwrap Optional[T] / "T" string annotations one level.
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = _dotted_text(node.value, aliases)
        if base is not None and base.split(".")[-1] == "Optional":
            return _annotation_text(node.slice, aliases)
        return None
    return _dotted_text(node, aliases)


def _collect_attr_types(summary: ModuleSummary, decl: ClassDecl) -> None:
    """Infer ``self.x`` attribute types from every method body."""
    for method_id in decl.methods.values():
        method = summary.functions[method_id]
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = _dotted_text(node.value.func, summary.aliases)
                if ctor is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        decl.attr_types.setdefault(target.attr, ctor)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ):
                target = node.target
                if (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    text = _annotation_text(node.annotation, summary.aliases)
                    if text is not None:
                        decl.attr_types.setdefault(target.attr, text)


# ---------------------------------------------------------------------
# Linking: symbols, hierarchy, call-site resolution.
# ---------------------------------------------------------------------


class _Linker:
    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries = list(summaries)
        #: last dotted segment → candidate modules (suffix matching).
        self._by_tail: Dict[str, List[ModuleSummary]] = {}
        for summary in self.summaries:
            tail = summary.dotted.split(".")[-1]
            self._by_tail.setdefault(tail, []).append(summary)
        self.functions: Dict[str, FunctionDecl] = {}
        self.classes: Dict[str, ClassDecl] = {}
        self._class_by_name: Dict[str, List[ClassDecl]] = {}
        for summary in self.summaries:
            self.functions.update(summary.functions)
            for decl in summary.classes.values():
                self.classes[decl.id] = decl
                self._class_by_name.setdefault(decl.name, []).append(decl)
        self._parents: Dict[str, Tuple[str, ...]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._link_hierarchy()
        self._method_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    # -- symbols -------------------------------------------------------

    def _modules_matching(self, parts: Sequence[str]) -> List[ModuleSummary]:
        """Modules whose dotted name ends with ``parts``."""
        if not parts:
            return []
        matched = []
        for summary in self._by_tail.get(parts[-1], []):
            mod_parts = summary.dotted.split(".")
            if tuple(mod_parts[-len(parts) :]) == tuple(parts):
                matched.append(summary)
        return matched

    def resolve_dotted(
        self, dotted: str, _depth: int = 0
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Project (functions, classes) a dotted name may denote.

        Tries every module/member split, longest module first, with
        suffix matching on the module part — so both absolute imports
        and the relative-import shorthand resolve.  A member that is
        itself *imported* into the matched module (a package
        ``__init__`` re-export like ``repro.wal.FileStorage``) is
        chased one alias hop at a time, depth-bounded against cycles.
        """
        parts = dotted.split(".")
        functions: List[str] = []
        classes: List[str] = []
        for split in range(len(parts) - 1, 0, -1):
            for summary in self._modules_matching(parts[:split]):
                rest = parts[split:]
                if len(rest) == 1:
                    if rest[0] in summary.toplevel:
                        functions.append(summary.toplevel[rest[0]])
                    if rest[0] in summary.classes:
                        classes.append(summary.classes[rest[0]].id)
                elif len(rest) == 2 and rest[0] in summary.classes:
                    decl = summary.classes[rest[0]]
                    if rest[1] in decl.methods:
                        functions.append(decl.methods[rest[1]])
                if (
                    not functions
                    and not classes
                    and rest[0] in summary.aliases
                    and _depth < 4
                ):
                    chased = ".".join(
                        [summary.aliases[rest[0]]] + rest[1:]
                    )
                    if chased != dotted:
                        found_fns, found_classes = self.resolve_dotted(
                            chased, _depth + 1
                        )
                        functions.extend(found_fns)
                        classes.extend(found_classes)
            if functions or classes:
                break
        return tuple(sorted(set(functions))), tuple(sorted(set(classes)))

    def _resolve_class_text(
        self, text: str, summary: ModuleSummary
    ) -> Optional[str]:
        """A dotted type text → a class id, or None."""
        if "." not in text:
            local = summary.classes.get(text)
            if local is not None:
                return local.id
            # An un-aliased bare name: unique across the project only.
            candidates = self._class_by_name.get(text, [])
            if len(candidates) == 1:
                return candidates[0].id
            return None
        _, classes = self.resolve_dotted(text)
        return classes[0] if len(classes) == 1 else None

    # -- hierarchy -----------------------------------------------------

    def _link_hierarchy(self) -> None:
        summaries_by_dotted = {s.dotted: s for s in self.summaries}
        for decl in self.classes.values():
            summary = summaries_by_dotted[decl.module_dotted]
            parents = tuple(
                parent
                for base in decl.bases
                if (parent := self._resolve_class_text(base, summary))
                is not None
            )
            self._parents[decl.id] = parents
            for parent in parents:
                self._subclasses.setdefault(parent, set()).add(decl.id)

    def _mro(self, class_id: str) -> List[str]:
        """Linearized project ancestry (self first, BFS, cycles cut)."""
        order: List[str] = []
        seen: Set[str] = set()
        queue = [class_id]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(self._parents.get(current, ()))
        return order

    def _subtree(self, class_id: str) -> List[str]:
        """All project subclasses (transitive), excluding the root."""
        out: List[str] = []
        seen: Set[str] = set()
        queue = sorted(self._subclasses.get(class_id, ()))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            queue.extend(sorted(self._subclasses.get(current, ())))
        return out

    def lookup_method(self, class_id: str, name: str) -> Tuple[str, ...]:
        """May-targets of ``<instance of class_id>.name()``.

        The static definition found up the MRO, plus every override in
        the project subtree — dynamic dispatch as may-call.
        """
        cache_key = (class_id, name)
        cached = self._method_cache.get(cache_key)
        if cached is not None:
            return cached
        targets: List[str] = []
        for ancestor in self._mro(class_id):
            decl = self.classes.get(ancestor)
            if decl is not None and name in decl.methods:
                targets.append(decl.methods[name])
                break
        for sub in self._subtree(class_id):
            decl = self.classes.get(sub)
            if decl is not None and name in decl.methods:
                targets.append(decl.methods[name])
        result = tuple(sorted(set(targets)))
        self._method_cache[cache_key] = result
        return result

    def property_targets(self, class_id: str, name: str) -> Tuple[str, ...]:
        """Targets of a ``.name`` read when name is a property."""
        targets = self.lookup_method(class_id, name)
        return tuple(
            t for t in targets if self.functions[t].is_property
        )


# ---------------------------------------------------------------------
# Call-site resolution within one function.
# ---------------------------------------------------------------------


def _direct_statements(node: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""

    def visit(current: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield child
            yield from visit(child)

    yield from visit(node)


class _FunctionResolver:
    """Resolution context for one function's call sites."""

    def __init__(
        self,
        linker: _Linker,
        summary: ModuleSummary,
        fn: FunctionDecl,
    ) -> None:
        self.linker = linker
        self.summary = summary
        self.fn = fn
        self.class_decl = (
            summary.classes.get(fn.class_name)
            if fn.class_name is not None
            else None
        )
        self.local_types = self._infer_local_types()
        self.awaited: Set[int] = {
            id(node.value)
            for node in _direct_statements(fn.node)
            if isinstance(node, ast.Await)
        }

    def _infer_local_types(self) -> Dict[str, str]:
        """Local name → class id, from annotations and constructors."""
        types: Dict[str, str] = {}
        args = self.fn.node.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
        if self.class_decl is not None and all_args:
            first = all_args[0].arg
            if first in ("self", "cls"):
                types[first] = self.class_decl.id
        for arg in all_args:
            text = _annotation_text(arg.annotation, self.summary.aliases)
            if text is not None:
                resolved = self.linker._resolve_class_text(
                    text, self.summary
                )
                if resolved is not None:
                    types.setdefault(arg.arg, resolved)
        for node in _direct_statements(self.fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = _dotted_text(node.value.func, self.summary.aliases)
                if ctor is None:
                    continue
                resolved = self.linker._resolve_class_text(
                    ctor, self.summary
                )
                if resolved is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types.setdefault(target.id, resolved)
        return types

    def type_of(self, expr: ast.expr) -> Optional[str]:
        """Shallow static type (a class id) of an expression."""
        if isinstance(expr, ast.Name):
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is None:
                return None
            for ancestor in self.linker._mro(base):
                decl = self.linker.classes.get(ancestor)
                if decl is not None and expr.attr in decl.attr_types:
                    resolved = self.linker._resolve_class_text(
                        decl.attr_types[expr.attr],
                        self._summary_of(decl),
                    )
                    return resolved
            return None
        if isinstance(expr, ast.Call):
            dotted = _dotted_text(expr.func, self.summary.aliases)
            if dotted is not None:
                resolved = self.linker._resolve_class_text(
                    dotted, self.summary
                )
                if resolved is not None:
                    return resolved
        return None

    def _summary_of(self, decl: ClassDecl) -> ModuleSummary:
        for summary in self.linker.summaries:
            if summary.dotted == decl.module_dotted:
                return summary
        return self.summary

    def resolve_call(self, node: ast.Call) -> CallSite:
        func = node.func
        targets: Tuple[str, ...] = ()
        external: Optional[str] = None
        unknown = False
        callee_name: Optional[str] = None

        if isinstance(func, ast.Name):
            callee_name = func.id
            targets, external, unknown = self._resolve_name(func.id)
        elif isinstance(func, ast.Attribute):
            callee_name = func.attr
            targets, external, unknown = self._resolve_attribute(func)
        else:
            unknown = True  # lambda / subscript / call-of-call: ⊤

        return CallSite(
            node=node,
            targets=targets,
            external=external,
            callee_name=callee_name,
            awaited=id(node) in self.awaited,
            unknown=unknown,
        )

    def _resolve_name(
        self, name: str
    ) -> Tuple[Tuple[str, ...], Optional[str], bool]:
        # Nested function defined in this function (or an enclosing
        # one): qualname prefix match within the module.
        prefix = f"{self.summary.dotted}.{self.fn.qualname}."
        nested = f"{prefix}{name}"
        if nested in self.summary.functions:
            return (nested,), None, False
        if name in self.summary.toplevel:
            return (self.summary.toplevel[name],), None, False
        local_class = self.summary.classes.get(name)
        if local_class is not None:
            return self._constructor_targets(local_class.id)
        if name in self.summary.aliases:
            dotted = self.summary.aliases[name]
            functions, classes = self.linker.resolve_dotted(dotted)
            if functions:
                return functions, None, False
            if len(classes) == 1:
                return self._constructor_targets(classes[0])
            return (), dotted, False
        # A builtin or an unimported global: external by bare name.
        return (), name, False

    def _constructor_targets(
        self, class_id: str
    ) -> Tuple[Tuple[str, ...], Optional[str], bool]:
        init = self.linker.lookup_method(class_id, "__init__")
        new = self.linker.lookup_method(class_id, "__new__")
        post = self.linker.lookup_method(class_id, "__post_init__")
        targets = tuple(sorted(set(init + new + post)))
        return targets, None, False

    def _resolve_attribute(
        self, func: ast.Attribute
    ) -> Tuple[Tuple[str, ...], Optional[str], bool]:
        dotted = qualified_name(func, self.summary.aliases)
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        rooted_in_import = (
            isinstance(root, ast.Name) and root.id in self.summary.aliases
        )
        if dotted is not None and rooted_in_import:
            functions, classes = self.linker.resolve_dotted(dotted)
            if functions:
                return functions, None, False
            if len(classes) == 1:
                return self._constructor_targets(classes[0])
            return (), dotted, False
        # Locally defined class used as ``Cls.method(...)``.
        if isinstance(func.value, ast.Name):
            local_class = self.summary.classes.get(func.value.id)
            if local_class is not None:
                targets = self.linker.lookup_method(
                    local_class.id, func.attr
                )
                if targets:
                    return targets, None, False
        # Typed receiver: self, annotated parameter, constructed local,
        # or a typed attribute chain.
        receiver = self.type_of(func.value)
        if receiver is not None:
            targets = self.linker.lookup_method(receiver, func.attr)
            if targets:
                return targets, None, False
            return (), None, True
        return (), None, True


# ---------------------------------------------------------------------
# Graph assembly, SCCs, and effect propagation.
# ---------------------------------------------------------------------


def build_call_graph(project: Project) -> CallGraph:
    """Summarize every module, link, and condense."""
    summaries = [summarize_module(module) for module in project.modules]
    linker = _Linker(summaries)
    calls: Dict[str, Tuple[CallSite, ...]] = {}
    for summary in summaries:
        for fn in summary.functions.values():
            resolver = _FunctionResolver(linker, summary, fn)
            sites = tuple(
                resolver.resolve_call(node)
                for node in _direct_statements(fn.node)
                if isinstance(node, ast.Call)
            )
            calls[fn.id] = sites
    callers: Dict[str, Set[str]] = {fn_id: set() for fn_id in calls}
    for fn_id, sites in calls.items():
        for site in sites:
            for target in site.targets:
                if target in callers:
                    callers[target].add(fn_id)
    sccs = _tarjan(calls)
    return CallGraph(
        functions=dict(linker.functions),
        classes=dict(linker.classes),
        calls=calls,
        callers=callers,
        sccs=sccs,
        summaries={summary.path: summary for summary in summaries},
        linker=linker,
    )


def _tarjan(calls: Dict[str, Tuple[CallSite, ...]]) -> List[Tuple[str, ...]]:
    """Tarjan SCCs, iterative, deterministic; callees-first order."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    def successors(fn_id: str) -> List[str]:
        seen: Set[str] = set()
        out: List[str] = []
        for site in calls.get(fn_id, ()):
            for target in site.targets:
                if target in calls and target not in seen:
                    seen.add(target)
                    out.append(target)
        return out

    for start in sorted(calls):
        if start in index_of:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succ = successors(node)
            while child_index < len(succ):
                child = succ[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def propagate_effect(
    graph: CallGraph,
    seeds: Set[str],
    *,
    edge_admits: Optional[Callable] = None,
) -> Tuple[Set[str], Dict[str, Tuple[CallSite, str]]]:
    """Close a function-level effect over the call graph.

    ``seeds`` are the functions carrying the effect directly; the
    effect propagates caller-ward through resolved edges (never through
    ⊤ sites).  ``edge_admits(caller, site, target)`` can veto an edge —
    the blocking rule uses it to skip non-awaited async callees.
    Returns the closed set and, for every *derived* member, a witness
    ``(call site, target id)`` for chain reconstruction.
    """
    effected: Set[str] = set(seeds)
    witness: Dict[str, Tuple[CallSite, str]] = {}
    # SCCs arrive callees-first, so one pass per SCC plus an inner
    # fixpoint for mutual recursion converges.
    for scc in graph.sccs:
        changed = True
        while changed:
            changed = False
            for fn_id in scc:
                if fn_id in effected:
                    continue
                caller = graph.functions[fn_id]
                for site in graph.calls.get(fn_id, ()):
                    hit = None
                    for target in site.targets:
                        if target not in effected:
                            continue
                        if edge_admits is not None and not edge_admits(
                            caller, site, graph.functions.get(target)
                        ):
                            continue
                        hit = target
                        break
                    if hit is not None:
                        effected.add(fn_id)
                        witness[fn_id] = (site, hit)
                        changed = True
                        break
    return effected, witness


# ---------------------------------------------------------------------
# The shared project-analysis phase.
# ---------------------------------------------------------------------


def project_analysis(project: Project) -> CallGraph:
    """The per-project call graph, built once and shared by rules."""
    cache = getattr(project, "_analysis_cache", None)
    if cache is None:
        return build_call_graph(project)
    if "callgraph" not in cache:
        cache["callgraph"] = build_call_graph(project)
    return cache["callgraph"]


def render_dot(graph: CallGraph) -> str:
    """The call graph as GraphViz DOT, for ``repro lint --graph``.

    Async functions are drawn as doubleoctagons; unresolved (⊤) call
    counts annotate each node so the analysis's blind spots are
    visible in the artifact, not just in the docs.
    """
    lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for fn_id in sorted(graph.functions):
        fn = graph.functions[fn_id]
        tops = sum(1 for site in graph.calls.get(fn_id, ()) if site.unknown)
        label = fn_id + (f"\\n⊤×{tops}" if tops else "")
        shape = ' shape=doubleoctagon' if fn.is_async else ""
        lines.append(f'  "{fn_id}" [label="{label}"{shape}];')
    for fn_id in sorted(graph.calls):
        targets: Set[str] = set()
        for site in graph.calls[fn_id]:
            targets.update(site.targets)
        for target in sorted(targets):
            lines.append(f'  "{fn_id}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)
