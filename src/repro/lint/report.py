"""Reporters: human-readable text and machine-readable JSON.

Both render the same partitioned view — new findings (the gate), then
counts of baselined and suppressed ones, then stale baseline entries —
so a CI log and a tooling consumer see the identical verdict.  With
``stats_rules`` (the ``--stats`` flag), both append a per-rule table of
finding/suppression/baseline counts, with zero rows for every rule in
the active profile so coverage — including the exact number of active
reasoned suppressions per rule — is visible at a glance in the CI log.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import Finding, LintResult


def _format_finding(finding: Finding) -> str:
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.severity}[{finding.rule}] {finding.message}"
    )


def rule_stats(
    result: LintResult,
    baselined: Sequence[Finding],
    findings: Sequence[Finding],
    stats_rules: Sequence[str],
) -> Dict[str, Dict[str, int]]:
    """Per-rule counts over the pass: findings, suppressed, baselined.

    Every rule in ``stats_rules`` gets a row (zero counts included);
    rules that produced output without being listed (the engine's
    ``parse-error``/``suppression``) get rows appended.
    """
    stats: Dict[str, Dict[str, int]] = {
        rule: {"findings": 0, "suppressed": 0, "baselined": 0}
        for rule in stats_rules
    }

    def bump(rule: str, bucket: str) -> None:
        row = stats.setdefault(
            rule, {"findings": 0, "suppressed": 0, "baselined": 0}
        )
        row[bucket] += 1

    for finding in findings:
        bump(finding.rule, "findings")
    for finding in result.suppressed:
        bump(finding.rule, "suppressed")
    for finding in baselined:
        bump(finding.rule, "baselined")
    return stats


def _stats_table(stats: Dict[str, Dict[str, int]]) -> List[str]:
    width = max(len("rule"), *(len(rule) for rule in stats))
    header = (
        f"{'rule':<{width}}  findings  suppressed  baselined"
    )
    lines = ["", "per-rule stats:", header, "-" * len(header)]
    for rule in sorted(stats):
        row = stats[rule]
        lines.append(
            f"{rule:<{width}}  {row['findings']:>8}  "
            f"{row['suppressed']:>10}  {row['baselined']:>9}"
        )
    return lines


def render_text(
    result: LintResult,
    baselined: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    new_findings: Optional[Sequence[Finding]] = None,
    stats_rules: Optional[Sequence[str]] = None,
) -> str:
    """The terminal/CI report; one line per finding plus a summary."""
    findings = (
        list(new_findings) if new_findings is not None else result.findings
    )
    lines: List[str] = [_format_finding(f) for f in findings]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {result.files} file{'s' if result.files != 1 else ''}"
    )
    details = []
    if baselined:
        details.append(f"{len(baselined)} baselined")
    if result.suppressed:
        details.append(f"{len(result.suppressed)} suppressed in place")
    if details:
        summary += " (" + ", ".join(details) + ")"
    lines.append(summary)
    if stale_baseline:
        lines.append(
            f"note: {len(stale_baseline)} stale baseline entr"
            f"{'ies' if len(stale_baseline) != 1 else 'y'} no longer "
            "match; refresh with --write-baseline"
        )
    if stats_rules is not None:
        lines.extend(
            _stats_table(
                rule_stats(result, baselined, findings, stats_rules)
            )
        )
    return "\n".join(lines)


def render_json(
    result: LintResult,
    baselined: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    new_findings: Optional[Sequence[Finding]] = None,
    stats_rules: Optional[Sequence[str]] = None,
) -> str:
    """Stable-keyed JSON for tooling; findings sorted like the text."""
    findings = (
        list(new_findings) if new_findings is not None else result.findings
    )

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "severity": finding.severity,
            "message": finding.message,
        }

    payload = {
        "findings": [encode(f) for f in findings],
        "baselined": [encode(f) for f in baselined],
        "suppressed": [encode(f) for f in result.suppressed],
        "stale_baseline": list(stale_baseline),
        "summary": {
            "files": result.files,
            "findings": len(findings),
            "baselined": len(baselined),
            "suppressed": len(result.suppressed),
        },
    }
    if stats_rules is not None:
        payload["stats"] = rule_stats(
            result, baselined, findings, stats_rules
        )
    return json.dumps(payload, indent=2, sort_keys=True)
