"""Reporters: human-readable text and machine-readable JSON.

Both render the same partitioned view — new findings (the gate), then
counts of baselined and suppressed ones, then stale baseline entries —
so a CI log and a tooling consumer see the identical verdict.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.lint.engine import Finding, LintResult


def _format_finding(finding: Finding) -> str:
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.severity}[{finding.rule}] {finding.message}"
    )


def render_text(
    result: LintResult,
    baselined: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    new_findings: Optional[Sequence[Finding]] = None,
) -> str:
    """The terminal/CI report; one line per finding plus a summary."""
    findings = (
        list(new_findings) if new_findings is not None else result.findings
    )
    lines: List[str] = [_format_finding(f) for f in findings]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {result.files} file{'s' if result.files != 1 else ''}"
    )
    details = []
    if baselined:
        details.append(f"{len(baselined)} baselined")
    if result.suppressed:
        details.append(f"{len(result.suppressed)} suppressed in place")
    if details:
        summary += " (" + ", ".join(details) + ")"
    lines.append(summary)
    if stale_baseline:
        lines.append(
            f"note: {len(stale_baseline)} stale baseline entr"
            f"{'ies' if len(stale_baseline) != 1 else 'y'} no longer "
            "match; refresh with --write-baseline"
        )
    return "\n".join(lines)


def render_json(
    result: LintResult,
    baselined: Sequence[Finding] = (),
    stale_baseline: Sequence[str] = (),
    new_findings: Optional[Sequence[Finding]] = None,
) -> str:
    """Stable-keyed JSON for tooling; findings sorted like the text."""
    findings = (
        list(new_findings) if new_findings is not None else result.findings
    )

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "severity": finding.severity,
            "message": finding.message,
        }

    payload = {
        "findings": [encode(f) for f in findings],
        "baselined": [encode(f) for f in baselined],
        "suppressed": [encode(f) for f in result.suppressed],
        "stale_baseline": list(stale_baseline),
        "summary": {
            "files": result.files,
            "findings": len(findings),
            "baselined": len(baselined),
            "suppressed": len(result.suppressed),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
