"""Accepted-legacy-finding baseline.

A baseline lets the CI gate go red only on *new* findings while old,
explicitly accepted ones ride along.  Entries are keyed by a content
fingerprint — ``sha256(rule · normalized path · stripped source line)``
— not by line number, so unrelated edits above a baselined site do not
churn the file.  The checked-in baseline for this repository is empty
(every finding is either fixed or suppressed in place with a reason);
the machinery exists so a future sweep that uncovers dozens of legacy
sites can land the rule first and burn the debt down incrementally:

    python -m repro lint src --write-baseline   # accept current findings
    python -m repro lint src                    # now gates new ones only
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Finding, Project

#: Format marker so a future layout change can migrate old files.
BASELINE_VERSION = 1


def _normalize_path(path: str) -> str:
    return path.replace(os.sep, "/")


def finding_fingerprint(finding: Finding, line_text: str) -> str:
    """Content key for one finding; stable under line-number drift."""
    basis = "\0".join(
        (finding.rule, _normalize_path(finding.path), line_text.strip())
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """The parsed baseline: fingerprint → entry (rule/path kept for
    human-readable diffs of the JSON file)."""

    entries: Dict[str, Dict[str, str]]

    @property
    def empty(self) -> bool:
        return not self.entries

    def split(
        self, findings: Sequence[Finding], project: Project
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Partition findings into (new, baselined) and report stale
        fingerprints — entries whose finding no longer occurs, which
        should be dropped with ``--write-baseline``."""
        new: List[Finding] = []
        matched: List[Finding] = []
        seen: set = set()
        for finding in findings:
            fingerprint = finding_fingerprint(
                finding, _line_text(project, finding)
            )
            if fingerprint in self.entries:
                matched.append(finding)
                seen.add(fingerprint)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - seen)
        return new, matched, stale


def _line_text(project: Project, finding: Finding) -> str:
    module = next(
        (m for m in project.modules if m.path == finding.path), None
    )
    return module.line_text(finding.line) if module is not None else ""


def read_baseline(path: str) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return Baseline(entries={})
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"baseline {path!r} is not a lint baseline file")
    entries = {
        entry["fingerprint"]: {
            "rule": entry.get("rule", ""),
            "path": entry.get("path", ""),
        }
        for entry in payload["entries"]
    }
    return Baseline(entries=entries)


def write_baseline(
    path: str, findings: Sequence[Finding], project: Project
) -> Baseline:
    """Accept ``findings`` as the new baseline and write the file.

    Entries are sorted by (path, rule, fingerprint) so the JSON is
    reviewable and diff-stable.
    """
    entries = {}
    for finding in findings:
        fingerprint = finding_fingerprint(
            finding, _line_text(project, finding)
        )
        entries[fingerprint] = {
            "rule": finding.rule,
            "path": _normalize_path(finding.path),
        }
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "fingerprint": fingerprint,
                "rule": entry["rule"],
                "path": entry["path"],
            }
            for fingerprint, entry in sorted(
                entries.items(),
                key=lambda kv: (kv[1]["path"], kv[1]["rule"], kv[0]),
            )
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return Baseline(entries=entries)
