"""Static analysis for the repository's load-bearing conventions.

The system's correctness rests on invariants no runtime test states
directly: byte-identical sim fingerprints require that the
deterministic core never reads wall clocks or unseeded RNGs, every
:data:`~repro.codec.WIRE_KINDS` entry needs an encode *and* a decode
branch, every transport ``record_message`` site must emit a paired
``send`` trace event with identical byte arguments, and the frozen
:class:`~repro.sync.protocol.Message` may be mutated only at sanctioned
memo sites.  ``repro.lint`` turns those conventions into checked rules:
an AST-visitor rule engine (:mod:`repro.lint.engine`), the rule
catalogue (:mod:`repro.lint.rules`), a content-fingerprinted baseline
for accepted legacy findings (:mod:`repro.lint.baseline`), and text /
JSON reporters (:mod:`repro.lint.report`).  ``python -m repro lint src``
is the CI gate; ``# repro: lint-ok[rule-id] reason`` suppresses one
finding in place.
"""

from repro.lint.baseline import (
    Baseline,
    finding_fingerprint,
    read_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    LintResult,
    Module,
    Project,
    Rule,
    Suppression,
    lint_paths,
    load_project,
    run_rules,
)
from repro.lint.callgraph import (
    CallGraph,
    build_call_graph,
    project_analysis,
    render_dot,
)
from repro.lint.flow import Cfg, build_cfg, solve_forward
from repro.lint.report import render_json, render_text, rule_stats
from repro.lint.rules import (
    ALL_RULES,
    PROFILES,
    rule_aliases,
    rule_catalogue,
    rules_for_profile,
)

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CallGraph",
    "Cfg",
    "Finding",
    "LintResult",
    "Module",
    "PROFILES",
    "Project",
    "Rule",
    "Suppression",
    "build_call_graph",
    "build_cfg",
    "finding_fingerprint",
    "lint_paths",
    "load_project",
    "project_analysis",
    "read_baseline",
    "render_dot",
    "render_json",
    "render_text",
    "rule_aliases",
    "rule_catalogue",
    "rule_stats",
    "rules_for_profile",
    "run_rules",
    "solve_forward",
    "write_baseline",
]
