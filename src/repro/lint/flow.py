"""Intraprocedural control-flow graphs and a small dataflow engine.

The interprocedural rules (:mod:`repro.lint.rules.interproc`) need more
than "does this name appear somewhere in the function" — the
``resource-typestate`` rule asks *"is there a path from this
``fence()`` to a function exit that skips the ``unfence()``?"*, and
error paths are exactly where lexical matching goes blind.  This
module builds a conservative CFG per function and solves forward
dataflow problems over it:

* every simple statement is one node; ``if``/``while``/``for``/
  ``with``/``try`` contribute a head node plus their bodies;
* any statement that *can raise* (contains a call, a ``raise``, or an
  ``assert``) gets an **exceptional edge** — to the innermost enclosing
  handler if one is in scope, otherwise to the function's error exit.
  That is the approximation that makes "missed release on an error
  path" a reachability question;
* ``finally`` blocks are modelled on the normal path and as the relay
  of the exceptional path (body raises → finally → outer handler or
  error exit), which is sound for may-analyses;
* ``return`` edges to the normal exit, ``raise`` to the error exit,
  ``break``/``continue`` to their loop targets.

The solver is a deterministic worklist: node order is AST order, joins
are set union (**may**) or intersection (**must**), and transfer
functions are supplied by the caller as ``(node, state) -> state``.
Everything here is a pure function of the AST, so analysis results are
independent of module discovery order — a property the test suite
pins.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lint.astutil import FunctionNode

#: Node kinds; ``stmt`` carries the AST statement, the exits carry None.
ENTRY = "entry"
STATEMENT = "statement"
NORMAL_EXIT = "normal-exit"
ERROR_EXIT = "error-exit"


@dataclass
class CfgNode:
    """One CFG node: a statement, or one of the three markers."""

    index: int
    kind: str
    stmt: Optional[ast.stmt] = None
    #: Normal-flow successor indices.
    successors: List[int] = field(default_factory=list)
    #: Exceptional successors (taken only if the statement raises).
    raise_successors: List[int] = field(default_factory=list)

    def all_successors(self) -> List[int]:
        return self.successors + self.raise_successors


@dataclass
class Cfg:
    """The graph for one function body."""

    nodes: List[CfgNode]
    entry: int
    normal_exit: int
    error_exit: int

    def node(self, index: int) -> CfgNode:
        return self.nodes[index]

    @property
    def exits(self) -> Tuple[int, int]:
        return (self.normal_exit, self.error_exit)


def _can_raise(stmt: ast.stmt) -> bool:
    """Whether a statement gets an exceptional edge.

    The approximation: calls, explicit raises, and asserts can raise;
    pure data plumbing (constant assigns, ``pass``) cannot.  Attribute
    and subscript access can raise too in principle, but modelling them
    drowns the signal — a documented give-up.
    """
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Raise, ast.Assert, ast.Await)):
            return True
        # Do not descend into nested function/class bodies: their
        # statements execute at *their* call time, not here.
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node is not stmt:
            return False
    return False


class _Builder:
    """Recursive statement-list walker producing the CFG."""

    def __init__(self) -> None:
        self.nodes: List[CfgNode] = []

    def new_node(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node = CfgNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node.index

    def build(self, function: FunctionNode) -> Cfg:
        entry = self.new_node(ENTRY)
        normal_exit = self.new_node(NORMAL_EXIT)
        error_exit = self.new_node(ERROR_EXIT)
        self._normal_exit = normal_exit
        self._error_exit = error_exit
        #: Stack of (break targets, continue targets) for loops.
        self._loops: List[Tuple[List[int], List[int]]] = []
        #: Stack of exceptional-edge targets (innermost last); each
        #: entry is the node a raise inside that region jumps to.
        self._handlers: List[int] = []
        tails = self._body(function.body, [entry])
        for tail in tails:
            self.nodes[tail].successors.append(normal_exit)
        return Cfg(
            nodes=self.nodes,
            entry=entry,
            normal_exit=normal_exit,
            error_exit=error_exit,
        )

    # -- plumbing ------------------------------------------------------

    def _raise_target(self) -> int:
        return self._handlers[-1] if self._handlers else self._error_exit

    def _link(self, tails: Sequence[int], target: int) -> None:
        for tail in tails:
            self.nodes[tail].successors.append(target)

    def _body(self, stmts: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        """Wire a statement list; returns the fall-through tails."""
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._statement(stmt, frontier)
        return frontier

    # -- statements ----------------------------------------------------

    def _statement(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        # Simple statement: one node.
        index = self.new_node(STATEMENT, stmt)
        self._link(frontier, index)
        if _can_raise(stmt):
            self.nodes[index].raise_successors.append(self._raise_target())
        if isinstance(stmt, ast.Return):
            self.nodes[index].successors.append(self._normal_exit)
            return []
        if isinstance(stmt, ast.Raise):
            self.nodes[index].successors.append(self._raise_target())
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].append(index)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._loops[-1][1].append(index)
            return []
        return [index]

    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        head = self.new_node(STATEMENT, stmt)
        self._link(frontier, head)
        if _can_raise_expr(stmt.test):
            self.nodes[head].raise_successors.append(self._raise_target())
        then_tails = self._body(stmt.body, [head])
        else_tails = self._body(stmt.orelse, [head]) if stmt.orelse else [head]
        return then_tails + else_tails

    def _loop(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        head = self.new_node(STATEMENT, stmt)
        self._link(frontier, head)
        test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if _can_raise_expr(test):
            self.nodes[head].raise_successors.append(self._raise_target())
        breaks: List[int] = []
        continues: List[int] = []
        self._loops.append((breaks, continues))
        body_tails = self._body(stmt.body, [head])
        self._loops.pop()
        # Loop back edges; continues rejoin the head too.
        self._link(body_tails, head)
        self._link(continues, head)
        # Normal exhaustion runs orelse; breaks skip it.
        orelse_tails = (
            self._body(stmt.orelse, [head]) if stmt.orelse else [head]
        )
        return orelse_tails + breaks

    def _with(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        head = self.new_node(STATEMENT, stmt)
        self._link(frontier, head)
        self.nodes[head].raise_successors.append(self._raise_target())
        return self._body(stmt.body, [head])

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        # Model finally as a relay block: normal path runs it after
        # body/handlers; exceptional path runs it before propagating.
        finally_entry: Optional[int] = None
        finally_tails: List[int] = []
        outer_raise = self._raise_target()
        if stmt.finalbody:
            finally_entry = self.new_node(STATEMENT, stmt)
            finally_tails = self._body(stmt.finalbody, [finally_entry])

        handler_heads: List[int] = []
        # Exceptions inside the body go to the handlers if any exist,
        # otherwise through finally (if present) to the outer target.
        if stmt.handlers:
            # Reserve the handler entry point: a single dispatch node.
            dispatch = self.new_node(STATEMENT, stmt)
            self._handlers.append(dispatch)
            body_tails = self._body(stmt.body, frontier)
            self._handlers.pop()
            tails: List[int] = []
            for handler in stmt.handlers:
                head = self.new_node(STATEMENT, handler)
                self.nodes[dispatch].successors.append(head)
                # A handler body can itself raise: it propagates past
                # this try (through finally when present).
                if stmt.finalbody:
                    assert finally_entry is not None
                    self._handlers.append(finally_entry)
                else:
                    self._handlers.append(outer_raise)
                handler_tails = self._body(handler.body, [head])
                self._handlers.pop()
                tails.extend(handler_tails)
                handler_heads.append(head)
            # An exception no handler matches propagates onward — unless
            # some handler catches everything.  ``except Exception``
            # counts: the types it misses (KeyboardInterrupt,
            # SystemExit) end the process, where leaked OS resources
            # are reclaimed anyway.
            if not _catches_all(stmt.handlers):
                if stmt.finalbody:
                    assert finally_entry is not None
                    self.nodes[dispatch].successors.append(finally_entry)
                else:
                    self.nodes[dispatch].successors.append(outer_raise)
            body_tails = self._body(stmt.orelse, body_tails) if stmt.orelse else body_tails
            all_tails = body_tails + tails
        else:
            relay = finally_entry if finally_entry is not None else outer_raise
            self._handlers.append(relay)
            body_tails = self._body(stmt.body, frontier)
            self._handlers.pop()
            all_tails = body_tails

        if stmt.finalbody:
            assert finally_entry is not None
            self._link(all_tails, finally_entry)
            # The finally relay continues to the outer exceptional
            # target as well: it may be finishing a raise in flight.
            for tail in finally_tails:
                self.nodes[tail].raise_successors.append(outer_raise)
            return list(finally_tails)
        return all_tails


def _catches_all(handlers: Sequence[ast.ExceptHandler]) -> bool:
    """Whether some handler matches every (non-fatal) exception."""

    def broad(node: Optional[ast.expr]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in ("Exception", "BaseException")
        if isinstance(node, ast.Tuple):
            return any(broad(element) for element in node.elts)
        return False

    return any(broad(handler.type) for handler in handlers)


def _can_raise_expr(expr: Optional[ast.expr]) -> bool:
    if expr is None:
        return False
    return any(
        isinstance(node, (ast.Call, ast.Await)) for node in ast.walk(expr)
    )


def build_cfg(function: FunctionNode) -> Cfg:
    """The CFG of one function body (pure function of the AST)."""
    return _Builder().build(function)


# ---------------------------------------------------------------------
# The dataflow solver.
# ---------------------------------------------------------------------

Transfer = Callable[[CfgNode, FrozenSet], FrozenSet]


def solve_forward(
    cfg: Cfg,
    transfer: Transfer,
    *,
    mode: str = "may",
    init: FrozenSet = frozenset(),
    raise_transfer: Optional[Transfer] = None,
) -> Dict[int, FrozenSet]:
    """Forward dataflow to fixpoint; returns the IN state per node.

    ``mode="may"`` joins predecessors with union (a fact holds if it
    holds on *some* path), ``mode="must"`` with intersection (on *all*
    paths).  ``raise_transfer``, when given, produces the state carried
    along a node's *exceptional* edges instead of ``transfer``'s — the
    typestate rule passes ``in - kills`` there, so ``x = open(...)``
    raising does not count as having acquired ``x``, while a release
    statement that raises still counts as released.  The worklist is
    processed in ascending node order, so the result is deterministic
    for a given CFG.
    """
    if mode not in ("may", "must"):
        raise ValueError(f"unknown dataflow mode {mode!r}")
    #: successor → list of (predecessor, via_raise_edge).
    predecessors: Dict[int, List[Tuple[int, bool]]] = {
        n.index: [] for n in cfg.nodes
    }
    for node in cfg.nodes:
        for successor in node.successors:
            predecessors[successor].append((node.index, False))
        for successor in node.raise_successors:
            predecessors[successor].append((node.index, True))
    in_state: Dict[int, FrozenSet] = {cfg.entry: init}
    out_state: Dict[int, FrozenSet] = {}
    out_raise_state: Dict[int, FrozenSet] = {}
    pending = sorted(node.index for node in cfg.nodes)
    on_list = set(pending)
    while pending:
        index = pending.pop(0)
        on_list.discard(index)
        node = cfg.node(index)
        if index == cfg.entry:
            incoming = init
        else:
            states = []
            for pred, via_raise in predecessors[index]:
                table = out_raise_state if via_raise else out_state
                if pred in table:
                    states.append(table[pred])
            if not states:
                continue  # unreachable so far
            if mode == "may":
                incoming = frozenset().union(*states)
            else:
                incoming = states[0]
                for state in states[1:]:
                    incoming = incoming & state
        in_state[index] = incoming
        outgoing = transfer(node, incoming)
        raising = (
            raise_transfer(node, incoming)
            if raise_transfer is not None
            else outgoing
        )
        if (
            out_state.get(index) != outgoing
            or out_raise_state.get(index) != raising
        ):
            out_state[index] = outgoing
            out_raise_state[index] = raising
            for successor in node.all_successors():
                if successor not in on_list:
                    on_list.add(successor)
                    pending.append(successor)
            pending.sort()
    return in_state
