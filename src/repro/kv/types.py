"""Typed access to a heterogeneous CRDT keyspace.

A key-value store holds many keys, each bound to one CRDT type; clients
speak in typed operations (``increment``, ``add``, ``write``) while the
synchronization layer sees only lattice deltas.  :class:`TypeSpec`
bridges the two: it wraps one of the library's CRDT classes
(:mod:`repro.crdt` / :mod:`repro.causal`) and turns a named mutator
invocation into the optimal δ of that mutation against the key's
current lattice value — every write funnels through the paper's
δ-mutator discipline (Section III-B), so any synchronizer in
:mod:`repro.sync` can carry it.

A :class:`Schema` decides which type a key holds.  The binding must be
a pure function of the key (every replica resolves it identically
without coordination), so the default convention types keys by prefix:
``cnt:balance`` is a PNCounter, ``aws:cart`` an add-wins set, and the
Retwis prefixes (``flw:``/``wal:``/``tln:``) map onto the store's
set/map types so the paper's application workload runs unchanged.
Custom types register through :func:`register_type`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Hashable, Mapping, Optional

from repro.causal import AWSet, CausalMVRegister, CCounter, EWFlag, RWSet
from repro.crdt import (
    Crdt,
    GCounter,
    GMap,
    GSet,
    LWWRegister,
    PNCounter,
    TwoPSet,
)
from repro.lattice.base import Lattice


class KVTypeError(TypeError):
    """Unknown type, unknown operation, or unsupported removal."""


@dataclass(frozen=True)
class TypeSpec:
    """One storable CRDT type: its client class and permitted mutators.

    Attributes:
        name: Registry identifier (``"gcounter"``, ``"awset"``, …).
        client: The :class:`~repro.crdt.base.Crdt` subclass wrapped for
            each call; its constructor must accept ``(replica, state)``.
        mutators: Method names clients may invoke as write operations.
        reader: Maps a client holding the current state to the
            query-side value (:meth:`read`).
        remove_op: Mutator implementing key removal (``"clear"`` for
            observed-remove types), or ``None`` for grow-only types
            that cannot forget.
    """

    name: str
    client: type
    mutators: FrozenSet[str]
    reader: Callable[[Crdt], Any]
    remove_op: Optional[str] = None

    def bottom(self) -> Lattice:
        """The type's bottom lattice value (every key starts here)."""
        return self.client("⊥").state

    def apply(self, replica: Hashable, state: Lattice, op: str, *args) -> Lattice:
        """Run mutator ``op`` against ``state`` and return the optimal δ.

        An ephemeral client is constructed per call; lattice values are
        immutable, so the caller's ``state`` is never modified — only
        the delta travels back.
        """
        if op not in self.mutators:
            raise KVTypeError(
                f"type {self.name!r} has no operation {op!r} "
                f"(available: {sorted(self.mutators)})"
            )
        return getattr(self.client(replica, state), op)(*args)

    def read(self, state: Lattice) -> Any:
        """The query-side value of ``state``."""
        return self.reader(self.client("⊥", state))

    def remove_delta(self, replica: Hashable, state: Lattice) -> Lattice:
        """The δ removing the whole value, for types that support it."""
        if self.remove_op is None:
            raise KVTypeError(f"type {self.name!r} is grow-only: keys cannot be removed")
        return getattr(self.client(replica, state), self.remove_op)()


#: The built-in storable types.
TYPE_REGISTRY: Dict[str, TypeSpec] = {}


def register_type(spec: TypeSpec, *, overwrite: bool = False) -> TypeSpec:
    """Add a type to the registry (application-defined CRDTs plug in here)."""
    if spec.name in TYPE_REGISTRY and not overwrite:
        raise KVTypeError(f"type {spec.name!r} is already registered")
    TYPE_REGISTRY[spec.name] = spec
    return spec


def type_spec(name: str) -> TypeSpec:
    """Look up a registered type."""
    try:
        return TYPE_REGISTRY[name]
    except KeyError:
        raise KVTypeError(
            f"unknown CRDT type {name!r} (registered: {sorted(TYPE_REGISTRY)})"
        ) from None


def _gmap_reader(client: GMap) -> Dict[Hashable, Lattice]:
    return {key: value for key, value in client.state.items()}


for _spec in (
    TypeSpec("gcounter", GCounter, frozenset({"increment"}), lambda c: c.value),
    TypeSpec(
        "pncounter", PNCounter, frozenset({"increment", "decrement"}), lambda c: c.value
    ),
    TypeSpec("gset", GSet, frozenset({"add"}), lambda c: c.value),
    TypeSpec(
        "twopset", TwoPSet, frozenset({"add", "remove"}), lambda c: c.value
    ),
    TypeSpec("gmap", GMap, frozenset({"put", "put_chain", "bump"}), _gmap_reader),
    TypeSpec(
        "awset",
        AWSet,
        frozenset({"add", "remove", "clear"}),
        lambda c: c.value,
        remove_op="clear",
    ),
    TypeSpec("rwset", RWSet, frozenset({"add", "remove"}), lambda c: c.value),
    TypeSpec(
        "ccounter",
        CCounter,
        frozenset({"increment", "reset"}),
        lambda c: c.value,
        remove_op="reset",
    ),
    TypeSpec("lwwregister", LWWRegister, frozenset({"write"}), lambda c: c.value),
    TypeSpec(
        "mvregister", CausalMVRegister, frozenset({"write"}), lambda c: c.values
    ),
    TypeSpec("ewflag", EWFlag, frozenset({"enable", "disable"}), lambda c: c.enabled),
):
    register_type(_spec)


#: Prefix conventions shared by the workloads, examples, and tests.
DEFAULT_PREFIXES: Mapping[str, str] = {
    "gct": "gcounter",
    "cnt": "pncounter",
    "set": "gset",
    "2ps": "twopset",
    "map": "gmap",
    "aws": "awset",
    "rws": "rwset",
    "ccn": "ccounter",
    "reg": "lwwregister",
    "mvr": "mvregister",
    "flg": "ewflag",
    # The Retwis application keys (repro.workloads.retwis).
    "flw": "gset",
    "wal": "gmap",
    "tln": "gmap",
}


class Schema:
    """Pure key → type resolution, identical at every replica.

    Resolution order: an explicit per-key binding, then the key's
    prefix (the part before ``separator``), then the default type.
    Bindings added with :meth:`bind` after deployment must be applied
    at every replica — the schema itself is not replicated.
    """

    def __init__(
        self,
        prefixes: Mapping[str, str] | None = None,
        *,
        default: str | None = None,
        separator: str = ":",
    ) -> None:
        self._prefixes = dict(DEFAULT_PREFIXES if prefixes is None else prefixes)
        self._default = default
        self._separator = separator
        self._bindings: Dict[Hashable, str] = {}

    def bind(self, key: Hashable, type_name: str) -> None:
        """Pin one key to a type, overriding prefix resolution."""
        type_spec(type_name)  # validate eagerly
        self._bindings[key] = type_name

    def type_of(self, key: Hashable) -> str:
        """The type name ``key`` resolves to."""
        bound = self._bindings.get(key)
        if bound is not None:
            return bound
        if isinstance(key, str) and self._separator in key:
            prefix = key.split(self._separator, 1)[0]
            name = self._prefixes.get(prefix)
            if name is not None:
                return name
        if self._default is not None:
            return self._default
        raise KVTypeError(
            f"schema cannot type key {key!r}: no binding, no known prefix, no default"
        )

    def spec_for(self, key: Hashable) -> TypeSpec:
        """The :class:`TypeSpec` governing ``key``."""
        return type_spec(self.type_of(key))
