"""``repro.kv`` — a sharded, replicated CRDT key-value store.

The paper's synchronizers move one replicated object between replicas;
this package hosts them in a store-shaped deployment — the unit real
systems ship (Almeida et al.'s delta-CRDT stores, ConflictSync's keyed
reconciliation):

* :mod:`repro.kv.types` — typed client operations over a heterogeneous
  keyspace (counters, sets, maps, registers, causal types) with every
  write funnelled through an optimal δ-mutator;
* :mod:`repro.kv.ring` — consistent-hash placement of shards onto
  replica groups with a configurable replication factor;
* :mod:`repro.kv.antientropy` — per-shard synchronization scheduling:
  round-robin fairness, a per-tick send budget with delta-batching
  backpressure, and repair in two modes — blanket full-state pushes on
  a timer, or divergence-driven digest probes over cold δ-paths that
  escalate to shipping only the missing join decomposition;
* :mod:`repro.kv.store` — the per-replica engine, itself a
  :class:`~repro.sync.protocol.Synchronizer`, running any inner
  protocol per shard;
* :mod:`repro.kv.cluster` — the store on the simulated network with
  smart-client routing, per-shard convergence, partition/crash
  recovery under a pluggable recovery policy (bottom restart + remote
  repair, or local :mod:`repro.wal` replay with repair covering only
  the remainder), and **live membership changes**:
  ``add_replica``/``decommission_replica`` swap the ring mid-run and
  ship every moved shard as a compacted WAL segment through the
  ``kv-handoff-*`` protocol, fencing the old owner's log on completion.
"""

from repro.kv.antientropy import REPAIR_MODES, AntiEntropyConfig, AntiEntropyScheduler
from repro.kv.cluster import (
    RECOVERY_POLICIES,
    KVCluster,
    RebalanceReport,
    Unavailable,
)
from repro.kv.ring import HashRing, stable_hash
from repro.kv.store import (
    HANDOFF_KINDS,
    KVRoutingError,
    KVStore,
    KVUpdate,
    kv_store_factory,
)
from repro.kv.types import (
    DEFAULT_PREFIXES,
    KVTypeError,
    Schema,
    TYPE_REGISTRY,
    TypeSpec,
    register_type,
    type_spec,
)

__all__ = [
    "AntiEntropyConfig",
    "AntiEntropyScheduler",
    "DEFAULT_PREFIXES",
    "HANDOFF_KINDS",
    "HashRing",
    "RebalanceReport",
    "KVCluster",
    "KVRoutingError",
    "KVStore",
    "KVTypeError",
    "KVUpdate",
    "RECOVERY_POLICIES",
    "REPAIR_MODES",
    "Schema",
    "TYPE_REGISTRY",
    "TypeSpec",
    "Unavailable",
    "kv_store_factory",
    "register_type",
    "stable_hash",
    "type_spec",
]
