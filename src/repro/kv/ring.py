"""Consistent-hash partitioning of a keyspace across replica groups.

The store splits its keys into a fixed number of **shards** (hash
buckets) and places each shard on a **replica group** chosen by walking
a consistent-hash ring of virtual nodes — the scheme popularized by
Dynamo-style stores.  Two levels keep the synchronization machinery
tractable:

* ``key → shard`` depends only on the key and the shard count, so it
  never changes as replicas join or leave — per-shard synchronizers,
  δ-buffers, and digests stay valid across membership changes;
* ``shard → owners`` walks the ring from the shard's position taking
  the first ``replication`` distinct replicas, so adding or removing a
  replica reassigns only the shards whose walk crosses the changed
  virtual nodes — the classic ``~moved/n`` rebalancing guarantee.

Everything is derived from SHA-1 digests of stable strings: the same
construction on any machine yields the same placement, which the
deterministic simulation (and the reproducibility of every benchmark)
depends on.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Hashable, List, Sequence, Tuple


def _position(token: str) -> int:
    """A point on the ring: the first 8 bytes of SHA-1, big-endian."""
    return int.from_bytes(hashlib.sha1(token.encode("utf-8")).digest()[:8], "big")


def stable_hash(key: Hashable) -> int:
    """A machine-independent hash of a key (Python's ``hash`` is salted)."""
    return _position(repr(key))


class HashRing:
    """Key → shard → replica-group placement with virtual nodes.

    Args:
        replicas: Identifiers of the participating replicas (the node
            indices of the simulated cluster).
        n_shards: Number of hash buckets the keyspace is split into.
        replication: Owners per shard (the replication factor).
        vnodes: Virtual nodes per replica; more vnodes smooth the load
            distribution at the cost of a larger ring.

    >>> ring = HashRing(range(4), n_shards=16, replication=2)
    >>> ring.owners("user:42") == ring.owners("user:42")   # deterministic
    True
    >>> len(ring.owners("user:42"))
    2
    """

    def __init__(
        self,
        replicas: Sequence[int],
        *,
        n_shards: int = 32,
        replication: int = 3,
        vnodes: int = 64,
    ) -> None:
        replicas = sorted(set(replicas))
        if not replicas:
            raise ValueError("a ring needs at least one replica")
        if replication < 1:
            raise ValueError("replication factor must be at least 1")
        if replication > len(replicas):
            raise ValueError(
                f"replication {replication} exceeds replica count {len(replicas)}"
            )
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per replica")
        self.replicas: Tuple[int, ...] = tuple(replicas)
        self.n_shards = n_shards
        self.replication = replication
        self.vnodes = vnodes

        points: List[Tuple[int, int]] = []
        for replica in self.replicas:
            for vnode in range(vnodes):
                points.append((_position(f"replica:{replica}#{vnode}"), replica))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners_at = [replica for _, replica in points]
        #: Precomputed shard → owner group (shard counts are small).
        self._assignment: Tuple[Tuple[int, ...], ...] = tuple(
            self._walk(_position(f"shard:{shard}")) for shard in range(n_shards)
        )

    # ------------------------------------------------------------------
    # Placement queries.
    # ------------------------------------------------------------------

    def shard_of(self, key: Hashable) -> int:
        """The shard holding ``key``; independent of membership."""
        return stable_hash(key) % self.n_shards

    def shard_owners(self, shard: int) -> Tuple[int, ...]:
        """The replica group owning ``shard``, coordinator first."""
        return self._assignment[shard]

    def owners(self, key: Hashable) -> Tuple[int, ...]:
        """The replica group owning ``key``, coordinator first."""
        return self._assignment[self.shard_of(key)]

    def coordinator(self, key: Hashable) -> int:
        """The first owner — the natural home for client requests."""
        return self.owners(key)[0]

    def shards_owned_by(self, replica: int) -> Tuple[int, ...]:
        """The shards ``replica`` holds a copy of, in shard order."""
        return tuple(
            shard
            for shard in range(self.n_shards)
            if replica in self._assignment[shard]
        )

    def assignment(self) -> Dict[int, Tuple[int, ...]]:
        """The full shard → owner-group map."""
        return {shard: owners for shard, owners in enumerate(self._assignment)}

    # ------------------------------------------------------------------
    # Membership changes (rebalancing).
    # ------------------------------------------------------------------

    def with_replica(self, replica: int) -> "HashRing":
        """A new ring with ``replica`` added; placement shifts minimally.

        Raises :class:`ValueError` when the replica is already a member:
        the constructor's ``sorted(set(...))`` dedup used to swallow the
        duplicate and silently return an identical ring, which read as a
        successful membership change that moved zero shards.
        """
        if replica in self.replicas:
            raise ValueError(
                f"replica {replica} is already a member of the ring"
            )
        return HashRing(
            self.replicas + (replica,),
            n_shards=self.n_shards,
            replication=self.replication,
            vnodes=self.vnodes,
        )

    def without_replica(self, replica: int) -> "HashRing":
        """A new ring with ``replica`` removed.

        Raises :class:`ValueError` when the replica is not a member
        (removal used to silently no-op) and when removal would leave
        fewer members than the replication factor — diagnosed here,
        where the caller knows *which removal* broke the invariant,
        instead of surfacing as the constructor's generic "replication
        k exceeds replica count" complaint.
        """
        if replica not in self.replicas:
            raise ValueError(
                f"replica {replica} is not a member of the ring "
                f"(members: {list(self.replicas)})"
            )
        remaining = tuple(r for r in self.replicas if r != replica)
        if len(remaining) < self.replication:
            raise ValueError(
                f"removing replica {replica} would leave {len(remaining)} "
                f"< replication {self.replication} owners per shard"
            )
        return HashRing(
            remaining,
            n_shards=self.n_shards,
            replication=self.replication,
            vnodes=self.vnodes,
        )

    def moved_shards(self, other: "HashRing") -> List[int]:
        """Shards whose owner group differs between ``self`` and ``other``."""
        if other.n_shards != self.n_shards:
            raise ValueError("rings with different shard counts are incomparable")
        return [
            shard
            for shard in range(self.n_shards)
            if set(self._assignment[shard]) != set(other._assignment[shard])
        ]

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _walk(self, position: int) -> Tuple[int, ...]:
        """First ``replication`` distinct replicas clockwise of ``position``."""
        owners: List[int] = []
        start = bisect_right(self._positions, position)
        total = len(self._positions)
        for step in range(total):
            replica = self._owners_at[(start + step) % total]
            if replica not in owners:
                owners.append(replica)
                if len(owners) == self.replication:
                    break
        return tuple(owners)

    def __repr__(self) -> str:
        return (
            f"HashRing(replicas={len(self.replicas)}, shards={self.n_shards}, "
            f"replication={self.replication}, vnodes={self.vnodes})"
        )
